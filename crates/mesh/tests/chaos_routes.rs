//! Chaos faults scoped to mesh nodes and links: halting a chain or
//! downing a link along an A→B→C route must either delay delivery (fault
//! shorter than the hop timeout) or unwind the transfer hop by hop,
//! refunding the original sender with zero net supply change.

use chaos::{ChaosPlan, Fault};
use mesh::{Mesh, MeshConfig, PathPolicy};

const HOP_TIMEOUT_MS: u64 = 120_000;
const FAULT_UNTIL_MS: u64 = 300_000;
const SETTLE_BUDGET_MS: u64 = 10 * 60 * 1_000;
const DRAIN_MS: u64 = 60 * 1_000;

fn faulted_line(seed: u64, fault: Fault, until_ms: u64) -> Mesh {
    let mut config = MeshConfig::line(3, seed);
    config.hop_timeout_ms = HOP_TIMEOUT_MS;
    config.chaos = ChaosPlan::new(seed).with(0, until_ms, fault);
    Mesh::build(config).unwrap()
}

/// Asserts the transfer unwound completely: sender made whole, no
/// vouchers left anywhere, no leg still awaiting settlement.
fn assert_unwound(net: &Mesh, route: usize) {
    assert!(net.routes()[route].refunded, "route must refund");
    assert!(!net.routes()[route].delivered);
    assert_eq!(net.balance("chain-a", "alice", "tok-a"), 1_000, "sender made whole");
    assert_eq!(net.node("chain-a").unwrap().transfers().total_supply("tok-a"), 1_000);
    for chain in ["chain-a", "chain-b", "chain-c"] {
        assert_eq!(net.voucher_outstanding(chain), 0, "{chain} must hold no vouchers");
    }
    assert_eq!(net.total_in_flight(), 0, "no leg may stay in flight");
    assert_eq!(net.stuck_refunds(), 0);
}

#[test]
fn halted_middle_chain_refunds_the_sender() {
    let fault = Fault::ChainHalt { chain: "chain-b".into() };
    let mut net = faulted_line(21, fault, FAULT_UNTIL_MS);
    net.mint("chain-a", "alice", "tok-a", 1_000).unwrap();
    let route = net
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            300,
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS), "route must settle after the halt");
    net.run_for(DRAIN_MS);
    // The first leg never reached B: the origin chain itself timed the
    // packet out and reversed the escrow.
    assert_unwound(&net, route);
}

#[test]
fn halted_final_chain_unwinds_the_forwarded_hop() {
    let fault = Fault::ChainHalt { chain: "chain-c".into() };
    let mut net = faulted_line(22, fault, FAULT_UNTIL_MS);
    net.mint("chain-a", "alice", "tok-a", 1_000).unwrap();
    let route = net
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            300,
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS), "route must settle after the halt");
    net.run_for(DRAIN_MS);
    // A→B delivered, then B→C expired: the middleware's refund transfer
    // must carry the funds backwards B→A.
    assert_unwound(&net, route);
    assert_eq!(net.balance("chain-c", "carol", "tok-a"), 0);
}

#[test]
fn downed_link_unwinds_like_a_halted_chain() {
    let fault = Fault::LinkDown { link: "chain-b<>chain-c".into() };
    let mut net = faulted_line(23, fault, FAULT_UNTIL_MS);
    net.mint("chain-a", "alice", "tok-a", 1_000).unwrap();
    let route = net
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            300,
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS), "route must settle after the outage");
    net.run_for(DRAIN_MS);
    assert_unwound(&net, route);
    // The healthy A—B link kept relaying: it carried the forward leg and
    // later the refund leg.
    assert!(net.links()[0].deliveries >= 2);
}

#[test]
fn transient_halt_shorter_than_the_timeout_only_delays_delivery() {
    let fault = Fault::ChainHalt { chain: "chain-b".into() };
    let mut net = faulted_line(24, fault, 60_000);
    net.mint("chain-a", "alice", "tok-a", 1_000).unwrap();
    let route = net
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            300,
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS));
    net.run_for(DRAIN_MS);
    assert!(net.routes()[route].delivered, "a transient halt must not lose the transfer");
    assert!(!net.routes()[route].refunded);
    assert_eq!(net.balance("chain-a", "alice", "tok-a"), 700);
    assert_eq!(net.total_in_flight(), 0);
}

#[test]
fn refund_report_marks_the_route_refunded_not_delivered() {
    let fault = Fault::ChainHalt { chain: "chain-c".into() };
    let mut net = faulted_line(25, fault, FAULT_UNTIL_MS);
    net.mint("chain-a", "alice", "tok-a", 1_000).unwrap();
    let route = net
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            300,
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS));
    net.run_for(DRAIN_MS);

    let report = net.run_report("chaos_refund");
    let label = &net.routes()[route].label;
    let summary = report.routes.iter().find(|r| &r.label == label).expect("route trace");
    assert!(summary.refunded);
    assert!(!summary.delivered);
    assert!(
        summary.legs >= 2,
        "the forward leg and the refund leg must both link to the route trace"
    );
    assert!(summary.events.iter().any(|e| e.name == "packet.timeout"));
}
