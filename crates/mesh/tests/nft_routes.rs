//! ICS-721-style NFT routing over the application stacks: an A→B→C
//! round trip must stack one class prefix per hop and unwind to the
//! base class with zero net token-supply change, and every failure
//! path — final-hop error ack, hop timeout, halted chain — must refund
//! hop by hop until the original owner holds the token again.

use chaos::{ChaosPlan, Fault};
use ibc_core::ics20::voucher_prefix;
use mesh::{nft_port, Mesh, MeshConfig, PathPolicy};

const HOP_TIMEOUT_MS: u64 = 120_000;
const FAULT_UNTIL_MS: u64 = 300_000;
const SETTLE_BUDGET_MS: u64 = 10 * 60 * 1_000;
const DRAIN_MS: u64 = 60 * 1_000;

fn line(seed: u64) -> Mesh {
    let mut config = MeshConfig::line(3, seed);
    config.hop_timeout_ms = HOP_TIMEOUT_MS;
    Mesh::build(config).unwrap()
}

/// The class of `art` as named on chain-c after two hops A→B→C: both
/// links' receiving-side nft channels, innermost last.
fn stacked_class(net: &Mesh) -> String {
    let port = nft_port();
    let ab = &net.links()[0];
    let bc = &net.links()[1];
    format!(
        "{}{}art",
        voucher_prefix(&port, &bc.b_nft_channel),
        voucher_prefix(&port, &ab.b_nft_channel),
    )
}

/// Asserts the token sits with `owner` under the base class on chain-a
/// and nothing NFT-shaped is left anywhere else in the mesh.
fn assert_token_home(net: &Mesh, owner: &str) {
    let ledger = net.node("chain-a").unwrap().nfts().nft();
    assert_eq!(ledger.owner_of("art", "mona-lisa"), Some(owner), "token must sit with {owner}");
    assert_eq!(ledger.total_tokens(), 1, "chain-a must hold exactly the original");
    assert_eq!(net.nft_supply_drift(), 0, "every voucher needs escrow backing");
    assert_eq!(net.total_in_flight(), 0, "no forwarded leg may stay open");
    assert_eq!(net.stuck_refunds(), 0);
}

#[test]
fn nft_round_trip_unwinds_to_base_class_with_zero_net_supply_change() {
    let mut net = line(31);
    net.mint_nft("chain-a", "art", "mona-lisa", "alice").unwrap();

    let out = net
        .send_nft_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "art",
            &["mona-lisa".into()],
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(out, SETTLE_BUDGET_MS), "outbound trip must settle");
    assert!(net.routes()[out].delivered);

    // On chain-c the token exists under the doubly-prefixed class, and
    // each hop back holds an escrowed original: zero drift mid-journey.
    let stacked = stacked_class(&net);
    let c_ledger = net.node("chain-c").unwrap().nfts().nft();
    assert_eq!(c_ledger.owner_of(&stacked, "mona-lisa"), Some("carol"));
    assert_eq!(net.nft_supply_drift(), 0);

    let back = net
        .send_nft_along_route(
            "chain-c",
            "chain-a",
            "carol",
            "alice",
            &stacked,
            &["mona-lisa".into()],
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(back, SETTLE_BUDGET_MS), "return trip must settle");
    net.run_for(DRAIN_MS);

    assert!(net.routes()[back].delivered);
    assert_token_home(&net, "alice");
    // The vouchers burned on the way home: chains b and c end empty.
    for chain in ["chain-b", "chain-c"] {
        assert_eq!(
            net.node(chain).unwrap().nfts().nft().total_tokens(),
            0,
            "{chain} must be empty"
        );
    }
}

#[test]
fn final_hop_error_ack_refunds_the_nft_hop_by_hop() {
    let mut net = line(32);
    net.mint_nft("chain-a", "art", "mona-lisa", "alice").unwrap();
    // Squat the exact voucher identity the final mint would create:
    // chain-c then answers the second leg with an error ack, and the
    // refund must unwind B→A.
    let stacked = stacked_class(&net);
    net.mint_nft("chain-c", &stacked, "mona-lisa", "mallory").unwrap();

    let route = net
        .send_nft_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "art",
            &["mona-lisa".into()],
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS), "route must settle on the error ack");
    net.run_for(DRAIN_MS);

    assert!(net.routes()[route].refunded, "error ack must refund, not deliver");
    assert!(!net.routes()[route].delivered);
    let a_ledger = net.node("chain-a").unwrap().nfts().nft();
    assert_eq!(a_ledger.owner_of("art", "mona-lisa"), Some("alice"));
    // Only the squatter's token remains on chain-c; chain-b burned its
    // intermediate voucher when the refund passed through.
    let c_ledger = net.node("chain-c").unwrap().nfts().nft();
    assert_eq!(c_ledger.owner_of(&stacked, "mona-lisa"), Some("mallory"));
    assert_eq!(net.node("chain-b").unwrap().nfts().nft().total_tokens(), 0);
    assert_eq!(net.total_in_flight(), 0);
    assert_eq!(net.stuck_refunds(), 0);
}

#[test]
fn halted_final_chain_times_out_the_forwarded_nft_leg() {
    let mut config = MeshConfig::line(3, 33);
    config.hop_timeout_ms = HOP_TIMEOUT_MS;
    config.chaos =
        ChaosPlan::new(33).with(0, FAULT_UNTIL_MS, Fault::ChainHalt { chain: "chain-c".into() });
    let mut net = Mesh::build(config).unwrap();
    net.mint_nft("chain-a", "art", "mona-lisa", "alice").unwrap();

    let route = net
        .send_nft_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "art",
            &["mona-lisa".into()],
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS), "route must settle after the halt");
    net.run_for(DRAIN_MS);

    // A→B delivered, then B→C expired: the forward layer's refund leg
    // must carry the token backwards B→A.
    assert!(net.routes()[route].refunded);
    assert_token_home(&net, "alice");
    assert_eq!(net.node("chain-b").unwrap().nfts().nft().total_tokens(), 0);
    assert_eq!(net.node("chain-c").unwrap().nfts().nft().total_tokens(), 0);
}

#[test]
fn halted_middle_chain_reverses_the_origin_escrow() {
    let mut config = MeshConfig::line(3, 34);
    config.hop_timeout_ms = HOP_TIMEOUT_MS;
    config.chaos =
        ChaosPlan::new(34).with(0, FAULT_UNTIL_MS, Fault::ChainHalt { chain: "chain-b".into() });
    let mut net = Mesh::build(config).unwrap();
    net.mint_nft("chain-a", "art", "mona-lisa", "alice").unwrap();

    let route = net
        .send_nft_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "art",
            &["mona-lisa".into()],
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, SETTLE_BUDGET_MS), "route must settle after the halt");
    net.run_for(DRAIN_MS);

    // The first leg never reached B: the origin chain timed the packet
    // out itself and moved the token straight out of escrow.
    assert!(net.routes()[route].refunded);
    assert_token_home(&net, "alice");
}
