//! The mesh detector battery end to end: a halted chain must fire the
//! per-chain staleness watchdog, a counterfeit voucher mint must fire
//! the supply-drift check, and a clean run must stay silent.

use chaos::{ChaosPlan, Fault};
use mesh::{Mesh, MeshConfig, PathPolicy};
use monitor::MonitorConfig;

const MINUTE_MS: u64 = 60 * 1_000;

/// Minutes-compressed thresholds matching the mesh's second-scale blocks.
fn fast_monitor() -> MonitorConfig {
    let mut config = MonitorConfig::small();
    config.cadence_ms = 30_000;
    config.debounce_ms = MINUTE_MS;
    config.hold_down_ms = 2 * MINUTE_MS;
    config.head_staleness_slo_ms = 3 * MINUTE_MS;
    config.stuck_packet_slo_ms = 5 * MINUTE_MS;
    config
}

#[test]
fn halted_chain_fires_chain_staleness_and_resolves() {
    let mut config = MeshConfig::line(3, 31);
    config.chaos = ChaosPlan::new(31).with(
        2 * MINUTE_MS,
        12 * MINUTE_MS,
        Fault::ChainHalt { chain: "chain-b".into() },
    );
    let mut net = Mesh::build(config).unwrap();
    net.enable_monitor(fast_monitor());
    net.run_for(20 * MINUTE_MS);

    let records = net.alert_records();
    let stale: Vec<_> = records
        .iter()
        .filter(|r| r.detector == "chain.staleness" && r.target == "mesh.chain-b.head")
        .collect();
    assert_eq!(stale.len(), 1, "alerts: {records:?}");
    // Head freezes at minute 2; 3 min SLO + 1 min debounce ⇒ fires by
    // minute ~7, well inside the 10-minute halt.
    assert!(stale[0].fired_ms < 8 * MINUTE_MS, "fired at {} ms", stale[0].fired_ms);
    assert!(stale[0].resolved_ms.is_some(), "resolves after the halt lifts");
    // The other chains kept producing: no alert about them.
    assert!(records.iter().all(|r| r.target != "mesh.chain-a.head"));
    assert!(records.iter().all(|r| r.target != "mesh.chain-c.head"));
}

#[test]
fn counterfeit_voucher_fires_mesh_supply_drift() {
    let mut net = Mesh::build(MeshConfig::line(3, 32)).unwrap();
    net.enable_monitor(fast_monitor());
    // A voucher denomination minted with no matching escrow on the peer:
    // chain-b's local channel back to chain-a.
    let counterfeit = format!("transfer/{}/tok-a", net.links()[0].b_channel);
    net.mint("chain-b", "mallory", &counterfeit, 5_000).unwrap();
    net.run_for(5 * MINUTE_MS);

    assert!(net.supply_drift() >= 5_000, "drift {}", net.supply_drift());
    let records = net.alert_records();
    let drift: Vec<_> = records.iter().filter(|r| r.detector == "supply.drift").collect();
    assert_eq!(drift.len(), 1, "alerts: {records:?}");
    assert_eq!(drift[0].target, "mesh.supply.drift");
    assert_eq!(drift[0].resolved_ms, None, "counterfeit backing never appears");
}

#[test]
fn clean_routed_transfer_raises_no_alerts() {
    let mut net = Mesh::build(MeshConfig::line(3, 33)).unwrap();
    net.enable_monitor(fast_monitor());
    net.mint("chain-a", "alice", "tok-a", 1_000).unwrap();
    let route = net
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            300,
            &PathPolicy::FewestHops,
        )
        .unwrap();
    assert!(net.run_until_settled(route, 10 * MINUTE_MS));
    net.run_for(10 * MINUTE_MS);
    assert_eq!(net.supply_drift(), 0);
    assert!(net.alert_records().is_empty(), "alerts: {:?}", net.alert_records());
}
