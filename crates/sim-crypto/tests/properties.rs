//! Property-based tests of the crypto substrate.

use proptest::prelude::*;
use sim_crypto::schnorr::{Keypair, PublicKey, Signature};
use sim_crypto::{sha256, Hash, Sha256};

proptest! {
    /// Incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<prop::sample::Index>(),
    ) {
        let at = split.index(data.len() + 1);
        let mut hasher = Sha256::new();
        hasher.update(&data[..at]);
        hasher.update(&data[at..]);
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }

    /// Distinct inputs give distinct digests (collision would be a bug in
    /// this input range).
    #[test]
    fn sha256_distinguishes_inputs(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    /// Hash hex round-trips.
    #[test]
    fn hash_hex_round_trip(bytes in any::<[u8; 32]>()) {
        let hash = Hash::from_bytes(bytes);
        prop_assert_eq!(Hash::from_hex(&hash.to_hex()).unwrap(), hash);
    }

    /// Signatures verify for the signing key and message, and fail for any
    /// other message or key.
    #[test]
    fn schnorr_sign_verify(
        seed in any::<u64>(),
        other_seed in any::<u64>(),
        message in proptest::collection::vec(any::<u8>(), 0..128),
        other_message in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let keypair = Keypair::from_seed(seed);
        let signature = keypair.sign(&message);
        prop_assert!(keypair.public().verify(&message, &signature));
        if message != other_message {
            prop_assert!(!keypair.public().verify(&other_message, &signature));
        }
        if seed != other_seed {
            let other = Keypair::from_seed(other_seed);
            prop_assert!(!other.public().verify(&message, &signature));
        }
    }

    /// Key and signature encodings round-trip through their wire formats.
    #[test]
    fn schnorr_encodings_round_trip(seed in any::<u64>(), message in any::<[u8; 16]>()) {
        let keypair = Keypair::from_seed(seed);
        let pk = keypair.public();
        prop_assert_eq!(PublicKey::from_bytes(&pk.to_bytes()).unwrap(), pk);
        let signature = keypair.sign(&message);
        let decoded = Signature::from_bytes(&signature.to_bytes()).unwrap();
        prop_assert_eq!(decoded, signature);
        prop_assert!(pk.verify(&message, &decoded));
    }
}
