//! The 32-byte digest type used throughout the workspace.

use core::fmt;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Length in bytes of a [`struct@Hash`].
pub const HASH_LEN: usize = 32;

/// A 32-byte digest (SHA-256 output).
///
/// Used as block ids, trie node hashes, packet commitments and commitment
/// roots. The all-zero hash is used as a sentinel "empty" value (e.g. the
/// root of an empty trie). Not to be confused with [`core::hash::Hash`]:
/// this is a value type holding a digest.
///
/// # Examples
///
/// ```
/// use sim_crypto::{sha256, Hash};
///
/// let digest = sha256(b"packet-1");
/// let hex = digest.to_hex();
/// assert_eq!(Hash::from_hex(&hex).unwrap(), digest);
/// assert_ne!(digest, Hash::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash([u8; HASH_LEN]);

// Serialized as a hex string: compact on the wire (transaction-size
// accounting depends on it) and readable in logs and fixtures.
impl Serialize for Hash {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for Hash {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        Hash::from_hex(&text).map_err(D::Error::custom)
    }
}

impl Hash {
    /// The all-zero hash, used as an "empty" sentinel.
    pub const ZERO: Hash = Hash([0; HASH_LEN]);

    /// Wraps raw bytes as a hash.
    pub const fn from_bytes(bytes: [u8; HASH_LEN]) -> Self {
        Self(bytes)
    }

    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; HASH_LEN] {
        &self.0
    }

    /// Consumes the hash and returns the raw bytes.
    pub const fn into_bytes(self) -> [u8; HASH_LEN] {
        self.0
    }

    /// Returns `true` if this is the all-zero sentinel.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Lowercase hex encoding (64 characters).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(HASH_LEN * 2);
        for byte in self.0 {
            out.push(char::from_digit((byte >> 4) as u32, 16).expect("nibble < 16"));
            out.push(char::from_digit((byte & 0xf) as u32, 16).expect("nibble < 16"));
        }
        out
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHashError`] if the length is not 64 or a character is
    /// not a hex digit.
    pub fn from_hex(hex: &str) -> Result<Self, ParseHashError> {
        let bytes = hex.as_bytes();
        if bytes.len() != HASH_LEN * 2 {
            return Err(ParseHashError::BadLength(bytes.len()));
        }
        let mut out = [0u8; HASH_LEN];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi =
                (pair[0] as char).to_digit(16).ok_or(ParseHashError::BadDigit(pair[0] as char))?;
            let lo =
                (pair[1] as char).to_digit(16).ok_or(ParseHashError::BadDigit(pair[1] as char))?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Ok(Self(out))
    }

    /// The first eight hex characters — convenient for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl Default for Hash {
    fn default() -> Self {
        Self::ZERO
    }
}

impl AsRef<[u8]> for Hash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; HASH_LEN]> for Hash {
    fn from(bytes: [u8; HASH_LEN]) -> Self {
        Self(bytes)
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash({}…)", self.short())
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Error parsing a [`struct@Hash`] from hex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseHashError {
    /// Input was not exactly 64 characters.
    BadLength(usize),
    /// Input contained a non-hex character.
    BadDigit(char),
}

impl fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadLength(len) => write!(f, "expected 64 hex characters, got {len}"),
            Self::BadDigit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseHashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let h = crate::sha256(b"round trip");
        assert_eq!(Hash::from_hex(&h.to_hex()).unwrap(), h);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Hash::from_hex("abc"), Err(ParseHashError::BadLength(3)));
        let bad = "zz".repeat(32);
        assert_eq!(Hash::from_hex(&bad), Err(ParseHashError::BadDigit('z')));
    }

    #[test]
    fn serde_round_trips_as_hex() {
        let h = crate::sha256(b"serde");
        let json = serde_json::to_string(&h).unwrap();
        assert_eq!(json, format!("\"{}\"", h.to_hex()));
        assert_eq!(serde_json::from_str::<Hash>(&json).unwrap(), h);
        assert!(serde_json::from_str::<Hash>("\"xyz\"").is_err());
    }

    #[test]
    fn zero_is_default_and_zero() {
        assert!(Hash::default().is_zero());
        assert!(!crate::sha256(b"x").is_zero());
    }

    #[test]
    fn debug_is_short_and_nonempty() {
        let repr = format!("{:?}", Hash::ZERO);
        assert!(repr.starts_with("Hash(00000000"));
    }
}
