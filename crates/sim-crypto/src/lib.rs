//! Self-contained cryptographic primitives for the guest-blockchain
//! reproduction.
//!
//! The paper's deployment uses SHA-256 and Ed25519 on Solana. This crate
//! provides the same *shapes* without any external dependency:
//!
//! * [`sha256`] — a from-scratch SHA-256 implementation verified against the
//!   NIST/FIPS 180-4 test vectors,
//! * [`struct@Hash`] — a 32-byte digest newtype used as block ids, trie node hashes
//!   and commitment roots throughout the workspace,
//! * [`schnorr`] — Schnorr signatures over a 61-bit Mersenne-prime group.
//!
//! # Security
//!
//! The Schnorr group parameters are **toy sized** (|p| = 61 bits) so that the
//! arithmetic stays in `u128` without a bignum library. The signing algebra,
//! API and failure modes are faithful; the parameters are not. Do **not** use
//! this crate outside simulations. See `DESIGN.md` ("Known deviations").
//!
//! # Examples
//!
//! ```
//! use sim_crypto::{sha256, schnorr::Keypair};
//!
//! let digest = sha256(b"hello world");
//! assert_eq!(
//!     digest.to_hex(),
//!     "b94d27b9934d3e08a52e52d7da7dabfac484efe37a5380ee9088f7ace2efcde9",
//! );
//!
//! let keypair = Keypair::from_seed(7);
//! let signature = keypair.sign(digest.as_bytes());
//! assert!(keypair.public().verify(digest.as_bytes(), &signature));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
pub mod rng;
pub mod schnorr;
mod sha2;

pub use hash::{Hash, ParseHashError, HASH_LEN};
pub use sha2::{sha256, Sha256};
