//! A small deterministic PRNG (SplitMix64).
//!
//! The simulation needs reproducible randomness without dragging the `rand`
//! crate into every leaf crate. SplitMix64 passes BigCrush for this output
//! size and is trivially seedable.

/// Deterministic SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use sim_crypto::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let seq: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let mut b = SplitMix64::new(7);
        let seq2: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_eq!(seq, seq2);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
