//! A small deterministic PRNG (SplitMix64).
//!
//! The simulation needs reproducible randomness without dragging the `rand`
//! crate into every leaf crate. SplitMix64 passes BigCrush for this output
//! size and is trivially seedable.

/// Deterministic SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use sim_crypto::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Derives an independent, deterministic RNG stream from a master seed
/// and a textual label.
///
/// Simulation components that share one configuration seed must not share
/// one RNG stream — a component consuming an extra draw would shift every
/// other component's randomness. Before this helper each crate XOR-mixed
/// its own magic constant into the seed; deriving from a *label* instead
/// keeps the streams apart, self-documenting, and collision-resistant
/// (every label byte feeds the SplitMix64 mixer, so `"workload"` and
/// `"relayer"` diverge in all 64 bits).
///
/// # Examples
///
/// ```
/// use sim_crypto::rng::seed_stream;
///
/// let mut workload = seed_stream(42, "workload");
/// let mut chaos = seed_stream(42, "chaos");
/// assert_ne!(workload.next_u64(), chaos.next_u64());
/// assert_eq!(
///     seed_stream(42, "workload").next_u64(),
///     seed_stream(42, "workload").next_u64(),
/// );
/// ```
pub fn seed_stream(seed: u64, label: &str) -> SplitMix64 {
    // Run the label through the SplitMix64 output mixer one 8-byte chunk
    // at a time, then fold in the master seed. Chunks are little-endian,
    // zero-padded, and prefixed with the label length so `"ab"` + `"c"`
    // never collides with `"a"` + `"bc"` under future concatenation.
    let mut state = SplitMix64::new(label.len() as u64);
    for chunk in label.as_bytes().chunks(8) {
        let mut bytes = [0u8; 8];
        bytes[..chunk.len()].copy_from_slice(chunk);
        state = SplitMix64::new(state.next_u64() ^ u64::from_le_bytes(bytes));
    }
    SplitMix64::new(state.next_u64() ^ seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let seq: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let mut b = SplitMix64::new(7);
        let seq2: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_eq!(seq, seq2);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn seed_stream_separates_labels_and_tracks_seed() {
        // Distinct labels on one seed give unrelated streams.
        let a: Vec<u64> = {
            let mut rng = seed_stream(7, "workload.outbound");
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = seed_stream(7, "workload.inbound");
            (0..4).map(|_| rng.next_u64()).collect()
        };
        assert_ne!(a, b);
        // The same (seed, label) reproduces the stream exactly.
        let again: Vec<u64> = {
            let mut rng = seed_stream(7, "workload.outbound");
            (0..4).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, again);
        // A different seed moves every labelled stream.
        assert_ne!(seed_stream(8, "workload.outbound").next_u64(), a[0]);
        // Long labels (multiple 8-byte chunks) still derive cleanly.
        assert_ne!(
            seed_stream(7, "a-label-longer-than-eight-bytes").next_u64(),
            seed_stream(7, "a-label-longer-than-eight-bytez").next_u64(),
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
