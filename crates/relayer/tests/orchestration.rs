//! Relayer orchestration against a hand-built deployment (no testnet
//! harness): host chain + guest program + counterparty, with validators
//! signing through transactions — exactly what the relayer sees in
//! production.

use std::cell::RefCell;
use std::rc::Rc;

use counterparty_sim::{CounterpartyChain, CounterpartyConfig};
use guest_chain::{
    GuestConfig, GuestContract, GuestEvent, GuestInstruction, GuestOp, GuestProgram,
};
use host_sim::{CongestionModel, FeePolicy, HostChain, Instruction, Pubkey, Transaction};
use ibc_core::channel::Timeout;
use relayer::{connect_chains, JobKind, Relayer, RelayerConfig};
use sim_crypto::schnorr::Keypair;

struct World {
    host: HostChain,
    cp: CounterpartyChain,
    contract: Rc<RefCell<GuestContract>>,
    relayer: Relayer,
    keypairs: Vec<Keypair>,
    payer: Pubkey,
    program_id: Pubkey,
    last_seen_slot: u64,
}

impl World {
    fn new(seed: u64) -> Self {
        let mut host = HostChain::new(CongestionModel::idle(), seed);
        let program_id = Pubkey::from_label("guest-program");
        let payer = Pubkey::from_label("payer");
        host.bank_mut().airdrop(payer, 1_000_000_000_000);
        host.bank_mut().airdrop(Pubkey::from_label("guest-vault"), 1);
        host.bank_mut().airdrop(Pubkey::from_label("relayer-payer"), 1_000_000_000_000);

        let keypairs: Vec<Keypair> = (0..3).map(Keypair::from_seed).collect();
        let validators = keypairs.iter().map(|kp| (kp.public(), 100)).collect();
        let contract =
            Rc::new(RefCell::new(GuestContract::new(GuestConfig::fast(), validators, 0, 0)));
        let program =
            GuestProgram::new(program_id, Pubkey::from_label("guest-vault"), contract.clone());
        host.bank_mut().register_program(program_id, Box::new(program));

        let mut cp = CounterpartyChain::new(
            CounterpartyConfig {
                num_validators: 10,
                participation: 1.0,
                block_interval_ms: 2_000,
                rotation_interval_blocks: 0,
            },
            seed,
        );
        let mut clock = 0;
        let mut height = 0;
        let endpoints =
            connect_chains(&contract, &mut cp, &keypairs, &mut clock, &mut height).unwrap();
        {
            let mut guard = contract.borrow_mut();
            let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap();
            module.ics20_mut().unwrap().mint("alice", "wsol", 1_000_000);
        }
        let relayer = Relayer::new(
            RelayerConfig::default(),
            Pubkey::from_label("relayer-payer"),
            program_id,
            endpoints,
        );
        Self { host, cp, contract, relayer, keypairs, payer, program_id, last_seen_slot: 0 }
    }

    fn submit_op(&mut self, op: GuestOp) -> u64 {
        let tx = Transaction::build(
            self.payer,
            1,
            vec![Instruction::new(
                self.program_id,
                vec![Pubkey::from_label("guest-state")],
                GuestInstruction::Inline { op }.encode(),
            )],
            FeePolicy::BaseOnly,
        )
        .unwrap();
        self.host.submit(tx)
    }

    /// One slot: advance the host, have every validator sign any NewBlock
    /// it observes (zero latency), produce a cp block if due, tick the
    /// relayer.
    fn step(&mut self) {
        self.host.advance_slot();
        let mut signs = Vec::new();
        for block in self.host.blocks_since(self.last_seen_slot) {
            for event in &block.events {
                if let Ok(GuestEvent::NewBlock { block }) =
                    serde_json::from_slice::<GuestEvent>(&event.payload)
                {
                    for kp in &self.keypairs {
                        signs.push(GuestOp::SignBlock {
                            height: block.height,
                            pubkey: kp.public(),
                            signature: kp.sign(&block.signing_bytes()),
                        });
                    }
                }
            }
        }
        self.last_seen_slot = self.host.slot();
        for op in signs {
            self.submit_op(op);
        }
        if self.host.now_ms() % 2_000 < 600 {
            let now = self.host.now_ms();
            self.cp.produce_block(now);
        }
        self.relayer.tick(&mut self.host, &mut self.cp, &self.contract);
    }

    fn run_slots(&mut self, slots: usize) {
        for _ in 0..slots {
            self.step();
        }
    }
}

#[test]
fn relayer_moves_an_outbound_transfer_and_its_ack() {
    let mut world = World::new(1);
    world.submit_op(GuestOp::SendTransfer {
        port: world.relayer.endpoints().port.clone(),
        channel: world.relayer.endpoints().guest_channel.clone(),
        denom: "wsol".into(),
        amount: 123,
        sender: "alice".into(),
        receiver: "bob".into(),
        memo: String::new(),
        timeout: Timeout::NEVER,
    });
    world.run_slots(400);

    // The counterparty received the packet (the relayer pushed the header
    // and the proof), and the ack travelled back through staged host txs.
    let acks = world.relayer.records().iter().filter(|r| r.kind == JobKind::AckPacket).count();
    assert_eq!(acks, 1, "exactly one ack job completed");
    assert_eq!(world.relayer.failed_jobs(), 0);
    assert_eq!(world.relayer.backlog(), 0, "no stranded work");

    // The source commitment is gone (acknowledged).
    let key = ibc_core::path::packet_commitment(
        &world.relayer.endpoints().port,
        &world.relayer.endpoints().guest_channel,
        1,
    );
    let contract = world.contract.borrow();
    assert!(matches!(ibc_core::ProvableStore::get(contract.ibc().store(), &key), Ok(None)));
}

#[test]
fn relayer_generates_empty_blocks_at_delta() {
    let mut world = World::new(2);
    // No traffic at all; Δ = 10 s in the fast config. ~90 s of slots.
    world.run_slots(200);
    let head = world.contract.borrow().head_height();
    assert!(head >= 5, "Δ-driven empty blocks, head at {head}");
    // Every block finalised by the transaction-submitted signatures.
    assert!(world.contract.borrow().is_finalised(head));
}

#[test]
fn relayer_survives_a_cold_start_with_pending_events() {
    // Events that happened before the relayer's first tick (it scans from
    // slot 0) must still be picked up.
    let mut world = World::new(3);
    world.submit_op(GuestOp::SendTransfer {
        port: world.relayer.endpoints().port.clone(),
        channel: world.relayer.endpoints().guest_channel.clone(),
        denom: "wsol".into(),
        amount: 5,
        sender: "alice".into(),
        receiver: "bob".into(),
        memo: String::new(),
        timeout: Timeout::NEVER,
    });
    // Advance several slots without ticking the relayer.
    for _ in 0..10 {
        world.host.advance_slot();
    }
    world.last_seen_slot = 0; // validators also catch up below
    world.run_slots(300);
    assert_eq!(world.relayer.backlog(), 0);
}
