//! Chunk-boundary behaviour (§V-A): packet proofs sit right around the
//! 4-/5-chunk mark, so the planner's boundary arithmetic and the relayer's
//! recovery from a dropped chunk are exercised at exactly those sizes.

use std::cell::RefCell;
use std::rc::Rc;

use counterparty_sim::{CounterpartyChain, CounterpartyConfig};
use guest_chain::{
    GuestConfig, GuestContract, GuestEvent, GuestInstruction, GuestOp, GuestProgram,
};
use host_sim::{CongestionModel, FeePolicy, HostChain, Instruction, Pubkey, Transaction};
use ibc_core::channel::Timeout;
use ibc_core::types::ClientId;
use relayer::chunking::{chunk_capacity, plan_op};
use relayer::{connect_chains, ChunkFaults, JobKind, Relayer, RelayerConfig};
use sim_crypto::schnorr::Keypair;

/// An update-client op whose serialised form is exactly `target` bytes.
///
/// The header is a plain string, so the encoded length grows by one byte
/// per character; calibrating once against an empty header pins the size.
fn op_with_encoded_len(target: usize) -> GuestOp {
    let probe = GuestOp::UpdateClient {
        client: ClientId::new(0),
        header: String::new(),
        num_signatures: 1,
    };
    let base = probe.encode().len();
    assert!(target > base, "target smaller than the op envelope");
    let op = GuestOp::UpdateClient {
        client: ClientId::new(0),
        header: "x".repeat(target - base),
        num_signatures: 1,
    };
    assert_eq!(op.encode().len(), target, "calibration drifted");
    op
}

fn write_chunks(plan: &[GuestInstruction]) -> Vec<(usize, Vec<u8>)> {
    plan.iter()
        .filter_map(|i| match i {
            GuestInstruction::WriteChunk { offset, data, .. } => Some((*offset, data.clone())),
            _ => None,
        })
        .collect()
}

fn reassemble(chunks: &[(usize, Vec<u8>)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (offset, data) in chunks {
        assert_eq!(*offset, bytes.len(), "chunks must be sequential and gapless");
        bytes.extend_from_slice(data);
    }
    bytes
}

/// An op of exactly 4 × capacity bytes plans four chunks; one byte more
/// tips it into a fifth, one-byte chunk — the §V-A 4-/5-transaction split.
#[test]
fn proof_size_straddles_the_four_to_five_chunk_boundary() {
    let capacity = chunk_capacity();

    let at_boundary = op_with_encoded_len(4 * capacity);
    let plan = plan_op(&at_boundary, 9, 1);
    let chunks = write_chunks(&plan);
    assert_eq!(chunks.len(), 4, "exactly at capacity: four chunks");
    assert!(chunks.iter().all(|(_, data)| data.len() == capacity));
    assert_eq!(reassemble(&chunks), at_boundary.encode());

    let past_boundary = op_with_encoded_len(4 * capacity + 1);
    let plan = plan_op(&past_boundary, 9, 1);
    let chunks = write_chunks(&plan);
    assert_eq!(chunks.len(), 5, "one byte over: a fifth chunk");
    assert_eq!(chunks.last().unwrap().1.len(), 1, "the straggler carries one byte");
    assert_eq!(reassemble(&chunks), past_boundary.encode());

    // One byte under the boundary stays at four chunks, with a short tail.
    let under_boundary = op_with_encoded_len(4 * capacity - 1);
    let chunks = write_chunks(&plan_op(&under_boundary, 9, 1));
    assert_eq!(chunks.len(), 4);
    assert_eq!(chunks.last().unwrap().1.len(), capacity - 1);
    assert_eq!(reassemble(&chunks), under_boundary.encode());
}

/// Every plan around the boundary stays one-transaction sized and ends in
/// the staged execution, regardless of which side of the split it lands on.
#[test]
fn boundary_plans_keep_the_staging_shape() {
    let capacity = chunk_capacity();
    for delta in [-2i64, -1, 0, 1, 2] {
        let target = (4 * capacity as i64 + delta) as usize;
        let plan = plan_op(&op_with_encoded_len(target), 3, 1);
        assert!(
            matches!(plan.last(), Some(GuestInstruction::ExecStaged { .. })),
            "staged execution closes the plan"
        );
        assert_eq!(
            plan.iter().filter(|i| matches!(i, GuestInstruction::VerifySigs { .. })).count(),
            1,
            "a single verification batch for one signature"
        );
        for instruction in &plan {
            let tx = Transaction::build(
                Pubkey::from_label("payer"),
                1,
                vec![Instruction::new(
                    Pubkey::from_label("program"),
                    vec![Pubkey::from_label("state")],
                    instruction.encode(),
                )],
                FeePolicy::BaseOnly,
            );
            assert!(tx.is_ok(), "boundary chunk overflows a transaction");
        }
    }
}

/// Hand-built deployment (mirrors `tests/orchestration.rs`): host chain,
/// guest program, counterparty, and a relayer the test can poke directly.
struct World {
    host: HostChain,
    cp: CounterpartyChain,
    contract: Rc<RefCell<GuestContract>>,
    relayer: Relayer,
    keypairs: Vec<Keypair>,
    payer: Pubkey,
    program_id: Pubkey,
    last_seen_slot: u64,
}

impl World {
    fn new(seed: u64) -> Self {
        let mut host = HostChain::new(CongestionModel::idle(), seed);
        let program_id = Pubkey::from_label("guest-program");
        let payer = Pubkey::from_label("payer");
        host.bank_mut().airdrop(payer, 1_000_000_000_000);
        host.bank_mut().airdrop(Pubkey::from_label("guest-vault"), 1);
        host.bank_mut().airdrop(Pubkey::from_label("relayer-payer"), 1_000_000_000_000);

        let keypairs: Vec<Keypair> = (0..3).map(Keypair::from_seed).collect();
        let validators = keypairs.iter().map(|kp| (kp.public(), 100)).collect();
        let contract =
            Rc::new(RefCell::new(GuestContract::new(GuestConfig::fast(), validators, 0, 0)));
        let program =
            GuestProgram::new(program_id, Pubkey::from_label("guest-vault"), contract.clone());
        host.bank_mut().register_program(program_id, Box::new(program));

        let mut cp = CounterpartyChain::new(
            CounterpartyConfig {
                num_validators: 10,
                participation: 1.0,
                block_interval_ms: 2_000,
                rotation_interval_blocks: 0,
            },
            seed,
        );
        let mut clock = 0;
        let mut height = 0;
        let endpoints =
            connect_chains(&contract, &mut cp, &keypairs, &mut clock, &mut height).unwrap();
        {
            let mut guard = contract.borrow_mut();
            let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap();
            module.ics20_mut().unwrap().mint("alice", "wsol", 1_000_000);
        }
        let relayer = Relayer::new(
            RelayerConfig::default(),
            Pubkey::from_label("relayer-payer"),
            program_id,
            endpoints,
        );
        Self { host, cp, contract, relayer, keypairs, payer, program_id, last_seen_slot: 0 }
    }

    fn submit_op(&mut self, op: GuestOp) -> u64 {
        let tx = Transaction::build(
            self.payer,
            1,
            vec![Instruction::new(
                self.program_id,
                vec![Pubkey::from_label("guest-state")],
                GuestInstruction::Inline { op }.encode(),
            )],
            FeePolicy::BaseOnly,
        )
        .unwrap();
        self.host.submit(tx)
    }

    fn step(&mut self) {
        self.host.advance_slot();
        let mut signs = Vec::new();
        for block in self.host.blocks_since(self.last_seen_slot) {
            for event in &block.events {
                if let Ok(GuestEvent::NewBlock { block }) =
                    serde_json::from_slice::<GuestEvent>(&event.payload)
                {
                    for kp in &self.keypairs {
                        signs.push(GuestOp::SignBlock {
                            height: block.height,
                            pubkey: kp.public(),
                            signature: kp.sign(&block.signing_bytes()),
                        });
                    }
                }
            }
        }
        self.last_seen_slot = self.host.slot();
        for op in signs {
            self.submit_op(op);
        }
        if self.host.now_ms() % 2_000 < 600 {
            let now = self.host.now_ms();
            self.cp.produce_block(now);
        }
        self.relayer.tick(&mut self.host, &mut self.cp, &self.contract);
    }
}

/// A chunk lost in transit never confirms; after [`relayer::RESUBMIT_AFTER_SLOTS`]
/// the relayer re-queues it and the job still completes end to end.
#[test]
fn dropped_chunk_is_resubmitted_and_the_job_completes() {
    let mut world = World::new(11);
    world.submit_op(GuestOp::SendTransfer {
        port: world.relayer.endpoints().port.clone(),
        channel: world.relayer.endpoints().guest_channel.clone(),
        denom: "wsol".into(),
        amount: 77,
        sender: "alice".into(),
        receiver: "bob".into(),
        memo: String::new(),
        timeout: Timeout::NEVER,
    });

    // Every submission is lost for the first 150 slots, then the network
    // heals. The armed fault RNG stays live so timed-out submissions keep
    // being re-queued after the window closes.
    world.relayer.set_chunk_faults(Some(ChunkFaults {
        drop_probability: 1.0,
        seed: 11,
        ..ChunkFaults::default()
    }));
    for _ in 0..150 {
        world.step();
    }
    assert!(world.relayer.lost_submissions() > 0, "the fault window dropped chunks");
    world.relayer.set_chunk_faults(None);
    for _ in 0..800 {
        world.step();
    }

    assert!(world.relayer.resubmissions() > 0, "lost chunks were re-queued");
    assert_eq!(world.relayer.failed_jobs(), 0);
    assert_eq!(world.relayer.backlog(), 0, "no stranded work after recovery");
    let acks = world.relayer.records().iter().filter(|r| r.kind == JobKind::AckPacket).count();
    assert_eq!(acks, 1, "the transfer completed despite the drops");
    // The chain kept finalising throughout.
    let contract = world.contract.borrow();
    assert!(contract.is_finalised(contract.head_height()));
}
