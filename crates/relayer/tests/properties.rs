//! Property-based tests of the relayer's chunking planner.

use guest_chain::{GuestInstruction, GuestOp};
use host_sim::transaction::{FeePolicy, Instruction, Transaction};
use host_sim::Pubkey;
use ibc_core::types::ClientId;
use proptest::prelude::*;
use relayer::chunking::{plan_op, SIG_CHECKS_PER_TX};

fn arb_update_op() -> impl Strategy<Value = (GuestOp, usize)> {
    (0usize..30_000, 0usize..200).prop_map(|(header_len, sigs)| {
        (
            GuestOp::UpdateClient {
                client: ClientId::new(0),
                header: "h".repeat(header_len),
                num_signatures: sigs,
            },
            sigs,
        )
    })
}

proptest! {
    /// Every plan reassembles to exactly the encoded operation, covers all
    /// signature checks, and ends with execution.
    #[test]
    fn plans_are_complete_and_ordered((op, sigs) in arb_update_op(), buffer in any::<u64>()) {
        let plan = plan_op(&op, buffer, sigs);
        prop_assert!(!plan.is_empty());

        let mut reassembled = Vec::new();
        let mut checks = 0usize;
        let mut seen_exec = false;
        let mut seen_verify = false;
        for instruction in &plan {
            match instruction {
                GuestInstruction::WriteChunk { buffer: b, offset, data } => {
                    prop_assert!(!seen_verify && !seen_exec, "chunks come first");
                    prop_assert_eq!(*b, buffer);
                    prop_assert_eq!(*offset, reassembled.len(), "sequential offsets");
                    reassembled.extend_from_slice(data);
                }
                GuestInstruction::VerifySigs { buffer: b, count } => {
                    prop_assert!(!seen_exec, "verification precedes execution");
                    prop_assert_eq!(*b, buffer);
                    prop_assert!(*count <= SIG_CHECKS_PER_TX);
                    checks += count;
                    seen_verify = true;
                }
                GuestInstruction::ExecStaged { buffer: b } => {
                    prop_assert_eq!(*b, buffer);
                    prop_assert!(!seen_exec, "exactly one execution");
                    seen_exec = true;
                }
                GuestInstruction::Inline { .. } => {
                    prop_assert_eq!(plan.len(), 1, "inline plans are singletons");
                }
                GuestInstruction::DropBuffer { .. } => {
                    prop_assert!(false, "plans never drop buffers");
                }
            }
        }
        prop_assert_eq!(checks, sigs, "every signature gets verified");
        if plan.len() > 1 {
            prop_assert!(seen_exec);
            prop_assert_eq!(reassembled, op.encode());
        }
    }

    /// Every planned instruction fits in a host transaction.
    #[test]
    fn every_instruction_fits_a_transaction((op, sigs) in arb_update_op()) {
        for instruction in plan_op(&op, 1, sigs) {
            let result = Transaction::build(
                Pubkey::from_label("payer"),
                1,
                vec![Instruction::new(
                    Pubkey::from_label("program"),
                    vec![Pubkey::from_label("state")],
                    instruction.encode(),
                )],
                FeePolicy::BaseOnly,
            );
            prop_assert!(result.is_ok());
        }
    }

    /// Instruction encoding round-trips, binary frames included.
    #[test]
    fn instruction_encoding_round_trip(
        buffer in any::<u64>(),
        offset in 0usize..100_000,
        data in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let chunk = GuestInstruction::WriteChunk { buffer, offset, data };
        prop_assert_eq!(GuestInstruction::decode(&chunk.encode()).unwrap(), chunk);
        let verify = GuestInstruction::VerifySigs { buffer, count: 3 };
        prop_assert_eq!(GuestInstruction::decode(&verify.encode()).unwrap(), verify);
    }
}
