//! The relayer event loop (Alg. 2, relayer half).
//!
//! The relayer polls both chains for events and forwards packets, proofs
//! and light-client updates. Toward the counterparty it makes direct calls
//! (that side has no relevant resource limits); toward the guest it must
//! push everything through 1232-byte host transactions, submitted one at a
//! time with confirmation awaits — the behaviour whose latency and cost the
//! paper measures in Figs. 4–5 and §V-A/§V-B.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use counterparty_sim::CounterpartyChain;
use guest_chain::{GuestContract, GuestEvent, GuestHeader, GuestInstruction, GuestOp};
use host_sim::{FeePolicy, HostChain, HostProfile, Instruction, Pubkey, Transaction};
use ibc_core::channel::{Acknowledgement, Packet};
use ibc_core::handler::ProofData;
use ibc_core::IbcEvent;
use profiler::Profiler;
use sim_crypto::rng::SplitMix64;
use telemetry::{names, SpanId, Telemetry, TraceId};

use crate::bootstrap::Endpoints;
use crate::chunking::{plan_op_for, sig_checks_per_tx_for};
use crate::fees::FeeStrategy;
use crate::records::{JobKind, JobRecord};

/// Relayer configuration.
#[derive(Clone, Copy, Debug)]
pub struct RelayerConfig {
    /// How relay transactions pay for inclusion. The paper's relayer used
    /// the default fee model (§V-B), i.e. [`FeeStrategy::Base`].
    pub fee_strategy: FeeStrategy,
    /// Whether the relayer also invokes `GenerateBlock` when due (Alg. 1
    /// allows anyone to).
    pub drive_blocks: bool,
    /// The host chain's runtime limits, used for transaction building and
    /// chunk planning (§VI-D).
    pub host_profile: HostProfile,
}

impl Default for RelayerConfig {
    fn default() -> Self {
        Self {
            fee_strategy: FeeStrategy::Base,
            drive_blocks: true,
            host_profile: HostProfile::SOLANA,
        }
    }
}

/// Deterministic chunk-submission fault injection (fault drills; the
/// `chaos` crate drives this).
///
/// Each probability is sampled — from a dedicated RNG, so an inert value
/// leaves the run untouched — when the relayer submits a transaction of a
/// chunked job:
///
/// * **drop**: the submission is lost in transit (never reaches the
///   mempool); the relayer re-submits after [`RESUBMIT_AFTER_SLOTS`].
/// * **duplicate**: the transaction is submitted twice (an at-least-once
///   RPC retry); the guest contract must tolerate the replay.
/// * **reorder**: the next two planned instructions swap submission order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChunkFaults {
    /// Per-submission probability of losing the transaction.
    pub drop_probability: f64,
    /// Per-submission probability of submitting it twice.
    pub duplicate_probability: f64,
    /// Per-submission probability of swapping the next two instructions.
    pub reorder_probability: f64,
    /// Seed of the dedicated fault RNG (used once, on first installation).
    pub seed: u64,
}

impl ChunkFaults {
    fn is_inert(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.reorder_probability <= 0.0
    }
}

/// How long the relayer waits for an unconfirmed job transaction before
/// assuming the submission was lost and re-submitting it. Only armed while
/// chunk faults are installed; an unfaulted relayer never needs it because
/// the simulated mempool never loses transactions.
pub const RESUBMIT_AFTER_SLOTS: u64 = 64;

/// Work the relayer has noticed but not yet pushed to the guest.
#[derive(Debug)]
#[allow(clippy::enum_variant_names)] // "ToGuest" is the point: this is the guest-bound queue
enum Intent {
    DeliverToGuest {
        packet: Packet,
        seen_cp_height: u64,
    },
    AckToGuest {
        packet: Packet,
        ack: Acknowledgement,
        seen_cp_height: u64,
    },
    /// A guest-sent packet expired before delivery: prove non-receipt on
    /// the counterparty and refund on the guest.
    TimeoutToGuest {
        packet: Packet,
        seen_cp_height: u64,
    },
}

/// A multi-transaction job in flight on the host chain.
#[derive(Debug)]
struct ActiveJob {
    kind: JobKind,
    buffer: u64,
    queue: VecDeque<GuestInstruction>,
    in_flight: Option<(u64, GuestInstruction)>,
    /// Host slot of the in-flight submission (lost-submission detection).
    submitted_slot: u64,
    scheduled_ms: u64,
    first_tx_ms: Option<u64>,
    last_tx_ms: u64,
    tx_count: usize,
    fee_lamports: u64,
    sig_checks: usize,
    retries: usize,
    span: Option<SpanId>,
    traces: Vec<TraceId>,
}

/// Transient on-chain failures are retried this many times before the job
/// is abandoned (and its staging buffer dropped).
const MAX_JOB_RETRIES: usize = 2;

/// The relayer.
pub struct Relayer {
    config: RelayerConfig,
    payer: Pubkey,
    guest_program: Pubkey,
    guest_state_account: Pubkey,
    endpoints: Endpoints,
    next_buffer: u64,
    last_host_slot: u64,
    recent_load: f64,
    pending_guest_packets: Vec<Packet>,
    pending_guest_acks: Vec<(Packet, Acknowledgement)>,
    intents: VecDeque<Intent>,
    active: Option<ActiveJob>,
    generate_in_flight: Option<u64>,
    pending_cleanup: Vec<u64>,
    records: Vec<JobRecord>,
    failed_jobs: usize,
    chunk_faults: Option<ChunkFaults>,
    chunk_rng: Option<SplitMix64>,
    next_lost_id: u64,
    lost_submissions: usize,
    resubmissions: usize,
    telemetry: Telemetry,
    /// Wall-clock self-profiler (disabled by default; wall time never
    /// feeds back into scheduling decisions).
    profiler: Profiler,
    /// Open while guest-side packets/acks wait for a finalised guest
    /// header to reach the counterparty's light client — a finality stall
    /// shows up as this span stretching across the outage on every
    /// waiting packet's trace.
    cp_update_span: Option<SpanId>,
}

impl Relayer {
    /// Creates a relayer for an established link.
    pub fn new(
        config: RelayerConfig,
        payer: Pubkey,
        guest_program: Pubkey,
        endpoints: Endpoints,
    ) -> Self {
        Self {
            config,
            payer,
            guest_program,
            guest_state_account: Pubkey::from_label("guest-state"),
            endpoints,
            next_buffer: 1,
            last_host_slot: 0,
            recent_load: 0.0,
            pending_guest_packets: Vec::new(),
            pending_guest_acks: Vec::new(),
            intents: VecDeque::new(),
            active: None,
            generate_in_flight: None,
            pending_cleanup: Vec::new(),
            records: Vec::new(),
            failed_jobs: 0,
            chunk_faults: None,
            chunk_rng: None,
            next_lost_id: u64::MAX,
            lost_submissions: 0,
            resubmissions: 0,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            cp_update_span: None,
        }
    }

    /// Installs an observability sink. Each multi-transaction job becomes a
    /// span linked to the packet traces it serves (a `ClientUpdate` span
    /// links *every* queued intent's packet — which is what makes a relay
    /// stall visible as a long light-client-update span on those traces).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        const JOB_LATENCY_BOUNDS: [f64; 10] = [
            1_000.0,
            5_000.0,
            10_000.0,
            20_000.0,
            30_000.0,
            60_000.0,
            120_000.0,
            300_000.0,
            900_000.0,
            3_600_000.0,
        ];
        telemetry
            .register_histogram("relayer.job.latency_ms", &JOB_LATENCY_BOUNDS)
            .expect("job-latency bounds are strictly ascending");
        // Per-kind twins of the aggregate histogram: latency attribution
        // reads these to tell a slow client update from a slow delivery.
        for kind in JobKind::ALL {
            telemetry
                .register_histogram(
                    &format!("relayer.job.{}.latency_ms", kind.name()),
                    &JOB_LATENCY_BOUNDS,
                )
                .expect("job-latency bounds are strictly ascending");
        }
        self.telemetry = telemetry;
    }

    /// Installs a wall-clock self-profiler. Scopes only measure wall
    /// time — queues, RNG streams and submissions are untouched, so a
    /// profiled run stays byte-identical to a bare one.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Installs (or removes, with `None` or an all-zero value) chunk-level
    /// fault injection. The dedicated fault RNG is seeded on the first
    /// installation and survives later probability changes, so a fault
    /// window driven slot-by-slot samples one coherent stream.
    pub fn set_chunk_faults(&mut self, faults: Option<ChunkFaults>) {
        match faults {
            Some(faults) if !faults.is_inert() => {
                if self.chunk_rng.is_none() {
                    self.chunk_rng =
                        Some(sim_crypto::rng::seed_stream(faults.seed, "relayer.chunk_faults"));
                }
                self.chunk_faults = Some(faults);
            }
            _ => self.chunk_faults = None,
        }
    }

    /// Job submissions lost to injected drop faults.
    pub fn lost_submissions(&self) -> usize {
        self.lost_submissions
    }

    /// Job transactions re-submitted after a presumed-lost submission.
    pub fn resubmissions(&self) -> usize {
        self.resubmissions
    }

    /// Completed job measurements (Figs. 4–5, §V-A).
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Jobs dropped after an unrecoverable on-chain failure.
    pub fn failed_jobs(&self) -> usize {
        self.failed_jobs
    }

    /// Packets sent by the guest still awaiting relay to the counterparty.
    pub fn backlog(&self) -> usize {
        self.pending_guest_packets.len() + self.intents.len()
    }

    /// Guest-sent packets waiting for a finalised header to prove under.
    pub fn pending_packets(&self) -> usize {
        self.pending_guest_packets.len()
    }

    /// Queued guest-bound work items (deliveries, acks, timeouts).
    pub fn pending_intents(&self) -> usize {
        self.intents.len()
    }

    /// Whether a guest-bound job is mid-flight (activated off the intent
    /// queue, so [`Relayer::backlog`] no longer counts it).
    pub fn job_in_flight(&self) -> bool {
        self.active.is_some()
    }

    /// The host account this relayer pays fees from.
    pub fn payer(&self) -> Pubkey {
        self.payer
    }

    /// The endpoints this relayer serves.
    pub fn endpoints(&self) -> &Endpoints {
        &self.endpoints
    }

    /// One scheduling round. Call once per host slot (or less often — the
    /// relayer catches up on everything that happened since its last look).
    pub fn tick(
        &mut self,
        host: &mut HostChain,
        cp: &mut CounterpartyChain,
        contract: &Rc<RefCell<GuestContract>>,
    ) {
        let guest_events = {
            let _scan = self.profiler.scope("scan.host");
            self.scan_host_blocks(host)
        };
        // Only armed once chunk faults have ever been installed, so an
        // unfaulted run is bit-identical with or without the machinery.
        if self.chunk_rng.is_some() {
            self.resubmit_lost_submission(host);
        }
        // Free staging buffers of abandoned jobs.
        for buffer in std::mem::take(&mut self.pending_cleanup) {
            self.submit_instruction(host, &GuestInstruction::DropBuffer { buffer });
        }
        let now_ms = host.now_ms();
        {
            let _guest = self.profiler.scope("guest.events");
            self.process_guest_events(guest_events, cp, contract, now_ms);
        }
        self.process_cp_events(cp);
        if self.config.drive_blocks {
            self.maybe_generate_block(host, contract);
        }
        {
            let _activate = self.profiler.scope("job.activate");
            self.activate_next_intent(host, cp, contract);
        }
        let _pump = self.profiler.scope("job.pump");
        self.pump_active_job(host);
    }

    /// Scans blocks since the last tick: confirms in-flight transactions
    /// and collects guest events.
    fn scan_host_blocks(&mut self, host: &HostChain) -> Vec<GuestEvent> {
        let mut events = Vec::new();
        let blocks = host.blocks_since(self.last_host_slot);
        for block in blocks {
            self.recent_load = 0.8 * self.recent_load + 0.2 * block.load;
            for (tx_id, outcome) in &block.transactions {
                if self.generate_in_flight == Some(*tx_id) {
                    self.generate_in_flight = None;
                }
                let Some(active) = &mut self.active else { continue };
                let Some((in_flight_id, instruction)) = &active.in_flight else {
                    continue;
                };
                if in_flight_id != tx_id {
                    continue;
                }
                let failed_instruction = instruction.clone();
                active.in_flight = None;
                active.tx_count += 1;
                active.fee_lamports += outcome.fee_lamports;
                active.first_tx_ms.get_or_insert(block.time_ms);
                active.last_tx_ms = block.time_ms;
                if !outcome.is_ok() {
                    if active.retries < MAX_JOB_RETRIES {
                        // Transient failure (e.g. a compute-starved slot):
                        // resubmit the same instruction.
                        active.retries += 1;
                        active.queue.push_front(failed_instruction);
                        if self.telemetry.is_recording() {
                            let traces = active.traces.clone();
                            self.telemetry.counter_add("relayer.tx.retries", 1);
                            self.telemetry.event(
                                block.time_ms,
                                names::CHUNK_RETRY,
                                &traces,
                                &[("kind", active.kind.name().into())],
                            );
                        }
                    } else {
                        // Unrecoverable (e.g. duplicate delivery raced by
                        // another relayer): abandon the job and free its
                        // staging buffer.
                        let buffer = active.buffer;
                        let span = active.span.take();
                        self.failed_jobs += 1;
                        self.active = None;
                        self.pending_cleanup.push(buffer);
                        if self.telemetry.is_recording() {
                            self.telemetry.counter_add("relayer.jobs.abandoned", 1);
                            if let Some(span) = span {
                                self.telemetry.span_end(block.time_ms, span);
                            }
                        }
                    }
                }
            }
            for event in &block.events {
                if event.program_id != self.guest_program {
                    continue;
                }
                if let Ok(guest_event) = serde_json::from_slice::<GuestEvent>(&event.payload) {
                    events.push(guest_event);
                }
            }
        }
        self.last_host_slot = host.slot();
        events
    }

    /// Handles guest-side events: queue outbound packets/acks, and on each
    /// finalised block push a header plus everything provable to the
    /// counterparty (Alg. 2, lines 4–10).
    fn process_guest_events(
        &mut self,
        events: Vec<GuestEvent>,
        cp: &mut CounterpartyChain,
        contract: &Rc<RefCell<GuestContract>>,
        now_ms: u64,
    ) {
        for event in events {
            match event {
                GuestEvent::Ibc(IbcEvent::SendPacket { packet }) => {
                    let trace = self.telemetry.trace_for_packet(
                        "guest",
                        packet.source_channel.as_str(),
                        packet.sequence,
                    );
                    self.link_cp_update_wait(now_ms, trace);
                    self.pending_guest_packets.push(packet);
                }
                GuestEvent::Ibc(IbcEvent::WriteAcknowledgement { packet, ack }) => {
                    // The ack travels back to the packet's origin — the cp.
                    let trace = self.telemetry.trace_for_packet(
                        "cp",
                        packet.source_channel.as_str(),
                        packet.sequence,
                    );
                    self.link_cp_update_wait(now_ms, trace);
                    self.pending_guest_acks.push((packet, ack));
                }
                GuestEvent::FinalisedBlock { block, signatures } => {
                    let has_work = !self.pending_guest_packets.is_empty()
                        || !self.pending_guest_acks.is_empty();
                    if !has_work && !block.is_last_in_epoch() {
                        continue; // Alg. 2 line 5: nothing worth relaying.
                    }
                    let header = GuestHeader { block: block.clone(), signatures };
                    if cp
                        .ibc_mut()
                        .update_client(&self.endpoints.guest_client_on_cp, &header.encode())
                        .is_err()
                    {
                        continue; // e.g. stale relay; retry on the next block.
                    }
                    self.deliver_provables_to_cp(&block, cp, contract);
                    self.close_cp_update_wait(now_ms);
                }
                _ => {}
            }
        }
    }

    /// Links `trace` to the open guest→cp client-update wait span, opening
    /// one if necessary. The span measures how long guest-side work waits
    /// for the next finalised guest header to reach the counterparty.
    fn link_cp_update_wait(&mut self, now_ms: u64, trace: Option<TraceId>) {
        let Some(trace) = trace else { return };
        match self.cp_update_span {
            Some(span) => self.telemetry.span_link(span, trace),
            None => {
                self.cp_update_span =
                    self.telemetry.span_start(now_ms, names::CP_CLIENT_UPDATE, &[trace]);
            }
        }
    }

    /// Closes the guest→cp client-update wait span after a header landed,
    /// reopening it for whatever could not be proven under that header.
    fn close_cp_update_wait(&mut self, now_ms: u64) {
        let Some(span) = self.cp_update_span.take() else { return };
        self.telemetry.span_end(now_ms, span);
        // Set-backed dedup: a heavy-traffic backlog makes the linear
        // `contains` scan quadratic per finalised block.
        let mut seen = std::collections::HashSet::new();
        let mut leftover = Vec::new();
        for packet in &self.pending_guest_packets {
            if let Some(trace) = self.telemetry.trace_for_packet(
                "guest",
                packet.source_channel.as_str(),
                packet.sequence,
            ) {
                if seen.insert(trace) {
                    leftover.push(trace);
                }
            }
        }
        for (packet, _) in &self.pending_guest_acks {
            if let Some(trace) = self.telemetry.trace_for_packet(
                "cp",
                packet.source_channel.as_str(),
                packet.sequence,
            ) {
                if seen.insert(trace) {
                    leftover.push(trace);
                }
            }
        }
        if !leftover.is_empty() {
            self.cp_update_span =
                self.telemetry.span_start(now_ms, names::CP_CLIENT_UPDATE, &leftover);
        }
    }

    /// Forwards every pending packet/ack whose commitment is covered by the
    /// just-verified guest block.
    fn deliver_provables_to_cp(
        &mut self,
        block: &guest_chain::GuestBlock,
        cp: &mut CounterpartyChain,
        contract: &Rc<RefCell<GuestContract>>,
    ) {
        let guest = contract.borrow();
        let store = guest.ibc().store();

        let mut remaining = Vec::new();
        for packet in self.pending_guest_packets.drain(..) {
            let key = ibc_core::path::packet_commitment(
                &packet.source_port,
                &packet.source_channel,
                packet.sequence,
            );
            // Only deliverable if the commitment is inside this block's
            // state root (it may have been sent after block creation).
            // Prefer the node's proof-at-height service: under sustained
            // traffic the live trie has already moved past this block, so
            // a proof from current state would no longer verify.
            let proof = guest.prove_at(block.height, &key).or_else(|| store.prove(&key).ok());
            let Some(proof) = proof else {
                remaining.push(packet);
                continue;
            };
            if !proof.verify_member(&block.state_root, &key, packet.commitment().as_bytes()) {
                remaining.push(packet);
                continue;
            }
            let proof_data =
                ProofData { height: block.height, bytes: ibc_core::store::encode_proof(&proof) };
            // The counterparty writes the ack; we pick it up from its
            // events and queue an AckToGuest intent.
            let now = cp.host_time();
            match cp.ibc_mut().recv_packet(&packet, proof_data, now) {
                Ok(_) => {}
                Err(ibc_core::IbcError::Timeout(_)) => {
                    // Expired before delivery: refund the sender via a
                    // guest-side TimeoutPacket once non-receipt is provable.
                    self.intents
                        .push_back(Intent::TimeoutToGuest { packet, seen_cp_height: now.height });
                }
                Err(_) => {
                    self.failed_jobs += 1;
                }
            }
        }
        self.pending_guest_packets = remaining;

        let mut remaining = Vec::new();
        for (packet, ack) in self.pending_guest_acks.drain(..) {
            let key = ibc_core::path::packet_ack(
                &packet.destination_port,
                &packet.destination_channel,
                packet.sequence,
            );
            let proof = guest.prove_at(block.height, &key).or_else(|| store.prove(&key).ok());
            let Some(proof) = proof else {
                remaining.push((packet, ack));
                continue;
            };
            if !proof.verify_member(&block.state_root, &key, ack.commitment().as_bytes()) {
                remaining.push((packet, ack));
                continue;
            }
            let proof_data =
                ProofData { height: block.height, bytes: ibc_core::store::encode_proof(&proof) };
            let _ = cp.ibc_mut().acknowledge_packet(&packet, &ack, proof_data);
        }
        self.pending_guest_acks = remaining;
    }

    /// Queues counterparty events as work toward the guest.
    fn process_cp_events(&mut self, cp: &mut CounterpartyChain) {
        let height = cp.height();
        for event in cp.drain_events() {
            match event {
                IbcEvent::SendPacket { packet } => {
                    self.intents
                        .push_back(Intent::DeliverToGuest { packet, seen_cp_height: height });
                }
                IbcEvent::WriteAcknowledgement { packet, ack }
                    // Only acks for packets the *guest* sent travel this way.
                    if packet.source_channel == self.endpoints.guest_channel => {
                        self.intents.push_back(Intent::AckToGuest {
                            packet,
                            ack,
                            seen_cp_height: height,
                        });
                    }
                _ => {}
            }
        }
    }

    /// Fires a `GenerateBlock` transaction when Alg. 1's conditions hold.
    fn maybe_generate_block(
        &mut self,
        host: &mut HostChain,
        contract: &Rc<RefCell<GuestContract>>,
    ) {
        if self.generate_in_flight.is_some() {
            return;
        }
        let due = {
            let guest = contract.borrow();
            let head = guest.head();
            guest.is_finalised(head.height)
                && (guest.state_root() != head.state_root
                    || host.now_ms().saturating_sub(head.timestamp_ms) >= guest.config().delta_ms)
        };
        if !due {
            return;
        }
        let id =
            self.submit_instruction(host, &GuestInstruction::Inline { op: GuestOp::GenerateBlock });
        self.generate_in_flight = Some(id);
    }

    /// Starts the next queued intent once the pipeline is free.
    ///
    /// Proofs are generated against the guest client's **latest verified**
    /// consensus state, not the counterparty's newest header — chasing the
    /// head would livelock on chains that produce blocks faster than a
    /// chunked update completes.
    fn activate_next_intent(
        &mut self,
        host: &HostChain,
        cp: &CounterpartyChain,
        contract: &Rc<RefCell<GuestContract>>,
    ) {
        if self.active.is_some() {
            return;
        }
        let Some(intent) = self.intents.front() else { return };

        // Every intent kind needs a counterparty header covering the event.
        let seen_height = match intent {
            Intent::DeliverToGuest { seen_cp_height, .. } => *seen_cp_height,
            Intent::AckToGuest { seen_cp_height, .. } => *seen_cp_height,
            Intent::TimeoutToGuest { seen_cp_height, .. } => *seen_cp_height,
        };
        if cp.height() <= seen_height {
            return; // Wait for the counterparty to commit the state.
        }

        // What does the guest's client already trust?
        let verified = {
            let guard = contract.borrow();
            let Ok(client) = guard.ibc().client(&self.endpoints.cp_client_on_guest) else {
                return;
            };
            let latest = client.latest_height();
            client.consensus_state(latest).map(|cs| (latest, cs))
        };

        // Try to serve the intent with the trusted consensus; fall back to
        // a client update when it is stale.
        if let Some((proof_height, consensus)) = verified {
            if proof_height > seen_height
                && self.try_start_packet_job(host, cp, proof_height, &consensus)
            {
                return;
            }
        }

        // The client lags (or the trusted root no longer matches): update
        // it. Validator-set rotations must be relayed *in order* — a client
        // that skips a rotation header can never verify anything signed by
        // the new set — so target the earliest pending rotation, if any.
        let client_height = verified.map(|(h, _)| h).unwrap_or(0);
        let latest = cp.latest_header().expect("cp.height() > 0 checked above");
        let mut target = latest.clone();
        for height in client_height + 1..target.height {
            if let Some(candidate) = cp.header_at(height) {
                if candidate.next_validators.is_some() {
                    target = candidate.clone();
                    break;
                }
            }
        }
        if target.height <= client_height {
            return; // Nothing newer to relay yet.
        }
        let op = GuestOp::UpdateClient {
            client: self.endpoints.cp_client_on_guest.clone(),
            header: String::from_utf8(target.encode()).expect("JSON is UTF-8"),
            num_signatures: target.signatures.len(),
        };
        self.start_job(host, JobKind::ClientUpdate, &op, target.signatures.len());
    }

    /// Attempts to build the front intent's packet job against the given
    /// verified consensus. Returns `true` when a job was started (or the
    /// intent was consumed as unrecoverable).
    fn try_start_packet_job(
        &mut self,
        host: &HostChain,
        cp: &CounterpartyChain,
        proof_height: u64,
        consensus: &ibc_core::client::ConsensusState,
    ) -> bool {
        let intent = self.intents.pop_front().expect("caller checked non-empty");
        match intent {
            Intent::DeliverToGuest { packet, seen_cp_height } => {
                let key = ibc_core::path::packet_commitment(
                    &packet.source_port,
                    &packet.source_channel,
                    packet.sequence,
                );
                // Prove at the trusted height; live state has usually
                // moved past it under sustained traffic.
                let proof =
                    cp.prove_at(proof_height, &key).or_else(|| cp.ibc().store().prove(&key).ok());
                let Some(proof) = proof else {
                    self.failed_jobs += 1;
                    return true;
                };
                if !proof.verify_member(&consensus.root, &key, packet.commitment().as_bytes()) {
                    // The trusted root predates (or postdates) the
                    // commitment; a fresher header is needed.
                    self.intents.push_front(Intent::DeliverToGuest { packet, seen_cp_height });
                    return false;
                }
                let op = GuestOp::RecvPacket { packet, proof_height, proof };
                self.start_job(host, JobKind::RecvPacket, &op, 0);
                true
            }
            Intent::AckToGuest { packet, ack, seen_cp_height } => {
                let key = ibc_core::path::packet_ack(
                    &packet.destination_port,
                    &packet.destination_channel,
                    packet.sequence,
                );
                let proof =
                    cp.prove_at(proof_height, &key).or_else(|| cp.ibc().store().prove(&key).ok());
                let Some(proof) = proof else {
                    self.failed_jobs += 1;
                    return true;
                };
                if !proof.verify_member(&consensus.root, &key, ack.commitment().as_bytes()) {
                    self.intents.push_front(Intent::AckToGuest { packet, ack, seen_cp_height });
                    return false;
                }
                let op = GuestOp::AckPacket { packet, ack, proof_height, proof };
                self.start_job(host, JobKind::AckPacket, &op, 0);
                true
            }
            Intent::TimeoutToGuest { packet, seen_cp_height } => {
                // The guest's timeout handler checks expiry against the
                // consensus at the proof height.
                if !packet.timeout.has_expired(proof_height, consensus.timestamp_ms) {
                    self.intents.push_front(Intent::TimeoutToGuest { packet, seen_cp_height });
                    return false;
                }
                let key = ibc_core::path::packet_receipt(
                    &packet.destination_port,
                    &packet.destination_channel,
                    packet.sequence,
                );
                let proof =
                    cp.prove_at(proof_height, &key).or_else(|| cp.ibc().store().prove(&key).ok());
                let Some(proof) = proof else {
                    self.failed_jobs += 1;
                    return true;
                };
                if !proof.verify_non_member(&consensus.root, &key) {
                    // Delivered after all (raced by another relayer).
                    self.failed_jobs += 1;
                    return true;
                }
                let op = GuestOp::TimeoutPacket { packet, proof_height, proof };
                self.start_job(host, JobKind::TimeoutPacket, &op, 0);
                true
            }
        }
    }

    /// The packet traces a job serves: the op's own packet, or — for a
    /// client update — every packet whose delivery waits on the update.
    fn job_traces(&self, op: &GuestOp) -> Vec<TraceId> {
        if !self.telemetry.is_recording() {
            return Vec::new();
        }
        // Packets delivered *to* the guest originated on the counterparty;
        // acks and timeouts coming home concern guest-origin packets.
        match op {
            GuestOp::RecvPacket { packet, .. } => self
                .telemetry
                .trace_for_packet("cp", packet.source_channel.as_str(), packet.sequence)
                .into_iter()
                .collect(),
            GuestOp::AckPacket { packet, .. } | GuestOp::TimeoutPacket { packet, .. } => self
                .telemetry
                .trace_for_packet("guest", packet.source_channel.as_str(), packet.sequence)
                .into_iter()
                .collect(),
            GuestOp::UpdateClient { .. } => {
                let mut traces = Vec::new();
                for intent in &self.intents {
                    let (packet, origin) = match intent {
                        Intent::DeliverToGuest { packet, .. } => (packet, "cp"),
                        Intent::AckToGuest { packet, .. }
                        | Intent::TimeoutToGuest { packet, .. } => (packet, "guest"),
                    };
                    if let Some(trace) = self.telemetry.trace_for_packet(
                        origin,
                        packet.source_channel.as_str(),
                        packet.sequence,
                    ) {
                        if !traces.contains(&trace) {
                            traces.push(trace);
                        }
                    }
                }
                traces
            }
            _ => Vec::new(),
        }
    }

    fn start_job(&mut self, host: &HostChain, kind: JobKind, op: &GuestOp, sig_checks: usize) {
        let buffer = self.next_buffer;
        self.next_buffer += 1;
        let queue: VecDeque<GuestInstruction> = {
            let _plan = self.profiler.scope("chunk.plan");
            plan_op_for(&self.config.host_profile, op, buffer, sig_checks).into_iter().collect()
        };
        debug_assert!(
            sig_checks == 0
                || queue.len() > sig_checks / sig_checks_per_tx_for(&self.config.host_profile)
        );
        let traces = self.job_traces(op);
        let span = self.telemetry.span_start(
            host.now_ms(),
            &format!("{}.{}", names::RELAYER_JOB, kind.name()),
            &traces,
        );
        self.active = Some(ActiveJob {
            kind,
            buffer,
            queue,
            in_flight: None,
            submitted_slot: host.slot(),
            scheduled_ms: host.now_ms(),
            first_tx_ms: None,
            last_tx_ms: host.now_ms(),
            tx_count: 0,
            fee_lamports: 0,
            sig_checks,
            retries: 0,
            span,
            traces,
        });
    }

    /// Submits the next transaction of the active job (one at a time, as
    /// the deployed relayer awaited confirmations), or finishes the job.
    fn pump_active_job(&mut self, host: &mut HostChain) {
        let current_slot = host.slot();
        let now_ms = host.now_ms();
        let Some(active) = &mut self.active else { return };
        if active.in_flight.is_some() {
            return;
        }
        if let (Some(faults), Some(rng)) = (&self.chunk_faults, &mut self.chunk_rng) {
            if faults.reorder_probability > 0.0
                && active.queue.len() >= 2
                && rng.next_f64() < faults.reorder_probability
            {
                active.queue.swap(0, 1);
            }
        }
        if let Some(instruction) = active.queue.pop_front() {
            if let (Some(faults), Some(rng)) = (&self.chunk_faults, &mut self.chunk_rng) {
                if faults.drop_probability > 0.0 && rng.next_f64() < faults.drop_probability {
                    // Lost in transit: park it under a sentinel id no real
                    // transaction ever gets, so confirmation never arrives
                    // and the timeout path re-submits it.
                    let id = self.next_lost_id;
                    self.next_lost_id -= 1;
                    self.lost_submissions += 1;
                    let active = self.active.as_mut().expect("active job checked above");
                    active.in_flight = Some((id, instruction));
                    active.submitted_slot = current_slot;
                    if self.telemetry.is_recording() {
                        let active = self.active.as_ref().expect("active job checked above");
                        let (traces, kind) = (active.traces.clone(), active.kind);
                        self.telemetry.counter_add("relayer.chunks.dropped", 1);
                        self.telemetry.event(
                            now_ms,
                            names::CHUNK_DROP,
                            &traces,
                            &[("kind", kind.name().into())],
                        );
                    }
                    return;
                }
            }
            let duplicate = match (&self.chunk_faults, &mut self.chunk_rng) {
                (Some(faults), Some(rng)) => {
                    faults.duplicate_probability > 0.0
                        && rng.next_f64() < faults.duplicate_probability
                }
                _ => false,
            };
            let id = {
                let tx = self.build_tx(&instruction);
                match tx.fee_policy {
                    FeePolicy::Bundle { .. } => host.submit_bundle(vec![tx])[0],
                    _ => host.submit(tx),
                }
            };
            if duplicate {
                // An at-least-once RPC retry: the same transaction lands
                // twice; the relayer only tracks the first copy.
                self.submit_instruction(host, &instruction);
                self.telemetry.counter_add("relayer.chunks.duplicated", 1);
            }
            let active = self.active.as_mut().expect("active job checked above");
            active.in_flight = Some((id, instruction));
            active.submitted_slot = current_slot;
            return;
        }
        // Queue drained and nothing in flight: the job is complete.
        let done = self.active.take().expect("active job checked above");
        let record = JobRecord {
            kind: done.kind,
            scheduled_ms: done.scheduled_ms,
            first_tx_ms: done.first_tx_ms.unwrap_or(done.scheduled_ms),
            last_tx_ms: done.last_tx_ms,
            tx_count: done.tx_count,
            fee_lamports: done.fee_lamports,
            sig_checks: done.sig_checks,
        };
        if self.telemetry.is_recording() {
            self.telemetry.counter_add(&format!("relayer.jobs.{}", done.kind.name()), 1);
            self.telemetry.counter_add("fees.relayer", done.fee_lamports);
            self.telemetry.counter_add("relayer.txs", done.tx_count as u64);
            self.telemetry.observe("relayer.job.latency_ms", record.span_ms() as f64);
            self.telemetry.observe(
                &format!("relayer.job.{}.latency_ms", done.kind.name()),
                record.span_ms() as f64,
            );
            if let Some(span) = done.span {
                self.telemetry.span_end(now_ms, span);
            }
        }
        self.records.push(record);
    }

    /// Re-queues the in-flight instruction when its confirmation is overdue
    /// — a dropped submission never confirms, so this is how the relayer
    /// recovers from injected chunk loss (it also fires for a transaction
    /// stuck in a congested mempool, where the duplicate is harmless: the
    /// guest contract tolerates replays).
    fn resubmit_lost_submission(&mut self, host: &HostChain) {
        let now_slot = host.slot();
        let Some(active) = &mut self.active else { return };
        if active.in_flight.is_none()
            || now_slot.saturating_sub(active.submitted_slot) <= RESUBMIT_AFTER_SLOTS
        {
            return;
        }
        let (_, instruction) = active.in_flight.take().expect("checked above");
        active.queue.push_front(instruction);
        self.resubmissions += 1;
        if self.telemetry.is_recording() {
            let traces = active.traces.clone();
            let kind = active.kind;
            self.telemetry.counter_add("relayer.chunks.resubmitted", 1);
            self.telemetry.event(
                host.now_ms(),
                names::CHUNK_RESUBMIT,
                &traces,
                &[("kind", kind.name().into())],
            );
        }
    }

    fn build_tx(&self, instruction: &GuestInstruction) -> Transaction {
        let policy = self.config.fee_strategy.policy(self.recent_load);
        Transaction::build_for(
            &self.config.host_profile,
            self.payer,
            1,
            vec![Instruction::new(
                self.guest_program,
                vec![self.guest_state_account],
                instruction.encode(),
            )],
            policy,
        )
        .expect("planned instructions fit transactions")
    }

    fn submit_instruction(&mut self, host: &mut HostChain, instruction: &GuestInstruction) -> u64 {
        let tx = self.build_tx(instruction);
        match tx.fee_policy {
            FeePolicy::Bundle { .. } => host.submit_bundle(vec![tx])[0],
            _ => host.submit(tx),
        }
    }
}

impl core::fmt::Debug for Relayer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Relayer")
            .field("intents", &self.intents.len())
            .field("active", &self.active.is_some())
            .field("records", &self.records.len())
            .finish()
    }
}
