//! One-time setup: clients, connection and channel between the guest chain
//! and the counterparty.
//!
//! The handshake itself is not part of the paper's evaluation (it happens
//! once at deployment), so this module drives it with direct contract
//! calls — with *real* proofs and finalised guest blocks at every step —
//! rather than through the transaction pipeline.

use std::cell::RefCell;
use std::rc::Rc;

use apps::{FeeMiddleware, MemoHookMiddleware, ModuleStack, TransferApp};
use counterparty_sim::{CounterpartyChain, CpLightClient};
use guest_chain::{GuestContract, GuestError, GuestHeader, GuestLightClient};
use ibc_core::handler::ProofData;
use ibc_core::types::{ChannelId, ClientId, ConnectionId, PortId};
use ibc_core::{Ordering, ProvableStore};
use sim_crypto::schnorr::Keypair;

/// Everything the relayer needs to know about an established link.
#[derive(Clone, Debug)]
pub struct Endpoints {
    /// Guest-side client tracking the counterparty.
    pub cp_client_on_guest: ClientId,
    /// Counterparty-side client tracking the guest.
    pub guest_client_on_cp: ClientId,
    /// Guest-side connection end.
    pub guest_connection: ConnectionId,
    /// Counterparty-side connection end.
    pub cp_connection: ConnectionId,
    /// The application port (ICS-20 transfer).
    pub port: PortId,
    /// Guest-side channel.
    pub guest_channel: ChannelId,
    /// Counterparty-side channel.
    pub cp_channel: ChannelId,
}

/// Generates a guest block, gathers quorum signatures from `validators`,
/// and pushes the finalised header into the counterparty's guest client.
///
/// Returns the finalised block.
///
/// # Errors
///
/// Propagates contract errors ([`GuestError::NothingToCommit`] when there
/// is no state change and Δ has not elapsed).
pub fn finalise_guest_block(
    contract: &Rc<RefCell<GuestContract>>,
    cp: &mut CounterpartyChain,
    guest_client_on_cp: &ClientId,
    validators: &[Keypair],
    now_ms: u64,
    host_height: u64,
) -> Result<guest_chain::GuestBlock, GuestError> {
    let block = contract.borrow_mut().generate_block(now_ms, host_height)?;
    for keypair in validators {
        let mut guard = contract.borrow_mut();
        if !guard.current_epoch().contains(&keypair.public()) {
            continue;
        }
        let finalised =
            guard.sign(block.height, keypair.public(), keypair.sign(&block.signing_bytes()))?;
        if finalised {
            break;
        }
    }
    let signatures = contract.borrow().signatures_at(block.height);
    let header = GuestHeader { block: block.clone(), signatures };
    cp.ibc_mut().update_client(guest_client_on_cp, &header.encode()).map_err(GuestError::Ibc)?;
    Ok(block)
}

fn guest_proof(
    contract: &Rc<RefCell<GuestContract>>,
    height: u64,
    key: &[u8],
) -> Result<ProofData, GuestError> {
    let bytes =
        ProvableStore::prove(contract.borrow().ibc().store(), key).map_err(GuestError::Ibc)?;
    Ok(ProofData { height, bytes })
}

fn cp_proof(cp: &CounterpartyChain, height: u64, key: &[u8]) -> Result<ProofData, GuestError> {
    let bytes = ProvableStore::prove(cp.ibc().store(), key).map_err(GuestError::Ibc)?;
    Ok(ProofData { height, bytes })
}

/// The transfer-port module stack both ends of the guest↔counterparty
/// link bind: an ICS-20 [`TransferApp`] wrapped by memo-hook and fee
/// middleware (innermost to outermost). No forward layer — this link is
/// a single hop, and the harness's inbound packets carry routing-shaped
/// memos purely for size realism.
fn transfer_stack() -> Box<ModuleStack> {
    Box::new(
        ModuleStack::new(Box::new(TransferApp::new()))
            .with(Box::new(MemoHookMiddleware::new()))
            .with(Box::new(FeeMiddleware::new())),
    )
}

/// Establishes clients, a connection and an ICS-20 transfer channel between
/// `contract` (the guest) and `cp`, binding a fresh transfer module stack
/// (ICS-20 app + memo-hook + fee middleware) on each side.
///
/// `clock_ms` advances as the handshake progresses; host heights are taken
/// from `host_height`.
///
/// # Errors
///
/// Any contract or IBC failure aborts the handshake.
pub fn connect_chains(
    contract: &Rc<RefCell<GuestContract>>,
    cp: &mut CounterpartyChain,
    validators: &[Keypair],
    clock_ms: &mut u64,
    host_height: &mut u64,
) -> Result<Endpoints, GuestError> {
    let step = |clock_ms: &mut u64, host_height: &mut u64| {
        *clock_ms += 1_000;
        *host_height += 2;
    };

    // Clients on both sides.
    let cp_client_on_guest = contract
        .borrow_mut()
        .create_counterparty_client(Box::new(CpLightClient::new(cp.validator_set())));
    let genesis = contract.borrow().block_at(0).expect("genesis exists");
    let genesis_epoch = contract.borrow().current_epoch().clone();
    let guest_client_on_cp = cp
        .ibc_mut()
        .create_client(Box::new(GuestLightClient::from_genesis(&genesis, genesis_epoch)));

    // Transfer module stacks.
    let port = PortId::transfer();
    contract.borrow_mut().bind_port(port.clone(), transfer_stack());
    cp.ibc_mut().bind_port(port.clone(), transfer_stack());

    // Connection handshake: Init on the guest…
    let guest_connection = contract
        .borrow_mut()
        .ibc_mut()
        .conn_open_init(cp_client_on_guest.clone(), guest_client_on_cp.clone())
        .map_err(GuestError::Ibc)?;
    step(clock_ms, host_height);
    let block = finalise_guest_block(
        contract,
        cp,
        &guest_client_on_cp,
        validators,
        *clock_ms,
        *host_height,
    )?;

    // …Try on the counterparty…
    let proof_init =
        guest_proof(contract, block.height, &ibc_core::path::connection(&guest_connection))?;
    let cp_connection = cp
        .ibc_mut()
        .conn_open_try(
            guest_client_on_cp.clone(),
            cp_client_on_guest.clone(),
            guest_connection.clone(),
            proof_init,
            None,
        )
        .map_err(GuestError::Ibc)?;
    step(clock_ms, host_height);
    let header = cp.produce_block(*clock_ms).clone();
    contract.borrow_mut().update_counterparty_client(
        &cp_client_on_guest,
        header.encode().as_slice(),
        *clock_ms,
    )?;

    // …Ack on the guest…
    let proof_try = cp_proof(cp, header.height, &ibc_core::path::connection(&cp_connection))?;
    contract
        .borrow_mut()
        .ibc_mut()
        .conn_open_ack(&guest_connection, cp_connection.clone(), proof_try, None)
        .map_err(GuestError::Ibc)?;
    step(clock_ms, host_height);
    let block = finalise_guest_block(
        contract,
        cp,
        &guest_client_on_cp,
        validators,
        *clock_ms,
        *host_height,
    )?;

    // …Confirm on the counterparty.
    let proof_ack =
        guest_proof(contract, block.height, &ibc_core::path::connection(&guest_connection))?;
    cp.ibc_mut().conn_open_confirm(&cp_connection, proof_ack).map_err(GuestError::Ibc)?;

    // Channel handshake, same dance.
    let guest_channel = contract.borrow_mut().chan_open_init(
        port.clone(),
        guest_connection.clone(),
        port.clone(),
        Ordering::Unordered,
        "ics20-1",
    )?;
    step(clock_ms, host_height);
    let block = finalise_guest_block(
        contract,
        cp,
        &guest_client_on_cp,
        validators,
        *clock_ms,
        *host_height,
    )?;
    let proof_init =
        guest_proof(contract, block.height, &ibc_core::path::channel(&port, &guest_channel))?;
    let cp_channel = cp
        .ibc_mut()
        .chan_open_try(
            port.clone(),
            cp_connection.clone(),
            port.clone(),
            guest_channel.clone(),
            Ordering::Unordered,
            "ics20-1",
            proof_init,
        )
        .map_err(GuestError::Ibc)?;
    step(clock_ms, host_height);
    let header = cp.produce_block(*clock_ms).clone();
    contract.borrow_mut().update_counterparty_client(
        &cp_client_on_guest,
        header.encode().as_slice(),
        *clock_ms,
    )?;
    let proof_try = cp_proof(cp, header.height, &ibc_core::path::channel(&port, &cp_channel))?;
    contract
        .borrow_mut()
        .ibc_mut()
        .chan_open_ack(&port, &guest_channel, cp_channel.clone(), proof_try)
        .map_err(GuestError::Ibc)?;
    step(clock_ms, host_height);
    let block = finalise_guest_block(
        contract,
        cp,
        &guest_client_on_cp,
        validators,
        *clock_ms,
        *host_height,
    )?;
    let proof_ack =
        guest_proof(contract, block.height, &ibc_core::path::channel(&port, &guest_channel))?;
    cp.ibc_mut().chan_open_confirm(&port, &cp_channel, proof_ack).map_err(GuestError::Ibc)?;

    // Clear bootstrap events so the relayer starts from a clean slate.
    contract.borrow_mut().drain_events();
    cp.drain_events();

    Ok(Endpoints {
        cp_client_on_guest,
        guest_client_on_cp,
        guest_connection,
        cp_connection,
        port,
        guest_channel,
        cp_channel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterparty_sim::CounterpartyConfig;
    use guest_chain::GuestConfig;

    #[test]
    fn full_handshake_completes() {
        let keypairs: Vec<Keypair> = (0..4).map(Keypair::from_seed).collect();
        let validators = keypairs.iter().map(|kp| (kp.public(), 100)).collect();
        let contract =
            Rc::new(RefCell::new(GuestContract::new(GuestConfig::fast(), validators, 0, 0)));
        let mut cp = CounterpartyChain::new(CounterpartyConfig::default(), 7);
        let mut clock = 0u64;
        let mut host_height = 0u64;
        let endpoints = connect_chains(&contract, &mut cp, &keypairs, &mut clock, &mut host_height)
            .expect("handshake");

        let guest = contract.borrow();
        let guest_chan = guest.ibc().channel(&endpoints.port, &endpoints.guest_channel).unwrap();
        assert!(guest_chan.is_open());
        let cp_chan = cp.ibc().channel(&endpoints.port, &endpoints.cp_channel).unwrap();
        assert!(cp_chan.is_open());
        assert_eq!(cp_chan.counterparty_channel_id.as_ref(), Some(&endpoints.guest_channel));
    }
}
