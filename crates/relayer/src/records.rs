//! Measurement records for the evaluation figures.

use serde::{Deserialize, Serialize};

/// The kind of relayer job a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// Updating the guest's light client of the counterparty (Figs. 4–5).
    ClientUpdate,
    /// Delivering an inbound packet to the guest (§V-A "receiving").
    RecvPacket,
    /// Delivering an acknowledgement to the guest.
    AckPacket,
    /// Timing out a guest-sent packet.
    TimeoutPacket,
    /// Producing a guest block.
    GenerateBlock,
}

impl JobKind {
    /// Every job kind, in declaration order (for per-kind metric
    /// registration).
    pub const ALL: [JobKind; 5] = [
        JobKind::ClientUpdate,
        JobKind::RecvPacket,
        JobKind::AckPacket,
        JobKind::TimeoutPacket,
        JobKind::GenerateBlock,
    ];

    /// Stable snake_case label, used as telemetry span/metric suffix.
    pub fn name(&self) -> &'static str {
        match self {
            Self::ClientUpdate => "client_update",
            Self::RecvPacket => "recv_packet",
            Self::AckPacket => "ack_packet",
            Self::TimeoutPacket => "timeout_packet",
            Self::GenerateBlock => "generate_block",
        }
    }
}

/// One completed multi-transaction job on the host chain.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct JobRecord {
    /// What the job did.
    pub kind: JobKind,
    /// When the job was scheduled (ms since genesis).
    pub scheduled_ms: u64,
    /// Execution time of the first host transaction.
    pub first_tx_ms: u64,
    /// Execution time of the last host transaction.
    pub last_tx_ms: u64,
    /// Host transactions used.
    pub tx_count: usize,
    /// Total fees paid, in lamports.
    pub fee_lamports: u64,
    /// In-contract signature checks performed.
    pub sig_checks: usize,
}

impl JobRecord {
    /// Latency between the first and last transaction (the Fig. 4 metric).
    pub fn span_ms(&self) -> u64 {
        self.last_tx_ms.saturating_sub(self.first_tx_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_is_last_minus_first() {
        let record = JobRecord {
            kind: JobKind::ClientUpdate,
            scheduled_ms: 0,
            first_tx_ms: 1_000,
            last_tx_ms: 26_000,
            tx_count: 36,
            fee_lamports: 180_000,
            sig_checks: 93,
        };
        assert_eq!(record.span_ms(), 25_000);
    }
}
