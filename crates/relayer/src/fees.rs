//! Relayer fee strategies (§V-A, §VI-B).

use host_sim::FeePolicy;
use serde::{Deserialize, Serialize};

/// How the relayer (or a client) pays for host-chain inclusion.
///
/// The paper's deployment mixed two fixed strategies — Solana priority fees
/// (≈ 1.40 USD per send) and Jito bundles (≈ 3.02 USD) — producing the two
/// cost clusters of Fig. 3. [`FeeStrategy::Dynamic`] implements the §VI-B
/// future-work idea: adapt the fee to observed congestion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FeeStrategy {
    /// Base per-signature fees only; cheapest, waits out congestion.
    Base,
    /// A fixed compute-unit price (micro-lamports per CU).
    FixedPriority {
        /// Price per compute unit in micro-lamports.
        micro_lamports_per_cu: u64,
    },
    /// A fixed Jito-style bundle tip; near-guaranteed next-slot inclusion.
    Bundle {
        /// Tip in lamports.
        tip_lamports: u64,
    },
    /// Congestion-adaptive (§VI-B): base fees while the network is calm,
    /// escalating priority fees as the observed load rises.
    Dynamic {
        /// CU price used when load exceeds `threshold`.
        high_micro_lamports_per_cu: u64,
        /// Load above which the relayer starts paying up.
        threshold: f64,
    },
}

impl FeeStrategy {
    /// The paper's priority-fee configuration: ≈ 1.40 USD per SendPacket at
    /// 200 $/SOL (Fig. 3's lower cluster).
    pub fn paper_priority() -> Self {
        // 1.40 USD = 7_000_000 lamports; at the 1.4M CU budget that is a
        // price of 5 lamports (5M micro-lamports) per CU.
        Self::FixedPriority { micro_lamports_per_cu: 5_000_000 }
    }

    /// The paper's bundle configuration: ≈ 3.02 USD per SendPacket
    /// (Fig. 3's upper cluster).
    pub fn paper_bundle() -> Self {
        // 3.02 USD ≈ 15.1M lamports, minus the base signature fee.
        Self::Bundle { tip_lamports: 15_095_000 }
    }

    /// Resolves the strategy to a concrete policy given the recently
    /// observed network load (0.0–1.0).
    pub fn policy(&self, recent_load: f64) -> FeePolicy {
        match *self {
            Self::Base => FeePolicy::BaseOnly,
            Self::FixedPriority { micro_lamports_per_cu } => {
                FeePolicy::Priority { micro_lamports_per_cu }
            }
            Self::Bundle { tip_lamports } => FeePolicy::Bundle { tip_lamports },
            Self::Dynamic { high_micro_lamports_per_cu, threshold } => {
                if recent_load > threshold {
                    // Scale the price with how far past the threshold the
                    // network is, up to the configured ceiling.
                    let pressure = ((recent_load - threshold) / (1.0 - threshold)).clamp(0.0, 1.0);
                    let price = (high_micro_lamports_per_cu as f64 * pressure.max(0.2)) as u64;
                    FeePolicy::Priority { micro_lamports_per_cu: price.max(1) }
                } else {
                    FeePolicy::BaseOnly
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use host_sim::{lamports_to_usd, MAX_COMPUTE_UNITS};

    #[test]
    fn paper_priority_costs_about_one_forty() {
        let FeePolicy::Priority { micro_lamports_per_cu } =
            FeeStrategy::paper_priority().policy(0.0)
        else {
            panic!("expected priority policy");
        };
        let extra = micro_lamports_per_cu * MAX_COMPUTE_UNITS / 1_000_000;
        let usd = lamports_to_usd(extra + 5_000);
        assert!((1.3..1.5).contains(&usd), "got {usd}");
    }

    #[test]
    fn paper_bundle_costs_about_three_oh_two() {
        let FeePolicy::Bundle { tip_lamports } = FeeStrategy::paper_bundle().policy(0.0) else {
            panic!("expected bundle policy");
        };
        let usd = lamports_to_usd(tip_lamports + 5_000);
        assert!((2.95..3.1).contains(&usd), "got {usd}");
    }

    #[test]
    fn dynamic_escalates_with_load() {
        let strategy =
            FeeStrategy::Dynamic { high_micro_lamports_per_cu: 1_000_000, threshold: 0.6 };
        assert_eq!(strategy.policy(0.3), FeePolicy::BaseOnly);
        let FeePolicy::Priority { micro_lamports_per_cu: mid } = strategy.policy(0.7) else {
            panic!("expected priority");
        };
        let FeePolicy::Priority { micro_lamports_per_cu: high } = strategy.policy(0.95) else {
            panic!("expected priority");
        };
        assert!(high > mid, "{high} > {mid}");
    }
}
