//! Relayer fleets: several relayers sharing one pair of chains, and the
//! per-link fee schedules a multi-chain mesh prices its routes with.
//!
//! The paper's deployment ran a single relayer; production IBC topologies
//! run several per link (for liveness) across many links (for reach). A
//! [`RelayerFleet`] holds the *extra* relayers of a 2-chain testnet —
//! `testnet::Testnet::add_relayer` pushes into one and ticks it inside
//! `step()` — while [`LinkFee`] expresses what relaying one message or
//! one light-client update costs on a given mesh link, which is what the
//! mesh routing table's cheapest-fee policy minimises.

use std::cell::RefCell;
use std::rc::Rc;

use counterparty_sim::CounterpartyChain;
use guest_chain::GuestContract;
use host_sim::HostChain;
use serde::{Deserialize, Serialize};

use crate::relayer::Relayer;

/// Extra relayers on one guest↔counterparty link, ticked in harness step
/// order after the primary. An empty fleet is provably inert: the harness
/// behaves bit-identically to one without fleet wiring.
#[derive(Debug, Default)]
pub struct RelayerFleet {
    relayers: Vec<Relayer>,
}

impl RelayerFleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relayer; returns its index within the fleet.
    pub fn add(&mut self, relayer: Relayer) -> usize {
        self.relayers.push(relayer);
        self.relayers.len() - 1
    }

    /// Number of relayers in the fleet.
    pub fn len(&self) -> usize {
        self.relayers.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.relayers.is_empty()
    }

    /// The relayers, in insertion order.
    pub fn relayers(&self) -> &[Relayer] {
        &self.relayers
    }

    /// Mutable access to one relayer.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut Relayer> {
        self.relayers.get_mut(index)
    }

    /// Ticks every relayer once, in insertion order.
    pub fn tick(
        &mut self,
        host: &mut HostChain,
        cp: &mut CounterpartyChain,
        contract: &Rc<RefCell<GuestContract>>,
    ) {
        for relayer in &mut self.relayers {
            relayer.tick(host, cp, contract);
        }
    }
}

/// What relaying costs on one mesh link, in abstract fee units the
/// routing table can compare across links.
///
/// Counterparty-to-counterparty links have no host-chain fee market, so
/// costs here are flat schedules: a per-message charge for packet
/// deliveries (recv/ack/timeout) and a per-signature charge for light
/// client updates (verification cost scales with the validator count —
/// the same shape that makes guest-bound updates expensive in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFee {
    /// Fee units per relayed packet message.
    pub per_message: u64,
    /// Fee units per header signature verified in a client update.
    pub per_signature: u64,
}

impl LinkFee {
    /// A free link (both charges zero).
    pub const FREE: Self = Self { per_message: 0, per_signature: 0 };

    /// A flat per-message schedule with free client updates.
    pub const fn per_message(fee: u64) -> Self {
        Self { per_message: fee, per_signature: 0 }
    }

    /// Cost of delivering one packet message.
    pub const fn message_cost(&self) -> u64 {
        self.per_message
    }

    /// Cost of one client update carrying `signatures` signatures.
    pub const fn update_cost(&self, signatures: u64) -> u64 {
        self.per_signature * signatures
    }
}

impl Default for LinkFee {
    fn default() -> Self {
        Self::FREE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fleet_is_inert() {
        let fleet = RelayerFleet::new();
        assert!(fleet.is_empty());
        assert_eq!(fleet.len(), 0);
        assert!(fleet.relayers().is_empty());
    }

    #[test]
    fn link_fee_schedules() {
        assert_eq!(LinkFee::FREE.message_cost(), 0);
        assert_eq!(LinkFee::per_message(7).message_cost(), 7);
        let fee = LinkFee { per_message: 3, per_signature: 2 };
        assert_eq!(fee.update_cost(10), 20);
        assert_eq!(LinkFee::default(), LinkFee::FREE);
    }
}
