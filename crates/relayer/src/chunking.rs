//! Splitting large guest operations across 1232-byte host transactions.
//!
//! This module is the relayer-side answer to Solana's runtime limits (§IV):
//! an operation too large for one transaction is staged chunk by chunk, its
//! in-contract signature checks are burned in batches of
//! [`SIG_CHECKS_PER_TX`], and a final transaction executes the whole staged
//! operation. The transaction counts this produces are the quantities the
//! paper reports: ~36.5 transactions per light-client update (Fig. 4) and
//! 4–5 per packet delivery (§V-A).

use guest_chain::{GuestInstruction, GuestOp};
use host_sim::compute::costs;
use host_sim::transaction::max_chunk_payload_for;
use host_sim::HostProfile;

/// In-contract signature checks that fit one maxed-out Solana transaction
/// (4 × 320 000 CU < 1.4 M < 5 × 320 000).
pub const SIG_CHECKS_PER_TX: usize = 4;

/// In-contract signature checks per transaction on a given host (§VI-D).
pub fn sig_checks_per_tx_for(profile: &HostProfile) -> usize {
    ((profile.max_compute_units / costs::SIGNATURE_VERIFY) as usize).max(1)
}

/// Bytes of operation payload per staging transaction.
pub fn chunk_capacity() -> usize {
    chunk_capacity_for(&HostProfile::SOLANA)
}

/// [`chunk_capacity`] under an arbitrary host profile.
pub fn chunk_capacity_for(profile: &HostProfile) -> usize {
    max_chunk_payload_for(profile, 1) - GuestInstruction::CHUNK_FRAME_OVERHEAD
}

/// Plans the host-instruction sequence for `op` on Solana.
///
/// Small operations with no signature checks ride a single
/// [`GuestInstruction::Inline`]; everything else becomes
/// `WriteChunk* VerifySigs* ExecStaged`. Each returned instruction fits in
/// one host transaction.
pub fn plan_op(op: &GuestOp, buffer: u64, num_sig_checks: usize) -> Vec<GuestInstruction> {
    plan_op_for(&HostProfile::SOLANA, op, buffer, num_sig_checks)
}

/// [`plan_op`] under an arbitrary host profile (§VI-D: the same guest
/// operation costs a very different number of transactions per host).
pub fn plan_op_for(
    profile: &HostProfile,
    op: &GuestOp,
    buffer: u64,
    num_sig_checks: usize,
) -> Vec<GuestInstruction> {
    let encoded = op.encode();
    let inline = GuestInstruction::Inline { op: op.clone() };
    let checks_per_tx = sig_checks_per_tx_for(profile);
    // Only an op with no signature checks can ride inline: the staged path
    // is how verification work is carried across transactions.
    if num_sig_checks == 0 && inline.encode().len() <= max_chunk_payload_for(profile, 1) {
        return vec![inline];
    }

    let capacity = chunk_capacity_for(profile);
    let mut instructions = Vec::new();
    for (index, chunk) in encoded.chunks(capacity).enumerate() {
        instructions.push(GuestInstruction::WriteChunk {
            buffer,
            offset: index * capacity,
            data: chunk.to_vec(),
        });
    }
    let mut remaining = num_sig_checks;
    while remaining > 0 {
        let count = remaining.min(checks_per_tx);
        instructions.push(GuestInstruction::VerifySigs { buffer, count });
        remaining -= count;
    }
    instructions.push(GuestInstruction::ExecStaged { buffer });
    instructions
}

/// The number of transactions [`plan_op`] will produce, without building
/// them (for planning and tests).
pub fn transaction_count(op: &GuestOp, num_sig_checks: usize) -> usize {
    plan_op(op, 0, num_sig_checks).len()
}

/// [`transaction_count`] under an arbitrary host profile.
pub fn transaction_count_for(profile: &HostProfile, op: &GuestOp, num_sig_checks: usize) -> usize {
    plan_op_for(profile, op, 0, num_sig_checks).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_chain::GuestOp;
    use ibc_core::types::ClientId;

    fn update_op(header_len: usize, sigs: usize) -> GuestOp {
        GuestOp::UpdateClient {
            client: ClientId::new(0),
            header: "x".repeat(header_len),
            num_signatures: sigs,
        }
    }

    #[test]
    fn small_op_is_inline() {
        let plan = plan_op(&GuestOp::GenerateBlock, 0, 0);
        assert_eq!(plan.len(), 1);
        assert!(matches!(plan[0], GuestInstruction::Inline { .. }));
    }

    #[test]
    fn large_update_is_chunked_verified_and_executed() {
        // A ~9 KiB header with 93 signatures — a typical counterparty
        // commit — should need roughly the paper's 36.5 transactions.
        let plan = plan_op(&update_op(9_000, 93), 7, 93);
        let chunks =
            plan.iter().filter(|i| matches!(i, GuestInstruction::WriteChunk { .. })).count();
        let verifies =
            plan.iter().filter(|i| matches!(i, GuestInstruction::VerifySigs { .. })).count();
        assert_eq!(verifies, 24, "93 checks in batches of 4");
        assert!(chunks >= 8, "9 KiB at ~1 KiB per chunk");
        assert!(matches!(plan.last(), Some(GuestInstruction::ExecStaged { .. })));
        let total = plan.len();
        assert!((30..=42).contains(&total), "expected ≈36.5 transactions, planned {total}");
    }

    #[test]
    fn every_planned_instruction_fits_a_transaction() {
        use host_sim::transaction::{FeePolicy, Instruction, Transaction};
        use host_sim::Pubkey;
        let plan = plan_op(&update_op(20_000, 120), 1, 120);
        for instruction in plan {
            let tx = Transaction::build(
                Pubkey::from_label("payer"),
                1,
                vec![Instruction::new(
                    Pubkey::from_label("program"),
                    vec![Pubkey::from_label("state")],
                    instruction.encode(),
                )],
                FeePolicy::BaseOnly,
            );
            assert!(tx.is_ok(), "instruction overflows a transaction");
        }
    }

    #[test]
    fn chunks_are_sequential_and_complete() {
        let op = update_op(5_000, 0);
        let plan = plan_op(&op, 3, 1);
        let mut reassembled = Vec::new();
        for instruction in &plan {
            if let GuestInstruction::WriteChunk { offset, data, .. } = instruction {
                assert_eq!(*offset, reassembled.len());
                reassembled.extend_from_slice(data);
            }
        }
        assert_eq!(reassembled, op.encode());
    }

    #[test]
    fn sig_checks_force_staging_even_for_small_ops() {
        let plan = plan_op(&update_op(10, 2), 0, 2);
        assert!(plan.len() >= 3, "chunk + verify + exec");
        assert!(matches!(plan.last(), Some(GuestInstruction::ExecStaged { .. })));
    }
}
