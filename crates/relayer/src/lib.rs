//! The guest-blockchain relayer (paper Alg. 2, relayer role).
//!
//! Relayers poll events from and forward packets between the guest chain
//! and its counterparty. Since the guest blockchain exposes a standard IBC
//! interface, this is the same job a stock relayer does — except that the
//! guest direction rides a resource-limited host chain, so large messages
//! are chunked into many 1232-byte transactions ([`chunking`]) and paid for
//! under a configurable fee strategy ([`fees`], §VI-B).
//!
//! * [`bootstrap`] — one-time client/connection/channel establishment.
//! * [`Relayer`] — the per-tick event loop.
//! * [`records`] — the measurements driving Figs. 4–5 and §V-A/§V-B.
//!
//! # Examples
//!
//! Planning the chunked transaction sequence of one light-client update:
//!
//! ```
//! use guest_chain::GuestOp;
//! use ibc_core::ClientId;
//! use relayer::chunking::{plan_op, transaction_count};
//!
//! let update = GuestOp::UpdateClient {
//!     client: ClientId::new(0),
//!     header: "h".repeat(9_000), // a ~105-signature commit
//!     num_signatures: 105,
//! };
//! // ≈ 10 chunk txs + 27 signature-verification txs + 1 execution.
//! assert!(transaction_count(&update, 105) > 30);
//! let plan = plan_op(&update, 1, 105);
//! assert_eq!(plan.len(), transaction_count(&update, 105));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod chunking;
pub mod fees;
pub mod fleet;
pub mod records;
mod relayer;

pub use bootstrap::{connect_chains, finalise_guest_block, Endpoints};
pub use fees::FeeStrategy;
pub use fleet::{LinkFee, RelayerFleet};
pub use records::{JobKind, JobRecord};
pub use relayer::{ChunkFaults, Relayer, RelayerConfig, RESUBMIT_AFTER_SLOTS};
