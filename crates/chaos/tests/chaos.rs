//! End-to-end chaos drills: run the full testnet harness under scheduled
//! faults and check both the resilience story (the deployment recovers)
//! and the audit story (real safety breaches are detected and attributed).

use testnet::{
    report_of, ChaosPlan, Fault, InvariantKind, Testnet, TestnetConfig, ValidatorProfile, DAY_MS,
};

const MINUTE_MS: u64 = 60 * 1_000;

/// A small config whose first validator holds a dominant stake, so its
/// crash stalls finality — the shape of the paper's §V-C incident.
fn dominant_validator_config(seed: u64) -> TestnetConfig {
    let mut config = TestnetConfig::small(seed);
    config.validators = vec![
        ValidatorProfile::reliable(1_000_000),
        ValidatorProfile::reliable(100),
        ValidatorProfile::reliable(100),
        ValidatorProfile::reliable(100),
    ];
    config
}

/// The whole chaos machinery must be inert until a fault window opens: a
/// run under a plan whose events all lie beyond the horizon is
/// byte-identical to a run under the empty plan.
#[test]
fn fault_free_plan_reproduces_baseline() {
    let duration = 6 * MINUTE_MS;

    let baseline = {
        let mut net = Testnet::build(TestnetConfig::small(11));
        net.run_for(duration);
        serde_json::to_string(&report_of(&net, duration)).unwrap()
    };

    let armed_but_idle = {
        let mut config = TestnetConfig::small(11);
        config.chaos = ChaosPlan::new(0xDEAD)
            .with(10 * DAY_MS, 11 * DAY_MS, Fault::ValidatorCrash { validator: 0 })
            .with(10 * DAY_MS, 11 * DAY_MS, Fault::ChunkDrop { probability: 0.9 })
            .with(10 * DAY_MS, 11 * DAY_MS, Fault::CongestionStorm { load: 0.95 })
            .with(10 * DAY_MS, 11 * DAY_MS, Fault::RelayerHalt);
        let mut net = Testnet::build(config);
        net.run_for(duration);
        assert!(net.invariant_violations().is_empty());
        serde_json::to_string(&report_of(&net, duration)).unwrap()
    };

    assert_eq!(baseline, armed_but_idle, "out-of-window faults must not perturb the run");
}

/// Crashing the dominant validator stalls finality for the length of the
/// window; transfers sent during the stall complete after recovery, and no
/// safety invariant breaks — the §V-C outage as a repeatable drill.
#[test]
fn validator_crash_stalls_and_recovers() {
    let window = (2 * MINUTE_MS, 7 * MINUTE_MS);
    let mut config = dominant_validator_config(21);
    config.chaos =
        ChaosPlan::new(21).with(window.0, window.1, Fault::ValidatorCrash { validator: 0 });
    let mut net = Testnet::build(config);
    net.run_for(13 * MINUTE_MS);

    let report = report_of(&net, 13 * MINUTE_MS);
    let worst = report.fig2_send_latency_s.iter().cloned().fold(0.0, f64::max);
    assert!(
        worst > 120.0,
        "a transfer sent into the stall waits for the recovery (worst {worst}s)"
    );
    assert!(report.completed_sends > 0, "the backlog finalises after the outage");
    let contract = net.contract.borrow();
    assert!(contract.is_finalised(contract.head_height()), "liveness restored");
    drop(contract);
    assert!(net.invariant_violations().is_empty(), "an outage is not a safety breach");
}

/// A latency spike on the quorum-carrying validator (plus clock skew on a
/// minor one) delays finalisation during the window but nothing breaks.
#[test]
fn latency_spike_delays_signatures() {
    let window = (MINUTE_MS, 5 * MINUTE_MS);
    let mut config = dominant_validator_config(81);
    config.chaos = ChaosPlan::new(81)
        .with(window.0, window.1, Fault::ValidatorLatencySpike { validator: 0, factor: 6.0 })
        .with(window.0, window.1, Fault::ValidatorClockSkew { validator: 2, offset_ms: 20_000 });
    let mut net = Testnet::build(config);
    net.run_for(10 * MINUTE_MS);

    let latency_of = |in_window: bool| -> Vec<f64> {
        let mut v: Vec<f64> = net
            .sign_records
            .iter()
            .filter(|r| r.validator == 0)
            .filter(|r| (r.block_ms >= window.0 && r.block_ms < window.1) == in_window)
            .map(|r| r.latency_s())
            .collect();
        v.sort_by(f64::total_cmp);
        v
    };
    let spiked = latency_of(true);
    let normal = latency_of(false);
    assert!(!spiked.is_empty() && !normal.is_empty());
    let median = |v: &[f64]| v[v.len() / 2];
    assert!(
        median(&spiked) > 2.0 * median(&normal),
        "spiked median {} vs normal {}",
        median(&spiked),
        median(&normal)
    );
    assert!(net.invariant_violations().is_empty());
}

/// A congestion storm with an inclusion-failure burst: the deployment
/// slows down but loses nothing.
#[test]
fn congestion_storm_degrades_but_preserves_safety() {
    let mut config = TestnetConfig::small(31);
    config.chaos = ChaosPlan::new(31)
        .with(MINUTE_MS, 4 * MINUTE_MS, Fault::CongestionStorm { load: 0.92 })
        .with(MINUTE_MS, 4 * MINUTE_MS, Fault::InclusionFailureBurst { probability: 0.25 });
    let mut net = Testnet::build(config);
    net.run_for(9 * MINUTE_MS);

    let report = report_of(&net, 9 * MINUTE_MS);
    assert!(report.completed_sends > 0, "transfers still complete");
    // The very head block may be seconds old; the one before it has had
    // time to gather a quorum.
    let contract = net.contract.borrow();
    assert!(contract.is_finalised(contract.head_height().saturating_sub(1)));
    drop(contract);
    assert!(net.invariant_violations().is_empty());
}

/// With the relayer down past a packet's timeout, the commitment is
/// orphaned — and the audit says so, naming the halt as the likely cause.
#[test]
fn relayer_halt_orphans_a_timed_out_packet() {
    let mut config = TestnetConfig::small(41);
    // No background traffic; the one injected packet tells the story.
    config.workload.outbound_mean_gap_ms = u64::MAX / 4;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    config.invariants.orphan_slack_ms = 30_000;
    config.chaos = ChaosPlan::new(41).with(MINUTE_MS, 60 * MINUTE_MS, Fault::RelayerHalt);
    let mut net = Testnet::build(config);

    net.run_for(70_000); // into the halt window
    net.inject_outbound_transfer(500, 2 * MINUTE_MS);
    net.run_for(6 * MINUTE_MS);

    let violation = net
        .invariant_violations()
        .iter()
        .find(|v| v.invariant == InvariantKind::NoOrphanedPacket)
        .expect("the expired, undelivered packet is flagged");
    assert!(
        violation.faults.iter().any(|f| f == "relayer-halt"),
        "the violation names the halt: {:?}",
        violation.faults
    );

    // Control: same timeline with the relayer running resolves the packet
    // (delivered or properly timed out) — no orphan.
    let mut config = TestnetConfig::small(41);
    config.workload.outbound_mean_gap_ms = u64::MAX / 4;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    config.invariants.orphan_slack_ms = 30_000;
    let mut net = Testnet::build(config);
    net.run_for(70_000);
    net.inject_outbound_transfer(500, 2 * MINUTE_MS);
    net.run_for(6 * MINUTE_MS);
    assert!(net.invariant_violations().is_empty(), "{:?}", net.invariant_violations());
}

/// Dropped chunk submissions: the relayer re-submits after its timeout and
/// every job still completes.
#[test]
fn chunk_drops_are_resubmitted() {
    let mut config = TestnetConfig::small(51);
    config.chaos =
        ChaosPlan::new(51).with(0, 10 * MINUTE_MS, Fault::ChunkDrop { probability: 0.25 });
    let mut net = Testnet::build(config);
    net.run_for(10 * MINUTE_MS);

    assert!(net.relayer.lost_submissions() > 0, "the fault actually fired");
    // Every loss is retried; at most the very last one is still waiting
    // for its re-submission timeout when the run ends.
    assert!(
        net.relayer.resubmissions() + 1 >= net.relayer.lost_submissions(),
        "losses {} vs retries {}",
        net.relayer.lost_submissions(),
        net.relayer.resubmissions()
    );
    assert!(net.relayer.resubmissions() > 0);
    assert!(!net.relayer.records().is_empty(), "jobs still complete");
    let report = report_of(&net, 10 * MINUTE_MS);
    assert!(report.completed_sends > 0);
    assert!(net.invariant_violations().is_empty());
}

/// Duplicated and reordered chunk submissions: the guest contract must
/// tolerate replays and out-of-order writes without minting value.
#[test]
fn chunk_duplicates_and_reorders_keep_conservation() {
    let mut config = TestnetConfig::small(61);
    config.chaos = ChaosPlan::new(61)
        .with(0, 8 * MINUTE_MS, Fault::ChunkDuplicate { probability: 0.25 })
        .with(0, 8 * MINUTE_MS, Fault::ChunkReorder { probability: 0.25 });
    let mut net = Testnet::build(config);
    net.run_for(8 * MINUTE_MS);

    let report = report_of(&net, 8 * MINUTE_MS);
    assert!(report.completed_sends > 0, "progress despite replays");
    assert!(
        !net.invariant_violations().iter().any(|v| v.invariant == InvariantKind::Ics20Conservation),
        "replayed submissions never mint value: {:?}",
        net.invariant_violations()
    );
}

/// A seeded conservation violation: counterfeit vouchers minted on the
/// counterparty are caught by the ICS-20 audit and attributed to the mint.
#[test]
fn counterfeit_mint_is_detected() {
    let mut config = TestnetConfig::small(71);
    config.chaos = ChaosPlan::new(71).at(
        2 * MINUTE_MS,
        Fault::CounterfeitMint {
            account: "mallory".into(),
            denom: "transfer/channel-0/wsol".into(),
            amount: 1_000_000_000,
        },
    );
    let mut net = Testnet::build(config);
    // The forged denom must be the real voucher denom of guest-native
    // tokens on the counterparty, else the audit would not be watching it.
    assert_eq!(net.endpoints().port.to_string(), "transfer");
    assert_eq!(net.endpoints().cp_channel.to_string(), "channel-0");
    net.run_for(6 * MINUTE_MS);

    let violation = net
        .invariant_violations()
        .iter()
        .find(|v| v.invariant == InvariantKind::Ics20Conservation)
        .expect("the counterfeit mint breaks conservation");
    assert!(
        violation.faults.iter().any(|f| f.starts_with("counterfeit-mint")),
        "the violation names the mint: {:?}",
        violation.faults
    );
    assert!(violation.details.contains("exceed"), "{}", violation.details);
}

/// A halted counterparty stops advancing; the guest side keeps finalising
/// and nothing unsafe happens.
#[test]
fn counterparty_halt_is_survivable() {
    let halted_height = {
        let mut config = TestnetConfig::small(91);
        config.chaos = ChaosPlan::new(91).with(MINUTE_MS, 4 * MINUTE_MS, Fault::CounterpartyHalt);
        let mut net = Testnet::build(config);
        net.run_for(6 * MINUTE_MS);
        let contract = net.contract.borrow();
        // The head block may have been produced moments before the run
        // ended with signatures still in flight; liveness means
        // finalisation tracks the head within normal signing lag.
        let head = contract.head_height();
        let finalised = (0..=head).rev().find(|h| contract.is_finalised(*h)).unwrap_or(0);
        assert!(head - finalised <= 2, "guest liveness unaffected (head {head}, fin {finalised})");
        drop(contract);
        assert!(net.invariant_violations().is_empty());
        net.cp.height()
    };
    let baseline_height = {
        let mut net = Testnet::build(TestnetConfig::small(91));
        net.run_for(6 * MINUTE_MS);
        net.cp.height()
    };
    assert!(
        halted_height < baseline_height,
        "the halt cost counterparty blocks ({halted_height} vs {baseline_height})"
    );
}

/// Slashing under chaos: a rogue validator is reported and slashed while a
/// fault window is open, and the stake-accounting invariant still balances
/// (burned stake is accounted, not lost).
#[test]
fn slashing_preserves_stake_accounting() {
    let mut config = TestnetConfig::small(44);
    config.guest.slashing_enabled = true;
    config.rogue = Some(testnet::RogueConfig { validator: 3, equivocate_probability: 0.5 });
    config.workload.outbound_mean_gap_ms = 45_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    // Mild background chaos so the audit runs in anger, not in a vacuum.
    config.chaos =
        ChaosPlan::new(44).with(MINUTE_MS, 3 * MINUTE_MS, Fault::CongestionStorm { load: 0.7 });
    let mut net = Testnet::build(config);
    net.run_for(10 * MINUTE_MS);

    assert!(net.fisherman_reports >= 1, "the fisherman reported the rogue");
    assert!(net.contract.borrow().staking().total_stake() < 400, "stake was actually burned");
    assert!(
        !net.invariant_violations().iter().any(|v| v.invariant == InvariantKind::StakeConservation),
        "burned stake is accounted for: {:?}",
        net.invariant_violations()
    );
}

/// A violation's forensic links must name the packets that were in flight
/// when it fired: halt the relayer so outbound transfers cannot resolve,
/// then mint counterfeit vouchers — the resulting conservation breach has
/// to carry their trace ids, and the run report must agree.
#[test]
fn violations_link_in_flight_packet_traces() {
    let mut config = TestnetConfig::small(73);
    config.workload.outbound_mean_gap_ms = 30_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    config.chaos = ChaosPlan::new(73).with(MINUTE_MS, 8 * MINUTE_MS, Fault::RelayerHalt).at(
        3 * MINUTE_MS,
        Fault::CounterfeitMint {
            account: "mallory".into(),
            denom: "transfer/channel-0/wsol".into(),
            amount: 1_000_000_000,
        },
    );
    let mut net = Testnet::build(config);
    net.run_for(6 * MINUTE_MS);

    let violation = net
        .invariant_violations()
        .iter()
        .find(|v| v.invariant == InvariantKind::Ics20Conservation)
        .expect("the counterfeit mint breaks conservation")
        .clone();
    assert!(
        !violation.linked_traces.is_empty(),
        "with the relayer halted, transfers were in flight at detection time"
    );

    // The run report mirrors the links and resolves them to real packets.
    let report = net.run_report("violation-links");
    let reported = report
        .violations
        .iter()
        .find(|v| v.invariant == "ics20-conservation")
        .expect("violation reaches the run report");
    assert_eq!(reported.linked_traces, violation.linked_traces);
    for trace in &reported.linked_traces {
        let packet = report
            .packets
            .iter()
            .find(|p| p.trace == *trace)
            .expect("every linked trace resolves to a packet");
        assert_eq!(packet.origin, "guest", "tracked in-flight packets are guest outbound");
        assert!(!packet.completed, "an in-flight packet has no ack yet");
    }
}

/// A finality stall must be legible in the telemetry run report: a packet
/// sent into a validator-crash window carries a `cp_client_update` span
/// stretching across the outage — the miniature of ISSUE 3's 13-day
/// `paper_outage_plan` acceptance check.
#[test]
fn outage_is_visible_as_lc_update_span() {
    let window = (2 * MINUTE_MS, 7 * MINUTE_MS);
    let mut config = dominant_validator_config(21);
    config.chaos =
        ChaosPlan::new(21).with(window.0, window.1, Fault::ValidatorCrash { validator: 0 });
    let mut net = Testnet::build(config);
    net.run_for(13 * MINUTE_MS);

    let report = net.run_report("outage-span");
    let stall_span = report
        .packets
        .iter()
        .flat_map(|p| &p.spans)
        .filter(|s| s.name == "relayer.job.cp_client_update")
        .filter_map(|s| s.end_ms.map(|end| (s.start_ms, end)))
        .find(|(start, end)| {
            // Stretches across most of the outage: opens inside the window
            // (when the first stranded packet starts waiting) and closes
            // only once a post-recovery header lands.
            *start < window.1 && *end >= window.1 && end - start > (window.1 - window.0) / 2
        });
    let (start, end) = stall_span.expect("the stall shows up as a long LC-update wait span");
    assert!(
        end - start < 13 * MINUTE_MS,
        "the span closes after recovery instead of hanging forever"
    );
}
