//! A guided chaos drill: one small deployment, a 12-minute storyline of
//! faults, and the invariant suite narrating what broke and what held.
//!
//! Run with `cargo run --release -p chaos --example chaos_drill`
//! (add `--quiet` / `--json <path>` for artifact emission). Exits with
//! status 1 if the counterfeit mint goes undetected.

use chaos::{ChaosPlan, Fault};
use testnet::{report_of, Artifact, OutputOptions, Testnet, TestnetConfig};

const MINUTE_MS: u64 = 60 * 1_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let output = OutputOptions::from_args(&args);
    let duration = 12 * MINUTE_MS;
    // The storyline: a congestion storm in minutes 2–4, a crashed
    // validator in minutes 5–7, flaky chunk delivery in minutes 7–9, and a
    // counterfeit mint at minute 10 that the ICS-20 conservation check
    // must flag.
    let plan = ChaosPlan::new(0xD811)
        .with(2 * MINUTE_MS, 4 * MINUTE_MS, Fault::CongestionStorm { load: 0.9 })
        .with(5 * MINUTE_MS, 7 * MINUTE_MS, Fault::ValidatorCrash { validator: 0 })
        .with(7 * MINUTE_MS, 9 * MINUTE_MS, Fault::ChunkDrop { probability: 0.3 })
        .at(
            10 * MINUTE_MS,
            Fault::CounterfeitMint {
                account: "mallory".into(),
                denom: "transfer/channel-0/wsol".into(),
                amount: 1_000_000_000,
            },
        );

    let mut artifact = Artifact::new("chaos drill — 12-minute fault storyline", "chaos_drill");
    let plan_section = artifact.section("plan");
    for line in serde_json::to_string_pretty(&plan).expect("plan serialises").lines() {
        plan_section.line(line);
    }

    let mut config = TestnetConfig::small(0xD811);
    config.workload.outbound_mean_gap_ms = 30_000;
    config.workload.inbound_mean_gap_ms = 45_000;
    config.chaos = plan;
    let mut net = Testnet::build(config);
    net.run_for(duration);

    let report = report_of(&net, duration);
    let stats = artifact.section(format!("after {} simulated minutes", duration / MINUTE_MS));
    stats
        .line(format!("completed sends:     {}", report.completed_sends))
        .value("completed_sends", report.completed_sends as f64);
    stats
        .line(format!("in flight at end:    {}", report.in_flight_sends))
        .value("in_flight_sends", report.in_flight_sends as f64);
    stats
        .line(format!("relayer failed jobs: {}", net.relayer.failed_jobs()))
        .value("failed_jobs", net.relayer.failed_jobs() as f64);
    stats
        .line(format!(
            "chunks lost / resent: {} / {}",
            net.relayer.lost_submissions(),
            net.relayer.resubmissions()
        ))
        .value("lost_submissions", net.relayer.lost_submissions() as f64)
        .value("resubmissions", net.relayer.resubmissions() as f64);

    let violations = net.invariant_violations().to_vec();
    let verdict = artifact.section(format!("invariant violations ({})", violations.len()));
    verdict.value("violations", violations.len() as f64);
    if violations.is_empty() {
        verdict.line("no invariant violations — the counterfeit mint went undetected?!");
        artifact.emit(output.quiet, output.json.as_deref());
        std::process::exit(1);
    }
    for violation in &violations {
        verdict.line(format!(
            "[{:>6.1} min] {} — {}",
            violation.at_ms as f64 / MINUTE_MS as f64,
            violation.invariant.name(),
            violation.details,
        ));
        verdict.line(format!("    active faults: {}", violation.faults.join(", ")));
        if !violation.linked_traces.is_empty() {
            let ids: Vec<String> =
                violation.linked_traces.iter().map(|id| format!("trace-{id}")).collect();
            verdict.line(format!("    in-flight packet traces: {}", ids.join(", ")));
        }
    }
    // Attach the full telemetry run report so the JSON artifact carries the
    // packet traces the violations point into.
    artifact.report = Some(net.run_report("chaos-drill"));
    artifact.emit(output.quiet, output.json.as_deref());
}
