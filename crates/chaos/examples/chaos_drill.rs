//! A guided chaos drill: one small deployment, a 12-minute storyline of
//! faults, and the invariant suite narrating what broke and what held.
//!
//! Run with `cargo run --release -p chaos --example chaos_drill`.

use chaos::{ChaosPlan, Fault};
use testnet::{report_of, Testnet, TestnetConfig};

const MINUTE_MS: u64 = 60 * 1_000;

fn main() {
    let duration = 12 * MINUTE_MS;
    // The storyline: a congestion storm in minutes 2–4, a crashed
    // validator in minutes 5–7, flaky chunk delivery in minutes 7–9, and a
    // counterfeit mint at minute 10 that the ICS-20 conservation check
    // must flag.
    let plan = ChaosPlan::new(0xD811)
        .with(2 * MINUTE_MS, 4 * MINUTE_MS, Fault::CongestionStorm { load: 0.9 })
        .with(5 * MINUTE_MS, 7 * MINUTE_MS, Fault::ValidatorCrash { validator: 0 })
        .with(7 * MINUTE_MS, 9 * MINUTE_MS, Fault::ChunkDrop { probability: 0.3 })
        .at(
            10 * MINUTE_MS,
            Fault::CounterfeitMint {
                account: "mallory".into(),
                denom: "transfer/channel-0/wsol".into(),
                amount: 1_000_000_000,
            },
        );

    println!("chaos drill — plan:");
    println!("{}", serde_json::to_string_pretty(&plan).expect("plan serialises"));
    println!();

    let mut config = TestnetConfig::small(0xD811);
    config.workload.outbound_mean_gap_ms = 30_000;
    config.workload.inbound_mean_gap_ms = 45_000;
    config.chaos = plan;
    let mut net = Testnet::build(config);
    net.run_for(duration);

    let report = report_of(&net, duration);
    println!("after {} simulated minutes:", duration / MINUTE_MS);
    println!("  completed sends:     {}", report.completed_sends);
    println!("  in flight at end:    {}", report.in_flight_sends);
    println!("  relayer failed jobs: {}", net.relayer.failed_jobs());
    println!(
        "  chunks lost / resent: {} / {}",
        net.relayer.lost_submissions(),
        net.relayer.resubmissions()
    );
    println!();

    let violations = net.invariant_violations();
    if violations.is_empty() {
        println!("no invariant violations — the counterfeit mint went undetected?!");
        std::process::exit(1);
    }
    println!("invariant violations ({}):", violations.len());
    for violation in violations {
        println!(
            "  [{:>6.1} min] {} — {}",
            violation.at_ms as f64 / MINUTE_MS as f64,
            violation.invariant.name(),
            violation.details,
        );
        println!("      active faults: {}", violation.faults.join(", "));
    }
}
