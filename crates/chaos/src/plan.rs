//! Declarative fault schedules.
//!
//! A [`ChaosPlan`] is a serialisable list of [`FaultEvent`]s — windows (or
//! instants) during which one [`Fault`] is active. Plans are data: they can
//! be written by hand, loaded from JSON, or built with the fluent helpers,
//! and the same plan plus the same seed always reproduces the same run.

use serde::{Deserialize, Serialize};

/// One kind of injectable fault.
///
/// Each variant names the component it disturbs; together they cover the
/// failure modes the paper's deployment actually met (§V-C's validator
/// outage, host congestion, relayer gaps) plus the adversarial ones its
/// design arguments appeal to (counterfeit mints, replayed chunks).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// A validator submits nothing during the window; its backlog is
    /// signed on return (the §V-C operator error).
    ValidatorCrash {
        /// Index into the testnet's validator set.
        validator: usize,
    },
    /// A validator's signing latency is multiplied by `factor`.
    ValidatorLatencySpike {
        /// Index into the testnet's validator set.
        validator: usize,
        /// Latency multiplier (> 1 slows the validator down).
        factor: f64,
    },
    /// A validator's clock drifts by `offset_ms` (its signatures fire
    /// early or late relative to true time).
    ValidatorClockSkew {
        /// Index into the testnet's validator set.
        validator: usize,
        /// Signed drift in milliseconds.
        offset_ms: i64,
    },
    /// The relayer process is down: no event polling, no submissions.
    RelayerHalt,
    /// Each chunked-job submission is lost with this probability.
    ChunkDrop {
        /// Per-submission loss probability in `[0, 1]`.
        probability: f64,
    },
    /// Each chunked-job submission is duplicated with this probability.
    ChunkDuplicate {
        /// Per-submission duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// The next two planned instructions swap with this probability.
    ChunkReorder {
        /// Per-submission reorder probability in `[0, 1]`.
        probability: f64,
    },
    /// The host chain runs at a forced load (base-fee spike, base-class
    /// transactions crowded out).
    CongestionStorm {
        /// Forced host load in `[0, 0.98]`.
        load: f64,
    },
    /// Scheduled host transactions fail inclusion with this probability
    /// and are returned to the mempool.
    InclusionFailureBurst {
        /// Per-transaction inclusion-failure probability in `[0, 1]`.
        probability: f64,
    },
    /// The counterparty chain stops producing blocks.
    CounterpartyHalt,
    /// A named chain in a multi-chain mesh stops producing blocks (e.g.
    /// the middle chain of an `A→B→C` route; packets through it time out
    /// and their refunds must unwind hop-by-hop).
    ChainHalt {
        /// Mesh node name, e.g. `"chain-b"`.
        chain: String,
    },
    /// A named mesh link's relayer is down: neither direction of that
    /// link relays packets, acks, client updates or timeouts.
    LinkDown {
        /// Mesh link name, e.g. `"chain-a<>chain-b"`.
        link: String,
    },
    /// Vouchers are minted out of thin air on the counterparty — a bridge
    /// exploit the ICS-20 conservation invariant must flag. Fires once at
    /// the window start.
    CounterfeitMint {
        /// Credited counterparty account.
        account: String,
        /// Voucher denomination, e.g. `"transfer/channel-0/wsol"`.
        denom: String,
        /// Minted amount.
        amount: u128,
    },
}

impl Fault {
    /// A short attribution label, recorded on invariant violations so a
    /// report can name the fault that (likely) triggered it.
    pub fn label(&self) -> String {
        match self {
            Fault::ValidatorCrash { validator } => format!("validator-crash:{validator}"),
            Fault::ValidatorLatencySpike { validator, factor } => {
                format!("validator-latency:{validator}x{factor}")
            }
            Fault::ValidatorClockSkew { validator, offset_ms } => {
                format!("validator-clock-skew:{validator}:{offset_ms}ms")
            }
            Fault::RelayerHalt => "relayer-halt".to_string(),
            Fault::ChunkDrop { probability } => format!("chunk-drop:{probability}"),
            Fault::ChunkDuplicate { probability } => format!("chunk-duplicate:{probability}"),
            Fault::ChunkReorder { probability } => format!("chunk-reorder:{probability}"),
            Fault::CongestionStorm { load } => format!("congestion-storm:{load}"),
            Fault::InclusionFailureBurst { probability } => {
                format!("inclusion-failure:{probability}")
            }
            Fault::CounterpartyHalt => "counterparty-halt".to_string(),
            Fault::ChainHalt { chain } => format!("chain-halt:{chain}"),
            Fault::LinkDown { link } => format!("link-down:{link}"),
            Fault::CounterfeitMint { denom, amount, .. } => {
                format!("counterfeit-mint:{amount}:{denom}")
            }
        }
    }
}

/// A fault active during `[from_ms, until_ms)` of simulated time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Window start (inclusive), ms of simulated time.
    pub from_ms: u64,
    /// Window end (exclusive), ms of simulated time.
    pub until_ms: u64,
    /// The fault.
    pub fault: Fault,
}

impl FaultEvent {
    /// Whether the window covers instant `now_ms`.
    pub fn is_active(&self, now_ms: u64) -> bool {
        now_ms >= self.from_ms && now_ms < self.until_ms
    }
}

/// A deterministic fault schedule.
///
/// The default plan is empty and provably inert: a harness driven by an
/// empty plan is bit-identical to one without any chaos wiring at all.
///
/// # Examples
///
/// ```
/// use chaos::{ChaosPlan, Fault};
///
/// let plan = ChaosPlan::new(7)
///     .with(3_600_000, 7_200_000, Fault::RelayerHalt)
///     .at(5_000_000, Fault::CounterfeitMint {
///         account: "mallory".into(),
///         denom: "transfer/channel-0/wsol".into(),
///         amount: 1_000,
///     });
/// assert_eq!(plan.events.len(), 2);
/// let json = serde_json::to_string(&plan).unwrap();
/// let back: ChaosPlan = serde_json::from_str(&json).unwrap();
/// assert_eq!(back, plan);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed of the dedicated chaos RNG streams. Independent from the
    /// simulation seed, so the same workload can be replayed under
    /// different fault samplings (and vice versa).
    pub seed: u64,
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl ChaosPlan {
    /// An empty plan with the given chaos seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, events: Vec::new() }
    }

    /// Adds a fault active during `[from_ms, until_ms)`.
    pub fn with(mut self, from_ms: u64, until_ms: u64, fault: Fault) -> Self {
        self.events.push(FaultEvent { from_ms, until_ms, fault });
        self
    }

    /// Adds a one-instant fault at `at_ms` (a 1 ms window; one-shot faults
    /// such as [`Fault::CounterfeitMint`] fire exactly once).
    pub fn at(self, at_ms: u64, fault: Fault) -> Self {
        self.with(at_ms, at_ms + 1, fault)
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bounds_are_half_open() {
        let event = FaultEvent { from_ms: 10, until_ms: 20, fault: Fault::RelayerHalt };
        assert!(!event.is_active(9));
        assert!(event.is_active(10));
        assert!(event.is_active(19));
        assert!(!event.is_active(20));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = ChaosPlan::new(42)
            .with(0, 1_000, Fault::ValidatorCrash { validator: 3 })
            .with(500, 600, Fault::ValidatorLatencySpike { validator: 1, factor: 4.0 })
            .with(100, 200, Fault::ValidatorClockSkew { validator: 2, offset_ms: -30_000 })
            .with(0, 50, Fault::ChunkDrop { probability: 0.25 })
            .with(0, 50, Fault::CongestionStorm { load: 0.9 })
            .with(0, 900, Fault::ChainHalt { chain: "chain-b".into() })
            .with(0, 900, Fault::LinkDown { link: "chain-a<>chain-b".into() })
            .at(
                77,
                Fault::CounterfeitMint {
                    account: "mallory".into(),
                    denom: "transfer/channel-0/wsol".into(),
                    amount: 9,
                },
            );
        let json = serde_json::to_string(&plan).unwrap();
        let back: ChaosPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn labels_name_the_fault() {
        assert_eq!(Fault::RelayerHalt.label(), "relayer-halt");
        assert_eq!(Fault::ValidatorCrash { validator: 0 }.label(), "validator-crash:0");
        assert!(Fault::ChunkDrop { probability: 0.5 }.label().contains("0.5"));
    }
}
