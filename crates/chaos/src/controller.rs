//! Turns a [`ChaosPlan`] into per-tick injection decisions.
//!
//! The controller is a pure schedule reader plus a little bookkeeping for
//! one-shot faults; it owns no randomness itself. Components that sample
//! (the host chain's inclusion failures, the relayer's chunk faults) derive
//! their dedicated RNG seeds from [`ChaosPlan::seed`], so chaos sampling
//! never touches the simulation's own random streams.

use crate::plan::{ChaosPlan, Fault};
use host_sim::Disturbance;
use relayer::ChunkFaults;

/// Evaluates which faults of a plan are active at a given instant.
#[derive(Debug)]
pub struct ChaosController {
    plan: ChaosPlan,
    /// Parallel to `plan.events`: whether a one-shot fault already fired.
    fired: Vec<bool>,
}

impl ChaosController {
    /// Wraps a plan.
    pub fn new(plan: ChaosPlan) -> Self {
        let fired = vec![false; plan.events.len()];
        Self { plan, fired }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Whether the plan schedules no faults (the controller is inert).
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Labels of every fault active at `now_ms`, plus already-fired
    /// one-shots — their damage persists past the firing instant, and a
    /// violation detected later should still name them.
    pub fn active_labels(&self, now_ms: u64) -> Vec<String> {
        self.plan
            .events
            .iter()
            .zip(&self.fired)
            .filter(|(e, fired)| e.is_active(now_ms) || **fired)
            .map(|(e, _)| e.fault.label())
            .collect()
    }

    /// The crash window covering instant `t` for `validator`, if any.
    ///
    /// Returning the window (not just a boolean) lets the harness replicate
    /// the deployment's outage semantics exactly: a signature scheduled to
    /// fire inside the window is deferred to just after its end, and the
    /// safety net skips the validator while the window is open.
    pub fn crash_window_at(&self, validator: usize, t: u64) -> Option<(u64, u64)> {
        self.plan.events.iter().find_map(|e| match &e.fault {
            Fault::ValidatorCrash { validator: v }
                if *v == validator && t >= e.from_ms && t < e.until_ms =>
            {
                Some((e.from_ms, e.until_ms))
            }
            _ => None,
        })
    }

    /// The combined latency multiplier for `validator` at `now_ms`
    /// (`1.0` when no spike is active).
    pub fn latency_factor(&self, validator: usize, now_ms: u64) -> f64 {
        self.plan
            .events
            .iter()
            .filter(|e| e.is_active(now_ms))
            .filter_map(|e| match &e.fault {
                Fault::ValidatorLatencySpike { validator: v, factor } if *v == validator => {
                    Some(*factor)
                }
                _ => None,
            })
            .product()
    }

    /// The clock drift of `validator` at `now_ms` (0 when none).
    pub fn clock_skew_ms(&self, validator: usize, now_ms: u64) -> i64 {
        self.plan
            .events
            .iter()
            .filter(|e| e.is_active(now_ms))
            .filter_map(|e| match &e.fault {
                Fault::ValidatorClockSkew { validator: v, offset_ms } if *v == validator => {
                    Some(*offset_ms)
                }
                _ => None,
            })
            .sum()
    }

    /// Whether the relayer is halted at `now_ms`.
    pub fn relayer_halted(&self, now_ms: u64) -> bool {
        self.plan
            .events
            .iter()
            .any(|e| e.is_active(now_ms) && matches!(e.fault, Fault::RelayerHalt))
    }

    /// Whether the counterparty chain is halted at `now_ms`.
    pub fn cp_halted(&self, now_ms: u64) -> bool {
        self.plan
            .events
            .iter()
            .any(|e| e.is_active(now_ms) && matches!(e.fault, Fault::CounterpartyHalt))
    }

    /// Whether the named mesh chain is halted at `now_ms`.
    pub fn chain_halted(&self, chain: &str, now_ms: u64) -> bool {
        self.plan.events.iter().any(|e| {
            e.is_active(now_ms) && matches!(&e.fault, Fault::ChainHalt { chain: c } if c == chain)
        })
    }

    /// Whether the named mesh link's relayer is down at `now_ms`.
    pub fn link_down(&self, link: &str, now_ms: u64) -> bool {
        self.plan.events.iter().any(|e| {
            e.is_active(now_ms) && matches!(&e.fault, Fault::LinkDown { link: l } if l == link)
        })
    }

    /// The host-chain disturbance at `now_ms` (default = inert).
    pub fn host_disturbance(&self, now_ms: u64) -> Disturbance {
        let mut disturbance = Disturbance::default();
        for event in self.plan.events.iter().filter(|e| e.is_active(now_ms)) {
            match &event.fault {
                Fault::CongestionStorm { load } => disturbance.forced_load = Some(*load),
                Fault::InclusionFailureBurst { probability } => {
                    disturbance.inclusion_failure_probability =
                        disturbance.inclusion_failure_probability.max(*probability);
                }
                _ => {}
            }
        }
        disturbance
    }

    /// The relayer chunk faults at `now_ms` (`None` when none are active,
    /// so the relayer's fault machinery stays unarmed at baseline).
    pub fn chunk_faults(&self, now_ms: u64) -> Option<ChunkFaults> {
        let mut faults = ChunkFaults { seed: self.plan.seed, ..ChunkFaults::default() };
        let mut any = false;
        for event in self.plan.events.iter().filter(|e| e.is_active(now_ms)) {
            match &event.fault {
                Fault::ChunkDrop { probability } => {
                    faults.drop_probability = faults.drop_probability.max(*probability);
                    any = true;
                }
                Fault::ChunkDuplicate { probability } => {
                    faults.duplicate_probability = faults.duplicate_probability.max(*probability);
                    any = true;
                }
                Fault::ChunkReorder { probability } => {
                    faults.reorder_probability = faults.reorder_probability.max(*probability);
                    any = true;
                }
                _ => {}
            }
        }
        any.then_some(faults)
    }

    /// One-shot faults whose window start has been reached; each is
    /// returned exactly once across the run.
    pub fn take_due_one_shots(&mut self, now_ms: u64) -> Vec<Fault> {
        let mut due = Vec::new();
        for (event, fired) in self.plan.events.iter().zip(self.fired.iter_mut()) {
            if *fired || now_ms < event.from_ms {
                continue;
            }
            if let Fault::CounterfeitMint { .. } = &event.fault {
                *fired = true;
                due.push(event.fault.clone());
            }
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosPlan;

    #[test]
    fn empty_plan_is_inert() {
        let controller = ChaosController::new(ChaosPlan::default());
        assert!(controller.is_empty());
        assert!(controller.active_labels(0).is_empty());
        assert_eq!(controller.crash_window_at(0, 0), None);
        assert_eq!(controller.latency_factor(0, 0), 1.0);
        assert_eq!(controller.clock_skew_ms(0, 0), 0);
        assert!(!controller.relayer_halted(0));
        assert!(!controller.cp_halted(0));
        let disturbance = controller.host_disturbance(0);
        assert_eq!(disturbance.forced_load, None);
        assert_eq!(disturbance.inclusion_failure_probability, 0.0);
        assert_eq!(controller.chunk_faults(0), None);
    }

    #[test]
    fn windows_gate_every_decision() {
        let plan = ChaosPlan::new(1)
            .with(100, 200, Fault::ValidatorCrash { validator: 2 })
            .with(100, 200, Fault::ValidatorLatencySpike { validator: 2, factor: 3.0 })
            .with(100, 200, Fault::RelayerHalt)
            .with(100, 200, Fault::CounterpartyHalt)
            .with(100, 200, Fault::CongestionStorm { load: 0.9 })
            .with(100, 200, Fault::ChunkDrop { probability: 0.5 })
            .with(100, 200, Fault::ChainHalt { chain: "chain-b".into() })
            .with(100, 200, Fault::LinkDown { link: "chain-a<>chain-b".into() });
        let controller = ChaosController::new(plan);

        assert_eq!(controller.crash_window_at(2, 150), Some((100, 200)));
        assert_eq!(controller.crash_window_at(2, 99), None);
        assert_eq!(controller.crash_window_at(1, 150), None, "other validators unaffected");
        assert_eq!(controller.latency_factor(2, 150), 3.0);
        assert_eq!(controller.latency_factor(2, 200), 1.0, "window end is exclusive");
        assert!(controller.relayer_halted(150) && !controller.relayer_halted(200));
        assert!(controller.cp_halted(199) && !controller.cp_halted(99));
        assert!(
            controller.chain_halted("chain-b", 150) && !controller.chain_halted("chain-b", 200)
        );
        assert!(!controller.chain_halted("chain-a", 150), "other chains unaffected");
        assert!(controller.link_down("chain-a<>chain-b", 150));
        assert!(!controller.link_down("chain-b<>chain-c", 150), "other links unaffected");
        assert_eq!(controller.host_disturbance(150).forced_load, Some(0.9));
        assert_eq!(controller.host_disturbance(200).forced_load, None);
        let faults = controller.chunk_faults(150).unwrap();
        assert_eq!(faults.drop_probability, 0.5);
        assert_eq!(controller.chunk_faults(200), None);
        assert_eq!(controller.active_labels(150).len(), 8);
    }

    #[test]
    fn one_shots_fire_exactly_once() {
        let mint = Fault::CounterfeitMint {
            account: "mallory".into(),
            denom: "transfer/channel-0/wsol".into(),
            amount: 5,
        };
        let mut controller = ChaosController::new(ChaosPlan::new(1).at(500, mint.clone()));
        assert!(controller.take_due_one_shots(499).is_empty());
        assert_eq!(controller.take_due_one_shots(500), vec![mint]);
        assert!(controller.take_due_one_shots(501).is_empty(), "already fired");
    }
}
