//! Deterministic fault injection and invariant checking for the guest
//! blockchain testnet.
//!
//! The paper's evaluation (§V) is a story of faults: a dominant validator's
//! 10-hour outage stalls finality (§V-C, Table I), host congestion stretches
//! light-client updates (§V-A), and relayer gaps fatten the block-interval
//! tail (Fig. 6). This crate turns those one-off incidents into a
//! reusable drill harness:
//!
//! * [`ChaosPlan`] ([`plan`]) — a serialisable, seeded schedule of
//!   [`Fault`]s: validator crashes, latency spikes and clock skew, relayer
//!   halts, dropped/duplicated/reordered chunk submissions, host congestion
//!   storms and inclusion-failure bursts, counterparty halts, and
//!   counterfeit voucher mints.
//! * [`ChaosController`] ([`controller`]) — evaluates the schedule each
//!   tick and hands injection decisions to the testnet harness. An empty
//!   plan is provably inert: the run is bit-identical to one without chaos.
//! * [`InvariantSuite`] ([`invariants`]) — audits cross-chain safety at
//!   every finalised guest block (ICS-20 conservation, no double
//!   finalisation, light-client monotonicity, stake conservation, no
//!   orphaned packets) and records violations naming the active faults.
//!
//! # Examples
//!
//! ```
//! use chaos::{ChaosController, ChaosPlan, Fault};
//!
//! // Crash validator 0 for ten hours starting on day 11 — the §V-C outage.
//! const DAY_MS: u64 = 24 * 60 * 60 * 1_000;
//! let plan = ChaosPlan::new(20240901)
//!     .with(11 * DAY_MS, 11 * DAY_MS + 35_940_000, Fault::ValidatorCrash { validator: 0 });
//! let controller = ChaosController::new(plan);
//! assert!(controller.crash_window_at(0, 11 * DAY_MS + 1).is_some());
//! assert!(controller.crash_window_at(0, 10 * DAY_MS).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod invariants;
pub mod plan;

pub use controller::ChaosController;
pub use invariants::{
    CheckContext, InvariantConfig, InvariantKind, InvariantSuite, InvariantViolation,
};
pub use plan::{ChaosPlan, Fault, FaultEvent};
