//! Cross-chain safety invariants, audited while faults are injected.
//!
//! The [`InvariantSuite`] watches the guest event stream and, at every
//! finalised guest block, audits global properties that must hold no
//! matter which faults are active. Violations are recorded as structured
//! [`InvariantViolation`]s naming the faults active at detection time, so
//! a chaos run's report reads "conservation broke *while* the counterfeit
//! mint was active" rather than a bare assertion failure.

use std::collections::{BTreeMap, BTreeSet};

use counterparty_sim::CounterpartyChain;
use guest_chain::{GuestContract, GuestEvent};
use ibc_core::channel::Timeout;
use ibc_core::ics20::TransferModule;
use ibc_core::{ChannelId, ClientId, IbcEvent, PortId};
use serde::{Deserialize, Serialize};
use sim_crypto::Hash;
use telemetry::Telemetry;

/// The audited properties.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantKind {
    /// Vouchers minted on one side never exceed the escrow backing them on
    /// the other (ICS-20 conservation; equality holds in quiescence).
    Ics20Conservation,
    /// A guest height is finalised at most once.
    NoDoubleFinalisation,
    /// Light-client verified heights never move backwards, on either side.
    LightClientMonotonic,
    /// Active stake + pending withdrawals + cumulative slashed amounts
    /// equal the initially bonded total.
    StakeConservation,
    /// No outbound packet commitment lingers unresolved long past its
    /// timeout (the relayer must deliver, acknowledge or time it out).
    NoOrphanedPacket,
    /// Every ICS-29 fee unit escrowed by a stacked fee middleware is
    /// accounted for: the escrow account holds exactly the registered
    /// pending fees, and escrowed = paid + refunded + pending.
    FeeConservation,
}

impl InvariantKind {
    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            InvariantKind::Ics20Conservation => "ics20-conservation",
            InvariantKind::NoDoubleFinalisation => "no-double-finalisation",
            InvariantKind::LightClientMonotonic => "light-client-monotonic",
            InvariantKind::StakeConservation => "stake-conservation",
            InvariantKind::NoOrphanedPacket => "no-orphaned-packet",
            InvariantKind::FeeConservation => "fee-conservation",
        }
    }
}

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InvariantViolation {
    /// Simulated time of detection.
    pub at_ms: u64,
    /// The broken invariant.
    pub invariant: InvariantKind,
    /// Human-readable specifics (amounts, heights, sequences).
    pub details: String,
    /// Labels of the faults active at detection time ([`crate::Fault::label`]).
    pub faults: Vec<String>,
    /// Telemetry trace ids of the outbound packets in flight at detection
    /// time (empty when telemetry is disabled), linking the violation to
    /// the packet-lifecycle traces it may have corrupted.
    #[serde(default)]
    pub linked_traces: Vec<u64>,
}

/// Tuning knobs of the suite.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InvariantConfig {
    /// Grace period after a packet's timeout expires before an unresolved
    /// commitment counts as orphaned. Covers the relayer's worst-case
    /// timeout-proof latency (a chunked job under congestion).
    pub orphan_slack_ms: u64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self { orphan_slack_ms: 2 * 60 * 60 * 1_000 }
    }
}

/// Everything a [`InvariantSuite::check`] needs to see, borrowed from the
/// harness for the duration of one audit.
pub struct CheckContext<'a> {
    /// Simulated time.
    pub now_ms: u64,
    /// Labels of currently active faults (violation attribution).
    pub faults: &'a [String],
    /// The guest contract.
    pub contract: &'a GuestContract,
    /// The counterparty chain.
    pub cp: &'a CounterpartyChain,
    /// The transfer port (both sides bind the same port id).
    pub port: PortId,
    /// The guest end of the transfer channel.
    pub guest_channel: ChannelId,
    /// The counterparty end of the transfer channel.
    pub cp_channel: ChannelId,
    /// The client tracking the guest, hosted on the counterparty.
    pub guest_client_on_cp: ClientId,
    /// The client tracking the counterparty, hosted on the guest.
    pub cp_client_on_guest: ClientId,
    /// The guest-native denomination (escrowed on the guest side).
    pub guest_denom: &'a str,
    /// The counterparty-native denomination (escrowed on the cp side).
    pub cp_denom: &'a str,
}

/// State of one tracked outbound packet commitment.
#[derive(Clone, Copy, Debug)]
struct TrackedPacket {
    timeout: Timeout,
    /// When the suite first saw the timeout expired with the commitment
    /// still unresolved.
    expired_since_ms: Option<u64>,
}

/// The invariant checker (see module docs).
#[derive(Debug, Default)]
pub struct InvariantSuite {
    config: InvariantConfig,
    /// Finalised height → block hash.
    finalised: BTreeMap<u64, Hash>,
    /// Highest verified height seen per client side.
    guest_client_height: u64,
    cp_client_height: u64,
    /// Outbound guest packets awaiting ack or timeout, by sequence.
    outbound: BTreeMap<u64, TrackedPacket>,
    /// Initially bonded stake (captured at the first audit).
    stake_baseline: Option<u64>,
    /// Cumulative slashed stake, from `ValidatorSlashed` events.
    slashed_total: u64,
    /// Dedup keys of already-reported violations, so a persistent breach
    /// is recorded once rather than at every finalised block.
    reported: BTreeSet<String>,
    violations: Vec<InvariantViolation>,
    /// The guest transfer channel, captured from the first observed event
    /// (the key under which packet traces are registered).
    guest_channel_label: Option<String>,
    telemetry: Telemetry,
}

impl InvariantSuite {
    /// A suite with the given configuration.
    pub fn new(config: InvariantConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// The violations detected so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Installs an observability sink. Every recorded violation is mirrored
    /// into the telemetry journal, linked to the traces of the packets in
    /// flight when the breach was detected.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Feeds one guest event into the suite's bookkeeping. Call for every
    /// event the harness drains, in order.
    pub fn observe_guest_event(
        &mut self,
        now_ms: u64,
        faults: &[String],
        event: &GuestEvent,
        guest_channel: &ChannelId,
    ) {
        if self.guest_channel_label.is_none() {
            self.guest_channel_label = Some(guest_channel.as_str().to_string());
        }
        match event {
            GuestEvent::FinalisedBlock { block, .. } => {
                let hash = block.hash();
                if let Some(previous) = self.finalised.get(&block.height) {
                    let conflicting = *previous != hash;
                    self.record(
                        now_ms,
                        faults,
                        InvariantKind::NoDoubleFinalisation,
                        format!("double-final:{}", block.height),
                        if conflicting {
                            format!(
                                "height {} finalised twice with conflicting hashes",
                                block.height
                            )
                        } else {
                            format!("height {} finalised twice", block.height)
                        },
                    );
                } else {
                    self.finalised.insert(block.height, hash);
                }
            }
            GuestEvent::ValidatorSlashed { amount, .. } => {
                self.slashed_total += *amount;
            }
            GuestEvent::Ibc(IbcEvent::SendPacket { packet })
                if packet.source_channel == *guest_channel =>
            {
                self.outbound.insert(
                    packet.sequence,
                    TrackedPacket { timeout: packet.timeout, expired_since_ms: None },
                );
            }
            GuestEvent::Ibc(IbcEvent::AcknowledgePacket { packet })
            | GuestEvent::Ibc(IbcEvent::TimeoutPacket { packet })
                if packet.source_channel == *guest_channel =>
            {
                self.outbound.remove(&packet.sequence);
            }
            _ => {}
        }
    }

    /// Runs the full audit. The harness calls this at every finalised
    /// guest block.
    pub fn check(&mut self, ctx: &CheckContext<'_>) {
        self.check_conservation(ctx);
        self.check_fee_conservation(ctx);
        self.check_client_monotonicity(ctx);
        self.check_stake_conservation(ctx);
        self.check_orphaned_packets(ctx);
    }

    fn record(
        &mut self,
        at_ms: u64,
        faults: &[String],
        invariant: InvariantKind,
        dedup_key: String,
        details: String,
    ) {
        if !self.reported.insert(dedup_key) {
            return;
        }
        let linked_traces = self.in_flight_traces();
        self.telemetry.violation(
            at_ms,
            invariant.name(),
            &details,
            faults,
            &linked_traces.iter().map(|id| telemetry::TraceId(*id)).collect::<Vec<_>>(),
        );
        self.violations.push(InvariantViolation {
            at_ms,
            invariant,
            details,
            faults: faults.to_vec(),
            linked_traces,
        });
    }

    /// Trace ids of the tracked outbound packets still awaiting resolution.
    fn in_flight_traces(&self) -> Vec<u64> {
        let Some(channel) = self.guest_channel_label.as_deref() else { return Vec::new() };
        self.outbound
            .keys()
            .filter_map(|sequence| self.telemetry.lookup_packet_trace("guest", channel, *sequence))
            .map(|trace| trace.0)
            .collect()
    }

    /// Vouchers in circulation on one side must be fully backed by escrow
    /// on the other. While transfers are in flight (escrowed but not yet
    /// minted, or burned but not yet released) the voucher total runs
    /// *below* the escrow, so the audit checks `vouchers ≤ escrow` — any
    /// excess means value was created out of thin air.
    fn check_conservation(&mut self, ctx: &CheckContext<'_>) {
        let Some(guest_bank) = transfer_module(ctx.contract.ibc().module(&ctx.port)) else {
            return;
        };
        let Some(cp_bank) = transfer_module(ctx.cp.ibc().module(&ctx.port)) else {
            return;
        };

        // Guest-native tokens: escrowed on the guest, vouchers on the cp.
        let outbound_voucher = format!("{}/{}/{}", ctx.port, ctx.cp_channel, ctx.guest_denom);
        let escrowed =
            guest_bank.balance(&format!("escrow:{}", ctx.guest_channel), ctx.guest_denom);
        let minted = cp_bank.total_supply(&outbound_voucher);
        if minted > escrowed {
            self.record(
                ctx.now_ms,
                ctx.faults,
                InvariantKind::Ics20Conservation,
                format!("conservation:{}", ctx.guest_denom),
                format!(
                    "{minted} {outbound_voucher} vouchers on the counterparty exceed the \
                     {escrowed} {} escrowed on the guest",
                    ctx.guest_denom
                ),
            );
        }

        // Counterparty-native tokens: escrowed on the cp, vouchers on the
        // guest.
        let inbound_voucher = format!("{}/{}/{}", ctx.port, ctx.guest_channel, ctx.cp_denom);
        let escrowed = cp_bank.balance(&format!("escrow:{}", ctx.cp_channel), ctx.cp_denom);
        let minted = guest_bank.total_supply(&inbound_voucher);
        if minted > escrowed {
            self.record(
                ctx.now_ms,
                ctx.faults,
                InvariantKind::Ics20Conservation,
                format!("conservation:{}", ctx.cp_denom),
                format!(
                    "{minted} {inbound_voucher} vouchers on the guest exceed the \
                     {escrowed} {} escrowed on the counterparty",
                    ctx.cp_denom
                ),
            );
        }
    }

    /// Audits the ICS-29 fee middleware on both sides, when one is
    /// stacked: the fee-escrow account must hold exactly the registered
    /// pending fees, and the escrowed total must split cleanly into
    /// paid + refunded + pending. Bare (stack-less) modules and stacks
    /// without a fee layer are vacuously conserving.
    fn check_fee_conservation(&mut self, ctx: &CheckContext<'_>) {
        let sides = [
            ("guest", ctx.contract.ibc().module(&ctx.port)),
            ("counterparty", ctx.cp.ibc().module(&ctx.port)),
        ];
        for (side, module) in sides {
            let Some(module) = module else { continue };
            let Some(stack) = module.as_any().downcast_ref::<apps::ModuleStack>() else {
                continue;
            };
            let (Some(fees), Some(ledger)) = (stack.fees(), module.ics20()) else { continue };
            let imbalance = fees.imbalance(ledger);
            if imbalance > 0 {
                let totals = fees.totals();
                self.record(
                    ctx.now_ms,
                    ctx.faults,
                    InvariantKind::FeeConservation,
                    format!("fees:{side}"),
                    format!(
                        "{imbalance} escrowed fee units unaccounted for on the {side} \
                         (escrowed {} = paid {} + refunded {} + pending {} + leak)",
                        totals.escrowed, totals.paid, totals.refunded, totals.pending
                    ),
                );
            }
        }
    }

    fn check_client_monotonicity(&mut self, ctx: &CheckContext<'_>) {
        if let Ok(client) = ctx.cp.ibc().client(&ctx.guest_client_on_cp) {
            let height = client.latest_height();
            if height < self.guest_client_height {
                self.record(
                    ctx.now_ms,
                    ctx.faults,
                    InvariantKind::LightClientMonotonic,
                    format!("monotonic:guest-on-cp:{height}"),
                    format!(
                        "guest client on counterparty regressed from {} to {height}",
                        self.guest_client_height
                    ),
                );
            }
            self.guest_client_height = self.guest_client_height.max(height);
        }
        if let Ok(client) = ctx.contract.ibc().client(&ctx.cp_client_on_guest) {
            let height = client.latest_height();
            if height < self.cp_client_height {
                self.record(
                    ctx.now_ms,
                    ctx.faults,
                    InvariantKind::LightClientMonotonic,
                    format!("monotonic:cp-on-guest:{height}"),
                    format!(
                        "counterparty client on guest regressed from {} to {height}",
                        self.cp_client_height
                    ),
                );
            }
            self.cp_client_height = self.cp_client_height.max(height);
        }
    }

    /// Slashing burns stake, so the bonded total only moves to pending
    /// withdrawals or the slash counter — never appears or disappears.
    fn check_stake_conservation(&mut self, ctx: &CheckContext<'_>) {
        let staking = ctx.contract.staking();
        let accounted = staking.total_stake() + staking.pending_total() + self.slashed_total;
        let baseline = *self.stake_baseline.get_or_insert(accounted);
        if accounted != baseline {
            self.record(
                ctx.now_ms,
                ctx.faults,
                InvariantKind::StakeConservation,
                format!("stake:{accounted}"),
                format!("active + pending + slashed = {accounted}, initially bonded {baseline}"),
            );
        }
    }

    fn check_orphaned_packets(&mut self, ctx: &CheckContext<'_>) {
        let dest_height = ctx.cp.height();
        let dest_time = ctx.cp.now_ms();
        let slack = self.config.orphan_slack_ms;
        let mut orphaned: Vec<(u64, u64)> = Vec::new();
        for (sequence, tracked) in self.outbound.iter_mut() {
            if !tracked.timeout.has_expired(dest_height, dest_time) {
                continue;
            }
            let since = *tracked.expired_since_ms.get_or_insert(ctx.now_ms);
            if ctx.now_ms.saturating_sub(since) > slack {
                orphaned.push((*sequence, since));
            }
        }
        for (sequence, since) in orphaned {
            self.record(
                ctx.now_ms,
                ctx.faults,
                InvariantKind::NoOrphanedPacket,
                format!("orphan:{sequence}"),
                format!(
                    "outbound packet #{sequence} still committed {} ms after its timeout expired",
                    ctx.now_ms.saturating_sub(since)
                ),
            );
        }
    }
}

/// The ICS-20 ledger a bound IBC module fronts, whether it is a bare
/// transfer module or an application stack wrapping one.
fn transfer_module<'a>(
    module: Option<&'a (dyn ibc_core::Module + 'a)>,
) -> Option<&'a TransferModule> {
    module?.ics20()
}
