//! Property-based tests: the sealable trie against a `BTreeMap` model.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sealable_trie::{Trie, TrieError, VerifyOutcome};

/// Operations the model understands.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Seal(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet and length force collisions, shared prefixes and
    // leaf/extension splits.
    proptest::collection::vec(0u8..4, 1..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), proptest::collection::vec(any::<u8>(), 1..20))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        1 => key_strategy().prop_map(Op::Remove),
        1 => key_strategy().prop_map(Op::Seal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The trie agrees with a BTreeMap model under arbitrary interleavings
    /// of insert/remove/seal, with sealed keys tracked separately.
    #[test]
    fn matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut trie = Trie::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut sealed: Vec<Vec<u8>> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(key, value) => {
                    match trie.insert(&key, &value) {
                        Ok(()) => {
                            prop_assert!(!sealed.contains(&key));
                            model.insert(key, value);
                        }
                        Err(TrieError::Sealed) => {
                            // Either the key itself or a reclaimed region —
                            // the key must not be live in the model.
                            prop_assert!(!model.contains_key(&key));
                        }
                        Err(other) => prop_assert!(false, "unexpected {other:?}"),
                    }
                }
                Op::Remove(key) => {
                    match trie.remove(&key) {
                        Ok(removed) => {
                            prop_assert_eq!(removed, model.remove(&key));
                        }
                        Err(TrieError::Sealed) => {
                            prop_assert!(!model.contains_key(&key));
                        }
                        Err(other) => prop_assert!(false, "unexpected {other:?}"),
                    }
                }
                Op::Seal(key) => {
                    match trie.seal(&key) {
                        Ok(()) => {
                            prop_assert!(model.remove(&key).is_some());
                            sealed.push(key);
                        }
                        Err(TrieError::NotFound) => {
                            prop_assert!(!model.contains_key(&key));
                        }
                        Err(TrieError::Sealed) => {
                            prop_assert!(!model.contains_key(&key));
                        }
                        Err(other) => prop_assert!(false, "unexpected {other:?}"),
                    }
                }
            }
        }

        // Every live model entry must be readable with the right value.
        for (key, value) in &model {
            let got = trie.get(key).unwrap();
            prop_assert_eq!(got.as_deref(), Some(value.as_slice()));
        }
        prop_assert_eq!(trie.len(), model.len());
        // Every sealed key must stay firmly sealed.
        for key in &sealed {
            prop_assert_eq!(trie.get(key), Err(TrieError::Sealed));
        }
    }

    /// Root hash is independent of insertion order (no seals/removes).
    #[test]
    fn root_is_order_independent(
        mut entries in proptest::collection::btree_map(key_strategy(),
            proptest::collection::vec(any::<u8>(), 1..8), 1..30),
        seed in any::<u64>(),
    ) {
        let items: Vec<_> = entries.clone().into_iter().collect();
        let mut forward = Trie::new();
        for (k, v) in &items {
            forward.insert(k, v).unwrap();
        }
        // Deterministic shuffle driven by the seed.
        let mut shuffled = items.clone();
        let mut state = seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut other = Trie::new();
        for (k, v) in &shuffled {
            other.insert(k, v).unwrap();
        }
        prop_assert_eq!(forward.root_hash(), other.root_hash());
        // And removing an entry returns to the root of the set without it.
        if let Some((k, _)) = items.first() {
            entries.remove(k);
            let mut without = Trie::new();
            for (k2, v2) in &entries {
                without.insert(k2, v2).unwrap();
            }
            forward.remove(k).unwrap();
            prop_assert_eq!(forward.root_hash(), without.root_hash());
        }
    }

    /// Proofs verify for both present and absent keys, and value forgery is
    /// rejected.
    #[test]
    fn proofs_verify(
        entries in proptest::collection::btree_map(key_strategy(),
            proptest::collection::vec(any::<u8>(), 1..8), 1..25),
        probe in key_strategy(),
    ) {
        let mut trie = Trie::new();
        for (k, v) in &entries {
            trie.insert(k, v).unwrap();
        }
        let root = trie.root_hash();
        for (k, v) in &entries {
            let proof = trie.prove(k).unwrap();
            prop_assert!(proof.verify_member(&root, k, v));
            prop_assert!(!proof.verify_member(&root, k, b"forged-value"));
        }
        let proof = trie.prove(&probe).unwrap();
        match trie.get(&probe).unwrap() {
            Some(v) => prop_assert!(proof.verify_member(&root, &probe, &v)),
            None => prop_assert!(proof.verify_non_member(&root, &probe)),
        }
    }

    /// Sealing any subset never changes the root and never affects live
    /// siblings.
    #[test]
    fn sealing_preserves_root_and_siblings(
        entries in proptest::collection::btree_map(key_strategy(),
            proptest::collection::vec(any::<u8>(), 1..8), 2..25),
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..10),
    ) {
        let mut trie = Trie::new();
        for (k, v) in &entries {
            trie.insert(k, v).unwrap();
        }
        let root = trie.root_hash();
        let keys: Vec<_> = entries.keys().cloned().collect();
        let mut sealed = Vec::new();
        for pick in picks {
            let key = pick.get(&keys).clone();
            if !sealed.contains(&key) {
                trie.seal(&key).unwrap();
                sealed.push(key);
            }
        }
        prop_assert_eq!(trie.root_hash(), root);
        for (k, v) in &entries {
            if sealed.contains(k) {
                prop_assert_eq!(trie.get(k), Err(TrieError::Sealed));
            } else {
                let got = trie.get(k).unwrap();
                prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
                // Live keys can still be proven against the unchanged root.
                let proof = trie.prove(k).unwrap();
                prop_assert!(proof.verify_member(&root, k, v));
            }
        }
    }

    /// A proof produced for one trie never verifies as Member against the
    /// root of a trie with different contents.
    #[test]
    fn proofs_do_not_transfer(
        entries in proptest::collection::btree_map(key_strategy(),
            proptest::collection::vec(any::<u8>(), 1..8), 1..15),
    ) {
        let mut a = Trie::new();
        for (k, v) in &entries {
            a.insert(k, v).unwrap();
        }
        let mut b = a.clone();
        let (first_key, _) = entries.iter().next().unwrap();
        b.insert(b"extra-key-not-in-a", b"x").unwrap();
        let proof_a = a.prove(first_key).unwrap();
        // Against b's root, a's proof must be Invalid (roots differ).
        prop_assert_eq!(proof_a.verify(&b.root_hash(), first_key), VerifyOutcome::Invalid);
    }
}
