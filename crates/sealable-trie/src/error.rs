//! Trie error type.

use core::fmt;

use sim_crypto::Hash;

/// Errors returned by trie operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrieError {
    /// The operation needed to read or modify a sealed node.
    ///
    /// Sealed nodes have been reclaimed from storage; their hash is still
    /// part of the commitment but their contents are permanently
    /// inaccessible. This is the error the guest contract relies on to
    /// reject double delivery.
    Sealed,
    /// A node referenced by `hash` is missing from the store in a context
    /// where it cannot be a sealed node (e.g. the root of a non-empty trie
    /// being read right after construction from a foreign store).
    MissingNode(Hash),
    /// The key addressed by a seal operation is not a live entry.
    NotFound,
    /// The key is empty; empty keys are not representable in the trie.
    EmptyKey,
    /// The value is empty; an empty value is indistinguishable from absence
    /// in a non-membership proof, so it is rejected at insertion.
    EmptyValue,
}

impl fmt::Display for TrieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Sealed => f.write_str("entry is sealed and can no longer be accessed"),
            Self::MissingNode(hash) => write!(f, "node {} missing from store", hash.short()),
            Self::NotFound => f.write_str("key is not a live entry"),
            Self::EmptyKey => f.write_str("empty keys are not supported"),
            Self::EmptyValue => f.write_str("empty values are not supported"),
        }
    }
}

impl std::error::Error for TrieError {}
