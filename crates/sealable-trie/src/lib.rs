//! A *sealable* Merkle-Patricia trie — the provable-storage contribution of
//! "Be My Guest: Welcoming Interoperability into IBC-Incompatible
//! Blockchains" (DSN 2025, §III-A).
//!
//! # Why sealing?
//!
//! An IBC endpoint must remember every packet it has ever received to prevent
//! double delivery, so its provable store grows without bound. Inspired by
//! Bitcoin's disk-reclamation technique, the sealable trie lets a node be
//! **sealed**: its bytes are removed from the underlying storage while its
//! hash remains embedded in the parent, so the trie's *commitment (root
//! hash) is unchanged*. A sealed entry can never be read or overwritten —
//! which is exactly the "was this packet already delivered?" semantics the
//! guest contract needs — and when every child of an interior node is sealed
//! the interior node is reclaimed too. Storage use therefore depends only on
//! the number of *live* keys (open channels and packets in flight), not on
//! history.
//!
//! # Structure
//!
//! The trie is a hex (16-ary) Patricia trie with three node kinds
//! ([`node::Node`]): leaves, branches and extensions. Node hashes commit to
//! value *hashes*, so a value's bytes can be dropped (sealed) without
//! disturbing the commitment. Nodes live in a content-addressed
//! [`store::NodeStore`]; a node that is referenced by hash but absent from
//! the store *is* a sealed node.
//!
//! Membership and non-membership proofs ([`proof::Proof`]) are verified
//! against a bare root hash by [`proof::Proof::verify`], with no access to
//! the store — this is what a counterparty light client runs.
//!
//! # Examples
//!
//! ```
//! use sealable_trie::Trie;
//!
//! let mut trie = Trie::new();
//! trie.insert(b"packet/1", b"commitment-a")?;
//! trie.insert(b"packet/2", b"commitment-b")?;
//! let root = trie.root_hash();
//!
//! // Prove membership to an external verifier.
//! let proof = trie.prove(b"packet/1")?;
//! assert!(proof.verify(&root, b"packet/1").is_member());
//!
//! // Seal the entry: the root is unchanged but the data is gone for good.
//! trie.seal(b"packet/1")?;
//! assert_eq!(trie.root_hash(), root);
//! assert!(trie.get(b"packet/1").is_err());          // sealed, not absent
//! assert!(trie.insert(b"packet/1", b"x").is_err()); // cannot be overwritten
//! # Ok::<(), sealable_trie::TrieError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod nibbles;
pub mod node;
pub mod proof;
pub mod store;
mod trie;

pub use error::TrieError;
pub use nibbles::Nibbles;
pub use proof::{Proof, VerifyOutcome};
pub use store::{MemStore, NodeStore, StoreStats};
pub use trie::Trie;
