//! Key paths as sequences of 4-bit nibbles.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A sequence of 4-bit nibbles (each element is `0..16`).
///
/// Keys are byte strings; the trie branches on nibbles, so an `n`-byte key
/// becomes a `2n`-nibble path. The invariant that every element is below 16
/// is maintained by construction.
///
/// # Examples
///
/// ```
/// use sealable_trie::Nibbles;
///
/// let path = Nibbles::from_key(&[0xAB, 0x01]);
/// assert_eq!(path.as_slice(), &[0xA, 0xB, 0x0, 0x1]);
/// assert_eq!(path.to_key_bytes(), Some(vec![0xAB, 0x01]));
/// ```
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Nibbles(Vec<u8>);

impl Nibbles {
    /// Creates an empty path.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Converts a byte key into its nibble path (high nibble first).
    pub fn from_key(key: &[u8]) -> Self {
        let mut out = Vec::with_capacity(key.len() * 2);
        for byte in key {
            out.push(byte >> 4);
            out.push(byte & 0xf);
        }
        Self(out)
    }

    /// Wraps a raw nibble vector.
    ///
    /// # Panics
    ///
    /// Panics if any element is 16 or larger.
    pub fn from_nibbles(nibbles: Vec<u8>) -> Self {
        assert!(nibbles.iter().all(|&n| n < 16), "nibble out of range");
        Self(nibbles)
    }

    /// The nibbles as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Number of nibbles.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts back to bytes if the nibble count is even.
    pub fn to_key_bytes(&self) -> Option<Vec<u8>> {
        if !self.0.len().is_multiple_of(2) {
            return None;
        }
        Some(self.0.chunks_exact(2).map(|pair| (pair[0] << 4) | pair[1]).collect())
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &[u8]) -> usize {
        self.0.iter().zip(other).take_while(|(a, b)| a == b).count()
    }

    /// Returns the sub-path `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Nibbles {
        Self(self.0[start..end].to_vec())
    }

    /// Appends a single nibble.
    ///
    /// # Panics
    ///
    /// Panics if `nibble >= 16`.
    pub fn push(&mut self, nibble: u8) {
        assert!(nibble < 16, "nibble out of range");
        self.0.push(nibble);
    }

    /// Appends all nibbles of `other`.
    pub fn extend_from(&mut self, other: &Nibbles) {
        self.0.extend_from_slice(&other.0);
    }

    /// Compact serialization: length prefix + packed pairs.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.0.len() / 2 + 1);
        out.extend_from_slice(&(self.0.len() as u16).to_le_bytes());
        for pair in self.0.chunks(2) {
            let hi = pair[0] << 4;
            let lo = pair.get(1).copied().unwrap_or(0);
            out.push(hi | lo);
        }
        out
    }
}

impl fmt::Debug for Nibbles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nibbles(")?;
        for n in &self.0 {
            write!(f, "{n:x}")?;
        }
        f.write_str(")")
    }
}

impl From<&[u8]> for Nibbles {
    fn from(key: &[u8]) -> Self {
        Self::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = [0x12u8, 0x34, 0xFF, 0x00];
        let nibbles = Nibbles::from_key(&key);
        assert_eq!(nibbles.len(), 8);
        assert_eq!(nibbles.to_key_bytes().unwrap(), key);
    }

    #[test]
    fn odd_length_has_no_key_bytes() {
        let nibbles = Nibbles::from_nibbles(vec![1, 2, 3]);
        assert_eq!(nibbles.to_key_bytes(), None);
    }

    #[test]
    fn common_prefix() {
        let a = Nibbles::from_nibbles(vec![1, 2, 3, 4]);
        assert_eq!(a.common_prefix_len(&[1, 2, 9]), 2);
        assert_eq!(a.common_prefix_len(&[]), 0);
        assert_eq!(a.common_prefix_len(&[1, 2, 3, 4, 5]), 4);
    }

    #[test]
    fn slice_and_push() {
        let a = Nibbles::from_nibbles(vec![1, 2, 3, 4]);
        let mut b = a.slice(1, 3);
        assert_eq!(b.as_slice(), &[2, 3]);
        b.push(0xf);
        assert_eq!(b.as_slice(), &[2, 3, 0xf]);
    }

    #[test]
    #[should_panic(expected = "nibble out of range")]
    fn rejects_big_nibble() {
        Nibbles::from_nibbles(vec![16]);
    }

    #[test]
    fn encode_distinguishes_lengths() {
        // [1] vs [1, 0] pack to the same byte but differ in the length
        // prefix — encodings must differ.
        let a = Nibbles::from_nibbles(vec![1]).encode();
        let b = Nibbles::from_nibbles(vec![1, 0]).encode();
        assert_ne!(a, b);
    }
}
