//! Trie node representation and hashing.

use serde::{Deserialize, Serialize};
use sim_crypto::{sha256, Hash, Sha256};

use crate::store::Ptr;
use crate::Nibbles;

/// A stored value.
///
/// The node hash commits to [`Value::hash`] only, so [`Value::data`] can be
/// dropped — *sealed* — without changing the commitment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Value {
    /// SHA-256 of the value bytes; always present.
    pub hash: Hash,
    /// The value bytes; `None` once the value has been sealed.
    pub data: Option<Vec<u8>>,
}

impl Value {
    /// Creates a live value from bytes.
    pub fn new(data: Vec<u8>) -> Self {
        Self { hash: sha256(&data), data: Some(data) }
    }

    /// Whether the bytes have been sealed away.
    pub fn is_sealed(&self) -> bool {
        self.data.is_none()
    }

    /// Drops the bytes, keeping only the hash.
    pub fn seal(&mut self) {
        self.data = None;
    }
}

/// A reference from a parent node to a child.
///
/// The `hash` is the commitment (what proofs and the root are built from);
/// the `ptr` locates the child in storage. A `ptr` whose node is missing
/// from the store denotes a *sealed* child: the commitment survives, the
/// data does not. Storing nodes by location rather than by content hash
/// mirrors the paper's Solana implementation (nodes in an account, addressed
/// by index) and ensures two identical subtrees never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChildRef {
    /// Location of the child node in the store.
    pub ptr: Ptr,
    /// Commitment hash of the child node.
    pub hash: Hash,
}

/// A trie node.
///
/// The branch variant is much larger than the others (16 child slots);
/// nodes are stored individually, so the imbalance is accepted in exchange
/// for keeping branches inline-accessible.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Node {
    /// Terminal node holding a value at the end of `path`.
    Leaf {
        /// Remaining nibbles of the key below the parent.
        path: Nibbles,
        /// The stored value.
        value: Value,
    },
    /// 16-way fan-out.
    ///
    /// Branches never carry values: the trie length-prefixes every key, so
    /// no key's nibble path is a proper prefix of another's and all values
    /// terminate in leaves.
    Branch {
        /// Child references indexed by next nibble; `None` = no child.
        children: [Option<ChildRef>; 16],
    },
    /// Path compression: a run of nibbles with a single child below.
    Extension {
        /// The compressed nibble run (never empty).
        path: Nibbles,
        /// Reference to the single child (a branch).
        child: ChildRef,
    },
}

impl Node {
    /// Computes the node's commitment hash.
    ///
    /// Values contribute their *hash*, not their bytes, so sealing a value
    /// leaves the node hash unchanged; children contribute their commitment
    /// hashes (absent children contribute [`Hash::ZERO`]); storage pointers
    /// contribute nothing.
    pub fn hash(&self) -> Hash {
        let mut hasher = Sha256::new();
        match self {
            Node::Leaf { path, value } => {
                hasher.update([0u8]);
                hasher.update(path.encode());
                hasher.update(value.hash);
            }
            Node::Branch { children } => {
                hasher.update([1u8]);
                for child in children {
                    hasher.update(child.map_or(Hash::ZERO, |c| c.hash));
                }
            }
            Node::Extension { path, child } => {
                hasher.update([2u8]);
                hasher.update(path.encode());
                hasher.update(child.hash);
            }
        }
        hasher.finalize()
    }

    /// Approximate storage footprint in bytes, as charged by the node store.
    ///
    /// Mirrors what a Solana account would hold: tag + path + child hashes +
    /// live value bytes. Sealed values no longer pay for their data.
    pub fn storage_size(&self) -> usize {
        match self {
            Node::Leaf { path, value } => {
                1 + 2 + path.len().div_ceil(2) + 32 + value.data.as_ref().map_or(0, |d| d.len())
            }
            Node::Branch { children } => 1 + children.iter().flatten().count() * 40,
            Node::Extension { path, .. } => 1 + 2 + path.len().div_ceil(2) + 40,
        }
    }
}

/// An empty branch child array (helper for construction).
pub const EMPTY_CHILDREN: [Option<ChildRef>; 16] = [None; 16];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealing_value_preserves_node_hash() {
        let mut leaf =
            Node::Leaf { path: Nibbles::from_key(b"k"), value: Value::new(b"v".to_vec()) };
        let before = leaf.hash();
        if let Node::Leaf { value, .. } = &mut leaf {
            value.seal();
        }
        assert_eq!(leaf.hash(), before);
    }

    #[test]
    fn different_values_different_hashes() {
        let a = Node::Leaf { path: Nibbles::from_key(b"k"), value: Value::new(b"1".to_vec()) };
        let b = Node::Leaf { path: Nibbles::from_key(b"k"), value: Value::new(b"2".to_vec()) };
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn different_paths_different_hashes() {
        let a = Node::Leaf { path: Nibbles::from_key(b"a"), value: Value::new(b"v".to_vec()) };
        let b = Node::Leaf { path: Nibbles::from_key(b"b"), value: Value::new(b"v".to_vec()) };
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn branch_child_position_matters() {
        let child = ChildRef { ptr: 1, hash: sha256(b"child") };
        let mut c1 = EMPTY_CHILDREN;
        c1[0] = Some(child);
        let mut c2 = EMPTY_CHILDREN;
        c2[1] = Some(child);
        let a = Node::Branch { children: c1 };
        let b = Node::Branch { children: c2 };
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn ptr_does_not_affect_hash() {
        let c1 = ChildRef { ptr: 1, hash: sha256(b"child") };
        let c2 = ChildRef { ptr: 999, hash: sha256(b"child") };
        let mut a = EMPTY_CHILDREN;
        a[5] = Some(c1);
        let mut b = EMPTY_CHILDREN;
        b[5] = Some(c2);
        assert_eq!(Node::Branch { children: a }.hash(), Node::Branch { children: b }.hash());
    }

    #[test]
    fn storage_size_shrinks_when_sealed() {
        let mut leaf =
            Node::Leaf { path: Nibbles::from_key(b"key"), value: Value::new(vec![0u8; 100]) };
        let before = leaf.storage_size();
        if let Node::Leaf { value, .. } = &mut leaf {
            value.seal();
        }
        assert!(leaf.storage_size() + 100 == before);
    }

    #[test]
    fn node_kinds_hash_distinctly() {
        // A leaf and an extension with identical byte content must differ.
        let path = Nibbles::from_key(b"x");
        let leaf = Node::Leaf { path: path.clone(), value: Value::new(b"v".to_vec()) };
        let ext = Node::Extension { path, child: ChildRef { ptr: 0, hash: sha256(b"v") } };
        assert_ne!(leaf.hash(), ext.hash());
    }
}
