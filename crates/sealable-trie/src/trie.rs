//! The sealable Merkle-Patricia trie.

use sim_crypto::Hash;

use crate::node::{ChildRef, Node, Value, EMPTY_CHILDREN};
use crate::proof::{Proof, ProofNode};
use crate::store::{MemStore, NodeStore, StoreStats};
use crate::{Nibbles, TrieError};

/// Internal key encoding: LEB128 length prefix followed by the key bytes.
///
/// The prefix makes the encoded key set *prefix-free* (no encoded key is a
/// proper prefix of another), which guarantees every value terminates in a
/// leaf and lets sealing reclaim whole leaf nodes.
pub(crate) fn encode_key(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 2);
    let mut len = key.len() as u64;
    loop {
        let byte = (len & 0x7f) as u8;
        len >>= 7;
        if len == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out.extend_from_slice(key);
    out
}

/// Decodes the internal encoding back to the user key.
fn decode_key(encoded: &[u8]) -> Option<Vec<u8>> {
    let mut len: u64 = 0;
    let mut shift = 0;
    let mut idx = 0;
    loop {
        let byte = *encoded.get(idx)?;
        idx += 1;
        len |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    let rest = &encoded[idx..];
    (rest.len() as u64 == len).then(|| rest.to_vec())
}

/// The state of a key in the trie.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryState {
    /// The key has never been inserted (or has been removed).
    Absent,
    /// The key holds a readable value.
    Live,
    /// The key was inserted and then sealed; it can never be read or
    /// written again.
    Sealed,
}

/// A sealable Merkle-Patricia trie over a pluggable [`NodeStore`].
///
/// See the crate-level documentation for semantics and an example. With
/// the default [`MemStore`] the whole trie (including sealed markers)
/// serializes with serde, so chain state can be snapshotted and restored.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Trie<S: NodeStore = MemStore> {
    store: S,
    root: Option<ChildRef>,
    live_entries: usize,
    sealed_entries: usize,
}

impl Trie<MemStore> {
    /// Creates an empty trie backed by an in-memory store.
    pub fn new() -> Self {
        Self::with_store(MemStore::new())
    }
}

impl Default for Trie<MemStore> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: NodeStore> Trie<S> {
    /// Creates an empty trie backed by `store`.
    pub fn with_store(store: S) -> Self {
        Self { store, root: None, live_entries: 0, sealed_entries: 0 }
    }

    /// The commitment to the current contents ([`Hash::ZERO`] when empty).
    ///
    /// Sealing entries does **not** change this value; inserting or removing
    /// does.
    pub fn root_hash(&self) -> Hash {
        self.root.map_or(Hash::ZERO, |r| r.hash)
    }

    /// Number of live (readable) entries.
    pub fn len(&self) -> usize {
        self.live_entries
    }

    /// Whether the trie has no live entries (it may still have sealed ones).
    pub fn is_empty(&self) -> bool {
        self.live_entries == 0
    }

    /// Number of entries that have been sealed since creation.
    pub fn sealed_len(&self) -> usize {
        self.sealed_entries
    }

    /// Storage statistics of the backing store.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Read-only access to the backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    fn read(&self, child: &ChildRef) -> Result<&Node, TrieError> {
        self.store.get(child.ptr).ok_or(TrieError::Sealed)
    }

    fn put_node(&mut self, node: Node) -> ChildRef {
        let hash = node.hash();
        ChildRef { ptr: self.store.put(node), hash }
    }

    /// Inserts `value` under `key`.
    ///
    /// Overwrites a live value; fails on a sealed one.
    ///
    /// # Errors
    ///
    /// * [`TrieError::EmptyKey`] / [`TrieError::EmptyValue`] on empty input.
    /// * [`TrieError::Sealed`] if `key` was sealed, or if reaching its slot
    ///   would require reading a sealed node.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), TrieError> {
        if key.is_empty() {
            return Err(TrieError::EmptyKey);
        }
        if value.is_empty() {
            return Err(TrieError::EmptyValue);
        }
        let path = Nibbles::from_key(&encode_key(key));
        let (new_root, inserted_new) =
            self.insert_at(self.root, path.as_slice(), Value::new(value.to_vec()))?;
        self.root = Some(new_root);
        if inserted_new {
            self.live_entries += 1;
        }
        Ok(())
    }

    fn insert_at(
        &mut self,
        node_ref: Option<ChildRef>,
        path: &[u8],
        value: Value,
    ) -> Result<(ChildRef, bool), TrieError> {
        let Some(current) = node_ref else {
            let leaf = Node::Leaf { path: Nibbles::from_nibbles(path.to_vec()), value };
            return Ok((self.put_node(leaf), true));
        };
        let node = self.read(&current)?.clone();
        match node {
            Node::Leaf { path: leaf_path, value: leaf_value } => {
                if leaf_path.as_slice() == path {
                    if leaf_value.is_sealed() {
                        return Err(TrieError::Sealed);
                    }
                    let new = self.put_node(Node::Leaf { path: leaf_path, value });
                    self.store.remove(current.ptr, false);
                    return Ok((new, false));
                }
                // Split: prefix-free keys guarantee divergence strictly
                // before either path ends.
                let cp = leaf_path.common_prefix_len(path);
                debug_assert!(cp < leaf_path.len() && cp < path.len());
                let mut children = EMPTY_CHILDREN;
                let old_slot = leaf_path.as_slice()[cp] as usize;
                let old_rest = leaf_path.slice(cp + 1, leaf_path.len());
                let old_is_sealed_at_max_depth = leaf_value.is_sealed() && old_rest.is_empty();
                let old_ref = self.put_node(Node::Leaf { path: old_rest, value: leaf_value });
                if old_is_sealed_at_max_depth {
                    // A sealed skeleton that ends up at maximal depth can
                    // never be split again — reclaim it now, keeping only
                    // its hash in the new branch.
                    self.store.remove(old_ref.ptr, true);
                }
                children[old_slot] = Some(old_ref);
                let new_slot = path[cp] as usize;
                let new_rest = Nibbles::from_nibbles(path[cp + 1..].to_vec());
                children[new_slot] = Some(self.put_node(Node::Leaf { path: new_rest, value }));
                let mut subtree = self.put_node(Node::Branch { children });
                if cp > 0 {
                    subtree = self
                        .put_node(Node::Extension { path: leaf_path.slice(0, cp), child: subtree });
                }
                self.store.remove(current.ptr, false);
                Ok((subtree, true))
            }
            Node::Branch { mut children } => {
                // Prefix-freedom: the path cannot end at a branch.
                debug_assert!(!path.is_empty());
                let slot = path[0] as usize;
                let (child, inserted_new) = self.insert_at(children[slot], &path[1..], value)?;
                children[slot] = Some(child);
                let new = self.put_node(Node::Branch { children });
                self.store.remove(current.ptr, false);
                Ok((new, inserted_new))
            }
            Node::Extension { path: ext_path, child } => {
                let cp = ext_path.common_prefix_len(path);
                if cp == ext_path.len() {
                    let (new_child, inserted_new) =
                        self.insert_at(Some(child), &path[cp..], value)?;
                    let new = self.put_node(Node::Extension { path: ext_path, child: new_child });
                    self.store.remove(current.ptr, false);
                    return Ok((new, inserted_new));
                }
                // Split the extension at the divergence point.
                debug_assert!(cp < path.len());
                let mut children = EMPTY_CHILDREN;
                let ext_slot = ext_path.as_slice()[cp] as usize;
                let ext_rest = ext_path.slice(cp + 1, ext_path.len());
                children[ext_slot] = Some(if ext_rest.is_empty() {
                    child
                } else {
                    self.put_node(Node::Extension { path: ext_rest, child })
                });
                let new_slot = path[cp] as usize;
                let new_rest = Nibbles::from_nibbles(path[cp + 1..].to_vec());
                children[new_slot] = Some(self.put_node(Node::Leaf { path: new_rest, value }));
                let mut subtree = self.put_node(Node::Branch { children });
                if cp > 0 {
                    subtree = self
                        .put_node(Node::Extension { path: ext_path.slice(0, cp), child: subtree });
                }
                self.store.remove(current.ptr, false);
                Ok((subtree, true))
            }
        }
    }

    /// Looks up the value stored under `key`.
    ///
    /// # Errors
    ///
    /// [`TrieError::Sealed`] if the key (or a node on its path) has been
    /// sealed — deliberately distinct from `Ok(None)`, which means the key
    /// was never stored.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, TrieError> {
        let encoded = encode_key(key);
        let path = Nibbles::from_key(&encoded);
        let mut remaining = path.as_slice();
        let Some(mut current) = self.root else {
            return Ok(None);
        };
        loop {
            let node = self.read(&current)?;
            match node {
                Node::Leaf { path: leaf_path, value } => {
                    if leaf_path.as_slice() == remaining {
                        return match &value.data {
                            Some(data) => Ok(Some(data.clone())),
                            None => Err(TrieError::Sealed),
                        };
                    }
                    return Ok(None);
                }
                Node::Branch { children } => {
                    if remaining.is_empty() {
                        return Ok(None);
                    }
                    match children[remaining[0] as usize] {
                        Some(child) => {
                            current = child;
                            remaining = &remaining[1..];
                        }
                        None => return Ok(None),
                    }
                }
                Node::Extension { path: ext_path, child } => {
                    if remaining.len() >= ext_path.len()
                        && &remaining[..ext_path.len()] == ext_path.as_slice()
                    {
                        let skip = ext_path.len();
                        current = *child;
                        remaining = &remaining[skip..];
                    } else {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Reports whether `key` is absent, live or sealed without copying the
    /// value bytes out.
    pub fn state(&self, key: &[u8]) -> EntryState {
        match self.get(key) {
            Ok(Some(_)) => EntryState::Live,
            Ok(None) => EntryState::Absent,
            Err(_) => EntryState::Sealed,
        }
    }

    /// Removes `key`, returning its value.
    ///
    /// # Errors
    ///
    /// [`TrieError::Sealed`] if the key or a node on its path is sealed —
    /// sealed entries are permanent by design.
    pub fn remove(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, TrieError> {
        if key.is_empty() {
            return Err(TrieError::EmptyKey);
        }
        let path = Nibbles::from_key(&encode_key(key));
        let Some(root) = self.root else { return Ok(None) };
        let (new_root, removed) = self.remove_at(root, path.as_slice())?;
        if removed.is_some() {
            self.root = new_root;
            self.live_entries -= 1;
        }
        Ok(removed)
    }

    #[allow(clippy::type_complexity)]
    fn remove_at(
        &mut self,
        current: ChildRef,
        path: &[u8],
    ) -> Result<(Option<ChildRef>, Option<Vec<u8>>), TrieError> {
        let node = self.read(&current)?.clone();
        match node {
            Node::Leaf { path: leaf_path, value } => {
                if leaf_path.as_slice() != path {
                    return Ok((Some(current), None));
                }
                let Some(data) = value.data else {
                    return Err(TrieError::Sealed);
                };
                self.store.remove(current.ptr, false);
                Ok((None, Some(data)))
            }
            Node::Branch { mut children } => {
                if path.is_empty() {
                    return Ok((Some(current), None));
                }
                let slot = path[0] as usize;
                let Some(child) = children[slot] else {
                    return Ok((Some(current), None));
                };
                let (new_child, removed) = self.remove_at(child, &path[1..])?;
                if removed.is_none() {
                    return Ok((Some(current), None));
                }
                children[slot] = new_child;
                let live: Vec<usize> = (0..16).filter(|i| children[*i].is_some()).collect();
                let replacement = match live.as_slice() {
                    [] => None,
                    [only] => {
                        Some(self.collapse_branch(*only as u8, children[*only].expect("live slot")))
                    }
                    _ => Some(self.put_node(Node::Branch { children })),
                };
                self.store.remove(current.ptr, false);
                Ok((replacement, removed))
            }
            Node::Extension { path: ext_path, child } => {
                if path.len() < ext_path.len() || &path[..ext_path.len()] != ext_path.as_slice() {
                    return Ok((Some(current), None));
                }
                let (new_child, removed) = self.remove_at(child, &path[ext_path.len()..])?;
                if removed.is_none() {
                    return Ok((Some(current), None));
                }
                let replacement =
                    new_child.map(|child_ref| self.merge_extension(ext_path, child_ref));
                self.store.remove(current.ptr, false);
                Ok((replacement, removed))
            }
        }
    }

    /// Collapses a branch left with a single child into the canonical form.
    ///
    /// If the child is sealed (unreadable) the branch is kept as-is with one
    /// slot: still a valid trie, just not fully compressed.
    fn collapse_branch(&mut self, slot: u8, child_ref: ChildRef) -> ChildRef {
        let Some(child) = self.store.get(child_ref.ptr).cloned() else {
            // Child is sealed; keep a one-slot branch.
            let mut children = EMPTY_CHILDREN;
            children[slot as usize] = Some(child_ref);
            return self.put_node(Node::Branch { children });
        };
        match child {
            Node::Leaf { path, value } => {
                let mut merged = Nibbles::from_nibbles(vec![slot]);
                merged.extend_from(&path);
                self.store.remove(child_ref.ptr, false);
                self.put_node(Node::Leaf { path: merged, value })
            }
            Node::Extension { path, child } => {
                let mut merged = Nibbles::from_nibbles(vec![slot]);
                merged.extend_from(&path);
                self.store.remove(child_ref.ptr, false);
                self.put_node(Node::Extension { path: merged, child })
            }
            Node::Branch { .. } => self.put_node(Node::Extension {
                path: Nibbles::from_nibbles(vec![slot]),
                child: child_ref,
            }),
        }
    }

    /// Re-links an extension to a (possibly replaced) child, merging chains
    /// of extensions and absorbing leaves.
    fn merge_extension(&mut self, ext_path: Nibbles, child_ref: ChildRef) -> ChildRef {
        let Some(child) = self.store.get(child_ref.ptr).cloned() else {
            // Sealed child: keep the extension pointing at it.
            return self.put_node(Node::Extension { path: ext_path, child: child_ref });
        };
        match child {
            Node::Leaf { path, value } => {
                let mut merged = ext_path;
                merged.extend_from(&path);
                self.store.remove(child_ref.ptr, false);
                self.put_node(Node::Leaf { path: merged, value })
            }
            Node::Extension { path, child } => {
                let mut merged = ext_path;
                merged.extend_from(&path);
                self.store.remove(child_ref.ptr, false);
                self.put_node(Node::Extension { path: merged, child })
            }
            Node::Branch { .. } => {
                self.put_node(Node::Extension { path: ext_path, child: child_ref })
            }
        }
    }

    /// Seals `key`: the entry becomes permanently unreadable and its storage
    /// is reclaimed, **without changing the root hash**.
    ///
    /// Reclamation is as aggressive as soundness allows:
    ///
    /// * the value bytes are always dropped;
    /// * a leaf at maximal depth (empty remaining path — nothing can ever
    ///   diverge *inside* it) is removed from storage entirely;
    /// * a branch whose 16 slots are all occupied by reclaimed children is
    ///   removed too (no future key can need it), cascading upward.
    ///
    /// A leaf sealed while it still has a remaining path keeps a small
    /// *skeleton* (path + value hash, no data) so that future keys can still
    /// split around it. With dense fixed-width keys — the guest contract
    /// keys packets by `(channel, big-endian sequence)` — completed 16-blocks
    /// collapse and storage reclaims fully, which is the paper's §III-A
    /// claim that state depends only on packets in flight.
    ///
    /// # Errors
    ///
    /// * [`TrieError::NotFound`] if `key` is not a live entry.
    /// * [`TrieError::Sealed`] if it is already sealed.
    pub fn seal(&mut self, key: &[u8]) -> Result<(), TrieError> {
        if key.is_empty() {
            return Err(TrieError::EmptyKey);
        }
        let path = Nibbles::from_key(&encode_key(key));
        let Some(root) = self.root else {
            return Err(TrieError::NotFound);
        };

        // Walk down, recording the spine (ancestors of the leaf).
        let mut spine: Vec<(ChildRef, Node)> = Vec::new();
        let mut current = root;
        let mut remaining = path.as_slice();
        let leaf_ref = loop {
            let node = self.read(&current)?.clone();
            match &node {
                Node::Leaf { path: leaf_path, value } => {
                    if leaf_path.as_slice() != remaining {
                        return Err(TrieError::NotFound);
                    }
                    if value.is_sealed() {
                        return Err(TrieError::Sealed);
                    }
                    break current;
                }
                Node::Branch { children } => {
                    let Some(&slot) = remaining.first() else {
                        return Err(TrieError::NotFound);
                    };
                    let Some(child) = children[slot as usize] else {
                        return Err(TrieError::NotFound);
                    };
                    spine.push((current, node.clone()));
                    current = child;
                    remaining = &remaining[1..];
                }
                Node::Extension { path: ext_path, child } => {
                    if remaining.len() < ext_path.len()
                        || &remaining[..ext_path.len()] != ext_path.as_slice()
                    {
                        return Err(TrieError::NotFound);
                    }
                    let child = *child;
                    let skip = ext_path.len();
                    spine.push((current, node.clone()));
                    current = child;
                    remaining = &remaining[skip..];
                }
            }
        };

        // Reclaim. A max-depth leaf (empty path) is removed outright and
        // the removal cascades through *full* branches; a leaf that could
        // still be split keeps a data-less skeleton.
        let leaf_node = self.read(&leaf_ref)?.clone();
        let Node::Leaf { path: leaf_path, mut value } = leaf_node else {
            unreachable!("walk terminates at a leaf");
        };
        if leaf_path.is_empty() {
            self.store.remove(leaf_ref.ptr, true);
            for (ancestor_ref, ancestor) in spine.into_iter().rev() {
                let reclaimable = match &ancestor {
                    // Only a branch with all 16 slots occupied can never be
                    // needed again once every child is reclaimed: no new
                    // slot can appear and no child can be split.
                    Node::Branch { children } => children
                        .iter()
                        .all(|child| child.is_some_and(|c| self.store.get(c.ptr).is_none())),
                    // Extensions stay: a future key may diverge inside their
                    // compressed path, which requires reading it.
                    Node::Extension { .. } => false,
                    Node::Leaf { .. } => unreachable!("leaves are never on the spine"),
                };
                if !reclaimable {
                    break;
                }
                self.store.remove(ancestor_ref.ptr, true);
            }
        } else {
            value.seal();
            self.store.replace(leaf_ref.ptr, Node::Leaf { path: leaf_path, value });
        }

        self.live_entries -= 1;
        self.sealed_entries += 1;
        Ok(())
    }

    /// Produces a proof of membership or non-membership for `key`, checkable
    /// against [`Self::root_hash`] with no store access.
    ///
    /// # Errors
    ///
    /// [`TrieError::Sealed`] if building the proof would need to read a
    /// sealed node. (Proving a *sealed* key is impossible by design — the
    /// data backing the proof has been reclaimed.)
    pub fn prove(&self, key: &[u8]) -> Result<Proof, TrieError> {
        let encoded = encode_key(key);
        let path = Nibbles::from_key(&encoded);
        let mut nodes = Vec::new();
        let mut remaining = path.as_slice();
        let Some(mut current) = self.root else {
            // Empty trie: the empty proof shows non-membership.
            return Ok(Proof::new(nodes));
        };
        loop {
            let node = self.read(&current)?;
            nodes.push(ProofNode::from_node(node));
            match node {
                Node::Leaf { .. } => return Ok(Proof::new(nodes)),
                Node::Branch { children } => {
                    let Some(&slot) = remaining.first() else {
                        return Ok(Proof::new(nodes));
                    };
                    match children[slot as usize] {
                        Some(child) => {
                            current = child;
                            remaining = &remaining[1..];
                        }
                        None => return Ok(Proof::new(nodes)),
                    }
                }
                Node::Extension { path: ext_path, child } => {
                    if remaining.len() >= ext_path.len()
                        && &remaining[..ext_path.len()] == ext_path.as_slice()
                    {
                        let skip = ext_path.len();
                        current = *child;
                        remaining = &remaining[skip..];
                    } else {
                        return Ok(Proof::new(nodes));
                    }
                }
            }
        }
    }

    /// Audits the structural integrity of the whole trie: every resident
    /// node's recomputed hash must match the hash its parent holds, value
    /// hashes must match value bytes, and extension paths must be
    /// non-empty. Returns the number of resident nodes visited.
    ///
    /// Intended for tests, fuzzing and operational debugging (a corrupted
    /// store would otherwise surface as baffling proof failures).
    ///
    /// # Errors
    ///
    /// [`TrieError::MissingNode`]-style corruption is reported as
    /// `Err(hash)` of the offending expected commitment.
    pub fn verify_integrity(&self) -> Result<usize, Hash> {
        let Some(root) = self.root else { return Ok(0) };
        self.verify_node(root)
    }

    fn verify_node(&self, child: ChildRef) -> Result<usize, Hash> {
        let Some(node) = self.store.get(child.ptr) else {
            return Ok(0); // Sealed: the commitment lives only in the parent.
        };
        if node.hash() != child.hash {
            return Err(child.hash);
        }
        let mut visited = 1;
        match node {
            Node::Leaf { value, .. } => {
                if let Some(data) = &value.data {
                    if sim_crypto::sha256(data) != value.hash {
                        return Err(child.hash);
                    }
                }
            }
            Node::Branch { children } => {
                for grandchild in children.iter().flatten() {
                    visited += self.verify_node(*grandchild)?;
                }
            }
            Node::Extension { path, child: grandchild } => {
                if path.is_empty() {
                    return Err(child.hash);
                }
                visited += self.verify_node(*grandchild)?;
            }
        }
        Ok(visited)
    }

    /// Returns all live `(key, value)` entries in unspecified order.
    ///
    /// Sealed entries and subtrees are skipped.
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::with_capacity(self.live_entries);
        if let Some(root) = self.root {
            self.collect(root, Vec::new(), &mut out);
        }
        out
    }

    fn collect(&self, current: ChildRef, prefix: Vec<u8>, out: &mut Vec<(Vec<u8>, Vec<u8>)>) {
        let Some(node) = self.store.get(current.ptr) else {
            return; // Sealed subtree.
        };
        match node {
            Node::Leaf { path, value } => {
                if let Some(data) = &value.data {
                    let mut full = prefix;
                    full.extend_from_slice(path.as_slice());
                    let nibbles = Nibbles::from_nibbles(full);
                    if let Some(encoded) = nibbles.to_key_bytes() {
                        if let Some(key) = decode_key(&encoded) {
                            out.push((key, data.clone()));
                        }
                    }
                }
            }
            Node::Branch { children } => {
                for (slot, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        let mut next = prefix.clone();
                        next.push(slot as u8);
                        self.collect(*child, next, out);
                    }
                }
            }
            Node::Extension { path, child } => {
                let mut next = prefix;
                next.extend_from_slice(path.as_slice());
                self.collect(*child, next, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trie() {
        let trie = Trie::new();
        assert_eq!(trie.root_hash(), Hash::ZERO);
        assert!(trie.is_empty());
        assert_eq!(trie.get(b"missing").unwrap(), None);
    }

    #[test]
    fn insert_get_single() {
        let mut trie = Trie::new();
        trie.insert(b"key", b"value").unwrap();
        assert_eq!(trie.get(b"key").unwrap().unwrap(), b"value");
        assert_eq!(trie.len(), 1);
        assert_ne!(trie.root_hash(), Hash::ZERO);
    }

    #[test]
    fn overwrite_changes_root() {
        let mut trie = Trie::new();
        trie.insert(b"key", b"v1").unwrap();
        let r1 = trie.root_hash();
        trie.insert(b"key", b"v2").unwrap();
        assert_ne!(trie.root_hash(), r1);
        assert_eq!(trie.get(b"key").unwrap().unwrap(), b"v2");
        assert_eq!(trie.len(), 1);
    }

    #[test]
    fn many_keys_round_trip() {
        let mut trie = Trie::new();
        for i in 0u32..500 {
            let key = format!("key/{i:04}");
            let value = format!("value-{i}");
            trie.insert(key.as_bytes(), value.as_bytes()).unwrap();
        }
        assert_eq!(trie.len(), 500);
        for i in 0u32..500 {
            let key = format!("key/{i:04}");
            assert_eq!(trie.get(key.as_bytes()).unwrap().unwrap(), format!("value-{i}").as_bytes());
        }
        assert_eq!(trie.get(b"key/0500").unwrap(), None);
    }

    #[test]
    fn insertion_order_independent_root() {
        let keys: Vec<Vec<u8>> = (0..100u32).map(|i| format!("k{i}").into_bytes()).collect();
        let mut forward = Trie::new();
        for k in &keys {
            forward.insert(k, b"v").unwrap();
        }
        let mut backward = Trie::new();
        for k in keys.iter().rev() {
            backward.insert(k, b"v").unwrap();
        }
        assert_eq!(forward.root_hash(), backward.root_hash());
    }

    #[test]
    fn remove_restores_previous_root() {
        let mut trie = Trie::new();
        trie.insert(b"a", b"1").unwrap();
        let r1 = trie.root_hash();
        trie.insert(b"b", b"2").unwrap();
        assert_eq!(trie.remove(b"b").unwrap().unwrap(), b"2");
        assert_eq!(trie.root_hash(), r1);
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.remove(b"b").unwrap(), None);
    }

    #[test]
    fn remove_all_empties_store() {
        let mut trie = Trie::new();
        for i in 0..50u32 {
            trie.insert(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..50u32 {
            assert!(trie.remove(format!("key{i}").as_bytes()).unwrap().is_some());
        }
        assert!(trie.is_empty());
        assert!(trie.root.is_none());
        assert_eq!(trie.stats().node_count, 0, "store should be empty");
        assert_eq!(trie.stats().byte_count, 0);
    }

    #[test]
    fn seal_preserves_root_and_blocks_access() {
        let mut trie = Trie::new();
        trie.insert(b"a", b"1").unwrap();
        trie.insert(b"b", b"2").unwrap();
        let root = trie.root_hash();
        trie.seal(b"a").unwrap();
        assert_eq!(trie.root_hash(), root);
        assert_eq!(trie.get(b"a"), Err(TrieError::Sealed));
        assert_eq!(trie.insert(b"a", b"x"), Err(TrieError::Sealed));
        assert_eq!(trie.remove(b"a"), Err(TrieError::Sealed));
        assert_eq!(trie.seal(b"a"), Err(TrieError::Sealed));
        // The sibling is unaffected.
        assert_eq!(trie.get(b"b").unwrap().unwrap(), b"2");
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.sealed_len(), 1);
    }

    #[test]
    fn seal_missing_key_is_not_found() {
        let mut trie = Trie::new();
        trie.insert(b"a", b"1").unwrap();
        assert_eq!(trie.seal(b"zz"), Err(TrieError::NotFound));
        assert_eq!(trie.seal(b""), Err(TrieError::EmptyKey));
    }

    #[test]
    fn sealing_everything_reclaims_interior_nodes() {
        // Dense fixed-width keys (the guest contract's packet keying): a
        // complete 16-block of sealed leaves collapses its branch, and the
        // collapse cascades.
        let mut trie = Trie::new();
        for seq in 0..=255u64 {
            trie.insert(&seq.to_be_bytes(), b"commitment").unwrap();
        }
        let root = trie.root_hash();
        let full = trie.stats().byte_count;
        for seq in 0..=255u64 {
            trie.seal(&seq.to_be_bytes()).unwrap();
        }
        assert_eq!(trie.root_hash(), root, "sealing never moves the root");
        // Everything collapses except at most the root extension above the
        // fully dead region.
        assert!(
            trie.stats().node_count <= 1,
            "expected near-total reclamation, got {} nodes",
            trie.stats().node_count
        );
        assert!(trie.stats().byte_count < full / 10);
        assert_eq!(trie.len(), 0);
        assert_eq!(trie.sealed_len(), 256);
    }

    #[test]
    fn storage_stays_bounded_under_seal_churn() {
        // The paper's claim (§III-A): storage depends on packets in flight,
        // not on history. Alg. 1 keys packets by hash(packet), so seal-heavy
        // namespaces see uniformly distributed keys; we reproduce that usage
        // (plus a few permanently live entries, as the guest contract always
        // has: client states, channel ends, sequence counters).
        let mut trie = Trie::new();
        for i in 0..8u32 {
            trie.insert(format!("state/{i}").as_bytes(), b"live").unwrap();
        }
        let mut peak_live = 0;
        let mut seq = 0u64;
        for _round in 0..10u32 {
            let first = seq;
            for _ in 0..256 {
                trie.insert(&seq.to_be_bytes(), b"32-byte-commitment-placeholder!").unwrap();
                seq += 1;
            }
            peak_live = peak_live.max(trie.stats().byte_count);
            for s in first..seq {
                trie.seal(&s.to_be_bytes()).unwrap();
            }
        }
        let final_bytes = trie.stats().byte_count;
        // After sealing each round, the resident set must stay far below the
        // peak that held 256 live packets, despite 2560 packets of history.
        assert!(
            final_bytes * 5 < peak_live,
            "final {final_bytes} should be far below peak {peak_live}"
        );
        assert_eq!(trie.len(), 8);
        assert_eq!(trie.sealed_len(), 2560);
    }

    #[test]
    fn immediate_insert_seal_churn_reclaims_fully() {
        // The guest contract's receipt pattern: insert a receipt, seal it
        // right away, repeat with the next sequence number. Skeletons left
        // at intermediate depths must be reclaimed as the region densifies.
        let mut trie = Trie::new();
        for seq in 0..4096u64 {
            trie.insert(&seq.to_be_bytes(), b"receipt").unwrap();
            trie.seal(&seq.to_be_bytes()).unwrap();
        }
        let stats = trie.stats();
        // Only the right spine (a handful of partial branches/extensions)
        // may stay resident.
        assert!(stats.node_count < 24, "resident nodes: {}", stats.node_count);
        assert!(stats.byte_count < 2_000, "resident bytes: {}", stats.byte_count);
        assert_eq!(trie.sealed_len(), 4096);
    }

    #[test]
    fn get_does_not_mutate() {
        let mut trie = Trie::new();
        trie.insert(b"k", b"v").unwrap();
        let root = trie.root_hash();
        let _ = trie.get(b"k").unwrap();
        let _ = trie.get(b"other").unwrap();
        assert_eq!(trie.root_hash(), root);
    }

    #[test]
    fn entries_lists_live_only() {
        let mut trie = Trie::new();
        trie.insert(b"a", b"1").unwrap();
        trie.insert(b"b", b"2").unwrap();
        trie.insert(b"c", b"3").unwrap();
        trie.seal(b"b").unwrap();
        let mut entries = trie.entries();
        entries.sort();
        assert_eq!(entries, vec![(b"a".to_vec(), b"1".to_vec()), (b"c".to_vec(), b"3".to_vec())]);
    }

    #[test]
    fn empty_key_and_value_rejected() {
        let mut trie = Trie::new();
        assert_eq!(trie.insert(b"", b"v"), Err(TrieError::EmptyKey));
        assert_eq!(trie.insert(b"k", b""), Err(TrieError::EmptyValue));
        assert_eq!(trie.remove(b""), Err(TrieError::EmptyKey));
    }

    #[test]
    fn prefix_keys_coexist() {
        // The length-prefix encoding makes "ab" and "abc" diverge even
        // though one is a byte-prefix of the other.
        let mut trie = Trie::new();
        trie.insert(b"ab", b"short").unwrap();
        trie.insert(b"abc", b"long").unwrap();
        assert_eq!(trie.get(b"ab").unwrap().unwrap(), b"short");
        assert_eq!(trie.get(b"abc").unwrap().unwrap(), b"long");
        trie.seal(b"ab").unwrap();
        assert_eq!(trie.get(b"abc").unwrap().unwrap(), b"long");
    }

    #[test]
    fn binary_keys_supported() {
        let mut trie = Trie::new();
        let k1 = [0u8, 0, 1];
        let k2 = [0u8, 0, 1, 0];
        trie.insert(&k1, b"one").unwrap();
        trie.insert(&k2, b"two").unwrap();
        assert_eq!(trie.get(&k1).unwrap().unwrap(), b"one");
        assert_eq!(trie.get(&k2).unwrap().unwrap(), b"two");
    }

    #[test]
    fn identical_values_do_not_alias() {
        // Two keys with identical trailing paths and values used to share a
        // content-addressed node; sealing one must not affect the other.
        let mut trie = Trie::new();
        trie.insert(b"a-suffix", b"same").unwrap();
        trie.insert(b"b-suffix", b"same").unwrap();
        trie.seal(b"a-suffix").unwrap();
        assert_eq!(trie.get(b"b-suffix").unwrap().unwrap(), b"same");
    }

    #[test]
    fn removing_sibling_of_sealed_keeps_branch() {
        let mut trie = Trie::new();
        trie.insert(b"x1", b"one").unwrap();
        trie.insert(b"x2", b"two").unwrap();
        trie.insert(b"x3", b"three").unwrap();
        trie.seal(b"x1").unwrap();
        // Removing x2 leaves a branch whose only remaining child (x1) is
        // sealed: the branch cannot be collapsed but the trie stays valid.
        assert_eq!(trie.remove(b"x2").unwrap().unwrap(), b"two");
        assert_eq!(trie.get(b"x3").unwrap().unwrap(), b"three");
        assert_eq!(trie.get(b"x1"), Err(TrieError::Sealed));
    }

    #[test]
    fn state_reports_all_three_cases() {
        let mut trie = Trie::new();
        trie.insert(b"live", b"v").unwrap();
        trie.insert(b"gone", b"v").unwrap();
        trie.seal(b"gone").unwrap();
        assert_eq!(trie.state(b"live"), EntryState::Live);
        assert_eq!(trie.state(b"gone"), EntryState::Sealed);
        assert_eq!(trie.state(b"nope"), EntryState::Absent);
    }

    #[test]
    fn serde_snapshot_round_trip_preserves_everything() {
        // Persistence: a trie with live, removed and sealed entries must
        // survive serialization — roots, reads, seals and proofs intact.
        let mut trie = Trie::new();
        for i in 0..64u64 {
            trie.insert(&i.to_be_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        for i in 0..16u64 {
            trie.seal(&i.to_be_bytes()).unwrap();
        }
        trie.remove(&63u64.to_be_bytes()).unwrap();

        let snapshot = serde_json::to_vec(&trie).unwrap();
        let restored: Trie = serde_json::from_slice(&snapshot).unwrap();

        assert_eq!(restored.root_hash(), trie.root_hash());
        assert_eq!(restored.len(), trie.len());
        assert_eq!(restored.sealed_len(), trie.sealed_len());
        assert_eq!(restored.get(&20u64.to_be_bytes()).unwrap().unwrap(), b"value-20");
        assert_eq!(restored.get(&5u64.to_be_bytes()), Err(TrieError::Sealed));
        assert_eq!(restored.get(&63u64.to_be_bytes()).unwrap(), None);
        let proof = restored.prove(&20u64.to_be_bytes()).unwrap();
        assert!(proof.verify_member(&trie.root_hash(), &20u64.to_be_bytes(), b"value-20"));

        // The restored trie keeps working: fresh inserts and seals.
        let mut restored = restored;
        restored.insert(&100u64.to_be_bytes(), b"after-restore").unwrap();
        restored.seal(&100u64.to_be_bytes()).unwrap();
    }

    #[test]
    fn integrity_holds_through_mutations_and_detects_corruption() {
        let mut trie = Trie::new();
        assert_eq!(trie.verify_integrity(), Ok(0));
        for i in 0..200u64 {
            trie.insert(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        for i in 0..50u64 {
            trie.seal(&i.to_be_bytes()).unwrap();
        }
        for i in 190..200u64 {
            trie.remove(&i.to_be_bytes()).unwrap();
        }
        let visited = trie.verify_integrity().unwrap();
        assert!(visited > 0);
        assert_eq!(visited, trie.stats().node_count, "every resident node checked");

        // Corrupt a resident node through the store: the auditor notices.
        let mut corrupted = trie.clone();
        let some_ptr = corrupted.store.iter().map(|(p, _)| p).max().unwrap();
        corrupted.store.replace(
            some_ptr,
            Node::Leaf {
                path: Nibbles::from_key(b"bogus"),
                value: Value::new(b"corruption".to_vec()),
            },
        );
        assert!(corrupted.verify_integrity().is_err());
    }

    #[test]
    fn key_encoding_is_prefix_free() {
        let keys: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"ab".to_vec(),
            vec![0; 127],
            vec![0; 128],
            vec![0; 129],
            vec![0x80; 5],
        ];
        for a in &keys {
            for b in &keys {
                if a == b {
                    continue;
                }
                let ea = encode_key(a);
                let eb = encode_key(b);
                assert!(!eb.starts_with(&ea), "{a:?} encoding is a prefix of {b:?} encoding");
            }
        }
    }
}
