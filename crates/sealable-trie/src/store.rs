//! Location-addressed node storage.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::node::Node;

/// Location of a node within a [`NodeStore`].
pub type Ptr = u64;

/// Storage statistics used by the paper's storage-cost experiment (§V-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Nodes currently resident.
    pub node_count: usize,
    /// Bytes currently resident (sum of [`Node::storage_size`]).
    pub byte_count: usize,
    /// Running count of nodes reclaimed by sealing.
    pub sealed_reclaimed: usize,
    /// High-water mark of `byte_count`.
    pub peak_bytes: usize,
}

/// A location-addressed store of trie nodes.
///
/// Nodes are addressed by [`Ptr`], not by content hash, mirroring the
/// paper's Solana implementation (an account holding an array of nodes).
/// A pointer whose node is missing is, by definition, *sealed*.
/// Implementations must report how much storage live nodes occupy so
/// experiments can account for host-chain rent.
pub trait NodeStore {
    /// Fetches a node, or `None` if absent (sealed or never stored).
    fn get(&self, ptr: Ptr) -> Option<&Node>;
    /// Stores `node` at a fresh location and returns it.
    fn put(&mut self, node: Node) -> Ptr;
    /// Removes the node at `ptr` (used for both rewrites and sealing;
    /// sealing passes `reclaim = true` so stats can distinguish).
    fn remove(&mut self, ptr: Ptr, reclaim: bool);
    /// Replaces the node at `ptr` in place, keeping the same location.
    ///
    /// Used when sealing turns a live leaf into a skeleton (same commitment
    /// hash, smaller footprint) without disturbing the parent's reference.
    fn replace(&mut self, ptr: Ptr, node: Node);
    /// Current statistics.
    fn stats(&self) -> StoreStats;
}

/// The default in-memory node store.
///
/// # Examples
///
/// ```
/// use sealable_trie::{MemStore, NodeStore};
/// use sealable_trie::node::{Node, Value};
/// use sealable_trie::Nibbles;
///
/// let mut store = MemStore::new();
/// let node = Node::Leaf { path: Nibbles::from_key(b"k"), value: Value::new(b"v".into()) };
/// let ptr = store.put(node.clone());
/// assert_eq!(store.get(ptr), Some(&node));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MemStore {
    nodes: HashMap<Ptr, Node>,
    next: Ptr,
    stats: StoreStats,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates over resident nodes (ptr, node).
    pub fn iter(&self) -> impl Iterator<Item = (Ptr, &Node)> {
        self.nodes.iter().map(|(p, n)| (*p, n))
    }
}

impl NodeStore for MemStore {
    fn get(&self, ptr: Ptr) -> Option<&Node> {
        self.nodes.get(&ptr)
    }

    fn put(&mut self, node: Node) -> Ptr {
        let ptr = self.next;
        self.next += 1;
        self.stats.node_count += 1;
        self.stats.byte_count += node.storage_size();
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.byte_count);
        self.nodes.insert(ptr, node);
        ptr
    }

    fn remove(&mut self, ptr: Ptr, reclaim: bool) {
        if let Some(node) = self.nodes.remove(&ptr) {
            self.stats.node_count -= 1;
            self.stats.byte_count -= node.storage_size();
            if reclaim {
                self.stats.sealed_reclaimed += 1;
            }
        }
    }

    fn replace(&mut self, ptr: Ptr, node: Node) {
        let new_size = node.storage_size();
        if let Some(slot) = self.nodes.get_mut(&ptr) {
            self.stats.byte_count -= slot.storage_size();
            self.stats.byte_count += new_size;
            self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.byte_count);
            *slot = node;
        }
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Value;
    use crate::Nibbles;

    fn leaf(key: &[u8], value: &[u8]) -> Node {
        Node::Leaf { path: Nibbles::from_key(key), value: Value::new(value.to_vec()) }
    }

    #[test]
    fn put_get_remove() {
        let mut store = MemStore::new();
        let node = leaf(b"a", b"1");
        let ptr = store.put(node.clone());
        assert_eq!(store.get(ptr), Some(&node));
        assert_eq!(store.stats().node_count, 1);
        store.remove(ptr, false);
        assert_eq!(store.get(ptr), None);
        assert_eq!(store.stats().node_count, 0);
        assert_eq!(store.stats().byte_count, 0);
    }

    #[test]
    fn identical_nodes_get_distinct_ptrs() {
        let mut store = MemStore::new();
        let p1 = store.put(leaf(b"a", b"1"));
        let p2 = store.put(leaf(b"a", b"1"));
        assert_ne!(p1, p2);
        assert_eq!(store.stats().node_count, 2);
        store.remove(p1, true);
        assert!(store.get(p1).is_none());
        assert!(store.get(p2).is_some(), "no aliasing between identical nodes");
    }

    #[test]
    fn reclaim_counts_sealed() {
        let mut store = MemStore::new();
        let ptr = store.put(leaf(b"a", b"1"));
        store.remove(ptr, true);
        assert_eq!(store.stats().sealed_reclaimed, 1);
    }

    #[test]
    fn remove_of_missing_ptr_is_noop() {
        let mut store = MemStore::new();
        store.remove(42, true);
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn peak_bytes_tracks_high_water() {
        let mut store = MemStore::new();
        let p1 = store.put(leaf(b"a", &[0; 100]));
        let peak = store.stats().peak_bytes;
        store.remove(p1, false);
        assert_eq!(store.stats().byte_count, 0);
        assert_eq!(store.stats().peak_bytes, peak);
    }
}
