//! Membership and non-membership proofs.
//!
//! A [`Proof`] is the spine of nodes from the root to the point where the
//! key's path either terminates (membership) or demonstrably diverges
//! (non-membership). Proof nodes carry value *hashes* only, never value
//! bytes, and hash identically to stored [`Node`]s, so a verifier needs
//! nothing but the 32-byte root commitment.

use serde::{Deserialize, Serialize};
use sim_crypto::{sha256, Hash, Sha256};

use crate::node::Node;
use crate::trie::encode_key;
use crate::Nibbles;

/// A node as it appears inside a proof: values reduced to their hashes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // branches carry 16 slots by design
pub enum ProofNode {
    /// Terminal node.
    Leaf {
        /// Remaining key nibbles below the parent.
        path: Nibbles,
        /// SHA-256 of the value bytes.
        value_hash: Hash,
    },
    /// 16-way fan-out.
    Branch {
        /// Child hashes (`None` = empty slot).
        children: [Option<Hash>; 16],
    },
    /// Path compression node.
    Extension {
        /// Compressed nibbles.
        path: Nibbles,
        /// The single child hash.
        child: Hash,
    },
}

impl ProofNode {
    /// Projects a stored node into its proof form (pointers dropped, value
    /// bytes reduced to hashes).
    pub fn from_node(node: &Node) -> Self {
        match node {
            Node::Leaf { path, value } => Self::Leaf { path: path.clone(), value_hash: value.hash },
            Node::Branch { children } => {
                let mut hashes = [None; 16];
                for (slot, child) in children.iter().enumerate() {
                    hashes[slot] = child.map(|c| c.hash);
                }
                Self::Branch { children: hashes }
            }
            Node::Extension { path, child } => {
                Self::Extension { path: path.clone(), child: child.hash }
            }
        }
    }

    /// The commitment hash — byte-for-byte identical to [`Node::hash`].
    pub fn hash(&self) -> Hash {
        let mut hasher = Sha256::new();
        match self {
            Self::Leaf { path, value_hash } => {
                hasher.update([0u8]);
                hasher.update(path.encode());
                hasher.update(value_hash);
            }
            Self::Branch { children } => {
                hasher.update([1u8]);
                for child in children {
                    hasher.update(child.unwrap_or(Hash::ZERO));
                }
            }
            Self::Extension { path, child } => {
                hasher.update([2u8]);
                hasher.update(path.encode());
                hasher.update(child);
            }
        }
        hasher.finalize()
    }

    /// Serialized size in bytes, used for transaction-size accounting in the
    /// host simulator.
    pub fn encoded_len(&self) -> usize {
        match self {
            Self::Leaf { path, .. } => 1 + 2 + path.len().div_ceil(2) + 32,
            Self::Branch { children } => 1 + 2 + children.iter().flatten().count() * 33,
            Self::Extension { path, .. } => 1 + 2 + path.len().div_ceil(2) + 32,
        }
    }
}

/// Result of verifying a [`Proof`] against a root commitment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The key is present and its value hashes to the contained digest.
    Member(Hash),
    /// The key is provably absent.
    NonMember,
    /// The proof is malformed or does not connect to the root.
    Invalid,
}

impl VerifyOutcome {
    /// `true` for [`VerifyOutcome::Member`].
    pub fn is_member(&self) -> bool {
        matches!(self, Self::Member(_))
    }

    /// `true` for [`VerifyOutcome::NonMember`].
    pub fn is_non_member(&self) -> bool {
        matches!(self, Self::NonMember)
    }
}

/// A proof of membership or non-membership for one key.
///
/// # Examples
///
/// ```
/// use sealable_trie::Trie;
///
/// let mut trie = Trie::new();
/// trie.insert(b"present", b"data")?;
/// let root = trie.root_hash();
///
/// let proof = trie.prove(b"present")?;
/// assert!(proof.verify_member(&root, b"present", b"data"));
///
/// let absent = trie.prove(b"absent")?;
/// assert!(absent.verify(&root, b"absent").is_non_member());
/// # Ok::<(), sealable_trie::TrieError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proof {
    nodes: Vec<ProofNode>,
}

impl Proof {
    /// Wraps a root-to-divergence spine of proof nodes.
    pub fn new(nodes: Vec<ProofNode>) -> Self {
        Self { nodes }
    }

    /// The spine nodes, root first.
    pub fn nodes(&self) -> &[ProofNode] {
        &self.nodes
    }

    /// Total serialized size in bytes (for transaction accounting).
    pub fn encoded_len(&self) -> usize {
        2 + self.nodes.iter().map(ProofNode::encoded_len).sum::<usize>()
    }

    /// Verifies this proof for `key` against `root`.
    ///
    /// Returns [`VerifyOutcome::Member`] with the proven value hash,
    /// [`VerifyOutcome::NonMember`] if the proof shows the key absent, or
    /// [`VerifyOutcome::Invalid`] if the proof doesn't check out.
    pub fn verify(&self, root: &Hash, key: &[u8]) -> VerifyOutcome {
        let encoded = encode_key(key);
        let path = Nibbles::from_key(&encoded);
        let mut remaining = path.as_slice();

        if root.is_zero() {
            // Empty trie: only the empty proof is valid and shows absence.
            return if self.nodes.is_empty() {
                VerifyOutcome::NonMember
            } else {
                VerifyOutcome::Invalid
            };
        }

        let mut expected = *root;
        let mut nodes = self.nodes.iter();
        loop {
            let Some(node) = nodes.next() else {
                return VerifyOutcome::Invalid; // Spine ended mid-descent.
            };
            if node.hash() != expected {
                return VerifyOutcome::Invalid;
            }
            match node {
                ProofNode::Leaf { path: leaf_path, value_hash } => {
                    let outcome = if leaf_path.as_slice() == remaining {
                        VerifyOutcome::Member(*value_hash)
                    } else {
                        VerifyOutcome::NonMember
                    };
                    return Self::finish(outcome, nodes.next().is_some());
                }
                ProofNode::Branch { children } => {
                    let Some(&slot) = remaining.first() else {
                        // Prefix-free keys never terminate at a branch; a
                        // proof claiming so is bogus.
                        return VerifyOutcome::Invalid;
                    };
                    match children[slot as usize] {
                        Some(child) => {
                            expected = child;
                            remaining = &remaining[1..];
                        }
                        None => {
                            return Self::finish(VerifyOutcome::NonMember, nodes.next().is_some());
                        }
                    }
                }
                ProofNode::Extension { path: ext_path, child } => {
                    if remaining.len() >= ext_path.len()
                        && &remaining[..ext_path.len()] == ext_path.as_slice()
                    {
                        expected = *child;
                        remaining = &remaining[ext_path.len()..];
                    } else {
                        return Self::finish(VerifyOutcome::NonMember, nodes.next().is_some());
                    }
                }
            }
        }
    }

    fn finish(outcome: VerifyOutcome, trailing_nodes: bool) -> VerifyOutcome {
        if trailing_nodes {
            VerifyOutcome::Invalid
        } else {
            outcome
        }
    }

    /// Convenience: verifies that `key ↦ value` is a member under `root`.
    pub fn verify_member(&self, root: &Hash, key: &[u8], value: &[u8]) -> bool {
        match self.verify(root, key) {
            VerifyOutcome::Member(hash) => hash == sha256(value),
            _ => false,
        }
    }

    /// Convenience: verifies that `key` is absent under `root`.
    pub fn verify_non_member(&self, root: &Hash, key: &[u8]) -> bool {
        self.verify(root, key).is_non_member()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Value;
    use crate::Trie;

    fn sample_trie() -> Trie {
        let mut trie = Trie::new();
        for i in 0..64u32 {
            trie.insert(format!("key/{i:02}").as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        trie
    }

    #[test]
    fn proof_node_hash_matches_node_hash() {
        let node = Node::Leaf { path: Nibbles::from_key(b"abc"), value: Value::new(b"v".to_vec()) };
        assert_eq!(ProofNode::from_node(&node).hash(), node.hash());

        let branch = Node::Branch {
            children: {
                let mut c = [None; 16];
                c[3] = Some(crate::node::ChildRef { ptr: 7, hash: sha256(b"x") });
                c
            },
        };
        assert_eq!(ProofNode::from_node(&branch).hash(), branch.hash());

        let ext = Node::Extension {
            path: Nibbles::from_key(b"p"),
            child: crate::node::ChildRef { ptr: 0, hash: sha256(b"c") },
        };
        assert_eq!(ProofNode::from_node(&ext).hash(), ext.hash());
    }

    #[test]
    fn membership_proofs_verify() {
        let trie = sample_trie();
        let root = trie.root_hash();
        for i in 0..64u32 {
            let key = format!("key/{i:02}");
            let proof = trie.prove(key.as_bytes()).unwrap();
            assert!(
                proof.verify_member(&root, key.as_bytes(), format!("val-{i}").as_bytes()),
                "key {key}"
            );
        }
    }

    #[test]
    fn non_membership_proofs_verify() {
        let trie = sample_trie();
        let root = trie.root_hash();
        for key in ["key/99", "other", "key/0", "key/000"] {
            let proof = trie.prove(key.as_bytes()).unwrap();
            assert!(proof.verify_non_member(&root, key.as_bytes()), "key {key}");
        }
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let trie = sample_trie();
        let proof = trie.prove(b"key/01").unwrap();
        let bogus_root = sha256(b"bogus");
        assert_eq!(proof.verify(&bogus_root, b"key/01"), VerifyOutcome::Invalid);
    }

    #[test]
    fn proof_rejects_wrong_key() {
        let trie = sample_trie();
        let root = trie.root_hash();
        let proof = trie.prove(b"key/01").unwrap();
        // Verifying the proof for a different key must not produce Member.
        assert!(!proof.verify(&root, b"key/02").is_member());
    }

    #[test]
    fn proof_rejects_wrong_value() {
        let trie = sample_trie();
        let root = trie.root_hash();
        let proof = trie.prove(b"key/01").unwrap();
        assert!(!proof.verify_member(&root, b"key/01", b"forged"));
    }

    #[test]
    fn proof_rejects_truncation_and_padding() {
        let trie = sample_trie();
        let root = trie.root_hash();
        let proof = trie.prove(b"key/01").unwrap();
        assert!(proof.nodes().len() > 1);

        let truncated = Proof::new(proof.nodes()[..proof.nodes().len() - 1].to_vec());
        assert_eq!(truncated.verify(&root, b"key/01"), VerifyOutcome::Invalid);

        let mut padded_nodes = proof.nodes().to_vec();
        padded_nodes.push(padded_nodes[0].clone());
        let padded = Proof::new(padded_nodes);
        assert_eq!(padded.verify(&root, b"key/01"), VerifyOutcome::Invalid);
    }

    #[test]
    fn empty_trie_non_membership() {
        let trie = Trie::new();
        let root = trie.root_hash();
        let proof = trie.prove(b"anything").unwrap();
        assert!(proof.verify_non_member(&root, b"anything"));
        // A non-empty proof against the zero root is invalid.
        let fake = Proof::new(vec![ProofNode::Leaf {
            path: Nibbles::from_key(b"anything"),
            value_hash: sha256(b"x"),
        }]);
        assert_eq!(fake.verify(&root, b"anything"), VerifyOutcome::Invalid);
    }

    #[test]
    fn single_entry_trie_proofs() {
        let mut trie = Trie::new();
        trie.insert(b"only", b"one").unwrap();
        let root = trie.root_hash();
        assert!(trie.prove(b"only").unwrap().verify_member(&root, b"only", b"one"));
        assert!(trie.prove(b"nope").unwrap().verify_non_member(&root, b"nope"));
    }

    #[test]
    fn proofs_still_work_next_to_sealed_entries() {
        let mut trie = sample_trie();
        let root = trie.root_hash();
        trie.seal(b"key/07").unwrap();
        // Sibling proofs remain constructible and valid against the same root
        // as long as their own path is resident.
        let proof = trie.prove(b"key/21").unwrap();
        assert!(proof.verify_member(&root, b"key/21", b"val-21"));
        // The sealed key itself can no longer be proven.
        assert_eq!(trie.prove(b"key/07"), Err(crate::TrieError::Sealed));
    }

    #[test]
    fn proof_encoded_len_is_positive_and_monotone() {
        let trie = sample_trie();
        let proof = trie.prove(b"key/33").unwrap();
        assert!(proof.encoded_len() > 32);
        let smaller = Proof::new(proof.nodes()[..1].to_vec());
        assert!(smaller.encoded_len() < proof.encoded_len());
    }
}
