//! Scoped wall-clock self-profiler with hierarchical phase attribution.
//!
//! The simulation is deterministic on the sim clock; wall-clock time is
//! the one thing it cannot see about itself. This crate measures it
//! without ever leaking it back in: a [`Profiler`] hands out RAII
//! [`Scope`] guards that time a named phase with [`std::time::Instant`]
//! and fold the elapsed wall time into a tree keyed by the scope nesting
//! at the call site. The tree aggregates — a scope entered a million
//! times is one node with a call count, not a million samples — so the
//! profiler's own footprint stays flat no matter how long the run is.
//!
//! Two rules keep the sim honest:
//!
//! 1. **Wall time never enters sim state.** Nothing in this crate is
//!    readable by the simulation mid-run except through [`Profiler::
//!    report`], which the harness only calls after the run ends; no
//!    scope duration ever influences a branch, a journal record or a
//!    metric. Same-seed runs produce byte-identical *sim* telemetry
//!    whether the profiler is on or off.
//! 2. **Disabled means no-op.** [`Profiler::disabled`] carries no
//!    allocation and [`Profiler::scope`] on it never calls
//!    `Instant::now()` — the cost of a scope in a disabled profiler is
//!    one `Option` check.
//!
//! A [`ProfileReport`] renders as a top-N hot-path table (ranked by
//! self time — time in a phase minus time in its instrumented children)
//! and as collapsed-stack lines (`a;b;c <micros>`), the text format
//! flamegraph tools ingest.
//!
//! # Examples
//!
//! ```
//! use profiler::Profiler;
//!
//! let profiler = Profiler::enabled();
//! {
//!     let _step = profiler.scope("step");
//!     let _inner = profiler.scope("host.block");
//!     // ... timed work ...
//! }
//! let report = profiler.report();
//! assert_eq!(report.entries[0].path, "step");
//! assert_eq!(report.entries[1].path, "step;host.block");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// One phase in the scope tree: total wall time across all entries,
/// entry count, and children keyed by name (deterministic order).
#[derive(Debug)]
struct Node {
    name: String,
    wall: Duration,
    calls: u64,
    children: BTreeMap<String, usize>,
}

impl Node {
    fn new(name: &str) -> Self {
        Self { name: name.to_string(), wall: Duration::ZERO, calls: 0, children: BTreeMap::new() }
    }
}

#[derive(Debug)]
struct Inner {
    /// Arena of nodes; index 0 is the synthetic root.
    nodes: Vec<Node>,
    /// Indices of currently-open scopes (root is always open).
    stack: Vec<usize>,
}

impl Inner {
    fn new() -> Self {
        Self { nodes: vec![Node::new("")], stack: vec![0] }
    }

    /// Child of the innermost open scope, created on first entry.
    fn enter(&mut self, name: &str) -> usize {
        let parent = *self.stack.last().expect("root scope always open");
        let index = match self.nodes[parent].children.get(name) {
            Some(&index) => index,
            None => {
                let index = self.nodes.len();
                self.nodes.push(Node::new(name));
                self.nodes[parent].children.insert(name.to_string(), index);
                index
            }
        };
        self.stack.push(index);
        index
    }

    fn exit(&mut self, index: usize, elapsed: Duration) {
        let node = &mut self.nodes[index];
        node.wall += elapsed;
        node.calls += 1;
        // Guards drop in LIFO order under normal RAII use; if a guard
        // outlives its parent (a bug at the call site), unwind past the
        // stale entries rather than corrupting the stack.
        while let Some(top) = self.stack.pop() {
            if top == index || self.stack.len() <= 1 {
                break;
            }
        }
        if self.stack.is_empty() {
            self.stack.push(0);
        }
    }
}

/// Handle to a wall-clock profile, cheap to clone and share within a
/// thread (the simulation is single-threaded, like [`telemetry`]'s
/// handle this one is `!Send` by construction).
///
/// [`telemetry`]: https://docs.rs/telemetry
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Profiler {
    /// A recording profiler.
    pub fn enabled() -> Self {
        Self { inner: Some(Rc::new(RefCell::new(Inner::new()))) }
    }

    /// A no-op profiler: scopes cost one `Option` check and never read
    /// the wall clock.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a named scope; wall time until the guard drops is
    /// attributed to `name` nested under the currently-open scopes.
    pub fn scope(&self, name: &str) -> Scope {
        match &self.inner {
            None => Scope { inner: None },
            Some(rc) => {
                let index = rc.borrow_mut().enter(name);
                Scope {
                    inner: Some(OpenScope {
                        profiler: Rc::clone(rc),
                        index,
                        started: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Snapshot the profile tree. Empty (zero total, no entries) for a
    /// disabled profiler.
    pub fn report(&self) -> ProfileReport {
        let Some(rc) = &self.inner else {
            return ProfileReport { total_ms: 0.0, entries: Vec::new() };
        };
        let inner = rc.borrow();
        let mut entries = Vec::new();
        let total: Duration = inner.nodes[0].children.values().map(|&i| inner.nodes[i].wall).sum();
        let total_ms = total.as_secs_f64() * 1_000.0;
        // Preorder walk, children in name order: parents precede
        // children, so depth/path reconstruction needs no lookups.
        let mut pending: Vec<(usize, usize, String)> =
            inner.nodes[0].children.values().rev().map(|&i| (i, 0usize, String::new())).collect();
        while let Some((index, depth, prefix)) = pending.pop() {
            let node = &inner.nodes[index];
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            let child_wall: Duration = node.children.values().map(|&i| inner.nodes[i].wall).sum();
            let wall_ms = node.wall.as_secs_f64() * 1_000.0;
            let self_ms = node.wall.saturating_sub(child_wall).as_secs_f64() * 1_000.0;
            entries.push(ProfileEntry {
                path: path.clone(),
                name: node.name.clone(),
                depth,
                wall_ms,
                self_ms,
                calls: node.calls,
                pct_of_total: if total_ms > 0.0 { wall_ms / total_ms * 100.0 } else { 0.0 },
            });
            for &child in node.children.values().rev() {
                pending.push((child, depth + 1, path.clone()));
            }
        }
        ProfileReport { total_ms, entries }
    }
}

/// Live state of an open [`Scope`].
#[derive(Debug)]
struct OpenScope {
    profiler: Rc<RefCell<Inner>>,
    index: usize,
    started: Instant,
}

/// RAII guard returned by [`Profiler::scope`]; dropping it closes the
/// scope and attributes the elapsed wall time.
#[derive(Debug)]
#[must_use = "a dropped scope records zero time"]
pub struct Scope {
    inner: Option<OpenScope>,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            let elapsed = open.started.elapsed();
            open.profiler.borrow_mut().exit(open.index, elapsed);
        }
    }
}

/// One phase in a [`ProfileReport`]: its place in the tree and its
/// aggregated wall-clock cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Semicolon-joined path from the top level (`step;host.block`).
    pub path: String,
    /// Leaf name of the phase.
    pub name: String,
    /// Nesting depth (top-level phases are 0).
    pub depth: usize,
    /// Total wall time in this phase, children included.
    pub wall_ms: f64,
    /// Wall time in this phase minus its instrumented children.
    pub self_ms: f64,
    /// How many times the scope was entered.
    pub calls: u64,
    /// `wall_ms` as a percentage of the profile total.
    pub pct_of_total: f64,
}

/// Aggregated profile tree in preorder, plus renderers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Sum of top-level phase wall times — the attributed wall clock.
    pub total_ms: f64,
    /// Every phase, preorder (parents before children, siblings in
    /// name order).
    pub entries: Vec<ProfileEntry>,
}

impl ProfileReport {
    /// Look up a phase by its semicolon-joined path.
    pub fn entry(&self, path: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// The `n` phases with the most self time, descending — where the
    /// wall clock actually goes, with pass-through parents excluded.
    pub fn hot_paths(&self, n: usize) -> Vec<&ProfileEntry> {
        let mut ranked: Vec<&ProfileEntry> = self.entries.iter().collect();
        ranked
            .sort_by(|a, b| b.self_ms.partial_cmp(&a.self_ms).unwrap_or(std::cmp::Ordering::Equal));
        ranked.truncate(n);
        ranked
    }

    /// Top-N hot-path table: rank, self ms, total ms, calls, % of
    /// total, path.
    pub fn render_table(&self, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>3}  {:>10} {:>10} {:>9} {:>6}  path",
            "#", "self ms", "total ms", "calls", "%"
        );
        for (rank, entry) in self.hot_paths(n).iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>3}  {:>10.2} {:>10.2} {:>9} {:>5.1}%  {}",
                rank + 1,
                entry.self_ms,
                entry.wall_ms,
                entry.calls,
                entry.pct_of_total,
                entry.path
            );
        }
        out
    }

    /// Full tree rendered with indentation, preorder.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<46} {:>10} {:>10} {:>9} {:>6}",
            "phase", "total ms", "self ms", "calls", "%"
        );
        for entry in &self.entries {
            let label = format!("{}{}", "  ".repeat(entry.depth), entry.name);
            let _ = writeln!(
                out,
                "{label:<46} {:>10.2} {:>10.2} {:>9} {:>5.1}%",
                entry.wall_ms, entry.self_ms, entry.calls, entry.pct_of_total
            );
        }
        out
    }

    /// Collapsed-stack lines (`a;b;c <micros>`), one per phase, value =
    /// self time in integer microseconds — the flamegraph text format.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let micros = (entry.self_ms * 1_000.0).round() as u64;
            let _ = writeln!(out, "{} {micros}", entry.path);
        }
        out
    }

    /// Serialize to pretty JSON (the `BENCH_profile.json` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile report serializes")
    }

    /// Parse a report produced by [`ProfileReport::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(duration: Duration) {
        let started = Instant::now();
        while started.elapsed() < duration {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_profiler_is_a_no_op() {
        let profiler = Profiler::disabled();
        assert!(!profiler.is_enabled());
        {
            let _a = profiler.scope("a");
            let _b = profiler.scope("b");
        }
        let report = profiler.report();
        assert_eq!(report.total_ms, 0.0);
        assert!(report.entries.is_empty());
    }

    #[test]
    fn nesting_builds_paths_and_counts_calls() {
        let profiler = Profiler::enabled();
        for _ in 0..3 {
            let _step = profiler.scope("step");
            {
                let _host = profiler.scope("host.block");
                let _drain = profiler.scope("mempool.drain");
            }
            let _relayer = profiler.scope("relayer.tick");
        }
        let report = profiler.report();
        let paths: Vec<&str> = report.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["step", "step;host.block", "step;host.block;mempool.drain", "step;relayer.tick"]
        );
        for entry in &report.entries {
            assert_eq!(entry.calls, 3, "{}", entry.path);
        }
        let step = report.entry("step").unwrap();
        assert_eq!(step.depth, 0);
        assert_eq!(report.entry("step;host.block").unwrap().depth, 1);
        // Children are nested inside `step`, so the top-level phase is
        // the whole attributed total.
        assert!((report.total_ms - step.wall_ms).abs() < 1e-9);
    }

    #[test]
    fn self_time_excludes_instrumented_children() {
        let profiler = Profiler::enabled();
        {
            let _outer = profiler.scope("outer");
            spin(Duration::from_millis(4));
            {
                let _inner = profiler.scope("inner");
                spin(Duration::from_millis(8));
            }
        }
        let report = profiler.report();
        let outer = report.entry("outer").unwrap();
        let inner = report.entry("outer;inner").unwrap();
        assert!(outer.wall_ms >= inner.wall_ms);
        assert!(inner.wall_ms >= 7.0, "inner {:.2} ms", inner.wall_ms);
        assert!(
            (outer.self_ms + inner.wall_ms - outer.wall_ms).abs() < 0.5,
            "self {:.2} + child {:.2} != total {:.2}",
            outer.self_ms,
            inner.wall_ms,
            outer.wall_ms
        );
        // Hot-path ranking is by self time: the inner spin dominates.
        let hot = report.hot_paths(1);
        assert_eq!(hot[0].path, "outer;inner");
    }

    #[test]
    fn same_name_at_different_depths_is_distinct() {
        let profiler = Profiler::enabled();
        {
            let _a = profiler.scope("proof");
        }
        {
            let _b = profiler.scope("relayer");
            let _c = profiler.scope("proof");
        }
        let report = profiler.report();
        assert!(report.entry("proof").is_some());
        assert!(report.entry("relayer;proof").is_some());
    }

    #[test]
    fn report_round_trips_through_json() {
        let profiler = Profiler::enabled();
        {
            let _a = profiler.scope("alpha");
            let _b = profiler.scope("beta");
        }
        let report = profiler.report();
        let parsed = ProfileReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.entries.len(), report.entries.len());
        assert_eq!(parsed.entries[1].path, "alpha;beta");
        assert_eq!(parsed.total_ms, report.total_ms);
    }

    #[test]
    fn renderers_cover_every_phase() {
        let profiler = Profiler::enabled();
        {
            let _a = profiler.scope("render.me");
            let _b = profiler.scope("child");
        }
        let report = profiler.report();
        let table = report.render_table(10);
        assert!(table.contains("render.me;child"));
        let stacks = report.collapsed_stacks();
        assert_eq!(stacks.lines().count(), 2);
        assert!(stacks.lines().all(|l| l.rsplit_once(' ').is_some()));
        let tree = report.render_tree();
        assert!(tree.contains("  child"));
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let profiler = Profiler::enabled();
        let outer = profiler.scope("outer");
        let inner = profiler.scope("inner");
        drop(outer); // wrong order: outer first
        drop(inner);
        let _next = profiler.scope("next");
        drop(_next);
        let report = profiler.report();
        // `next` lands at the top level, not under a stale parent.
        assert!(report.entry("next").is_some());
    }
}
