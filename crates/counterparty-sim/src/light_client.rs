//! The light client of the counterparty chain (runs inside the guest).

use std::collections::BTreeMap;

use ibc_core::client::ConsensusState;
use ibc_core::types::{Height, IbcError};
use ibc_core::LightClient;
use sim_crypto::schnorr::PublicKey;

use crate::header::CpHeader;

/// Tendermint-like light client: accepts a header once signatures holding
/// more than ⅔ of the known voting power endorse it.
#[derive(Debug)]
pub struct CpLightClient {
    validators: Vec<(PublicKey, u64)>,
    total_power: u64,
    latest: Height,
    consensus: BTreeMap<Height, ConsensusState>,
    frozen: bool,
}

impl CpLightClient {
    /// Creates a client trusting the given validator set.
    pub fn new(validators: Vec<(PublicKey, u64)>) -> Self {
        let total_power = validators.iter().map(|(_, p)| p).sum();
        Self { validators, total_power, latest: 0, consensus: BTreeMap::new(), frozen: false }
    }

    fn power_of(&self, key: &PublicKey) -> Option<u64> {
        self.validators.iter().find(|(k, _)| k == key).map(|(_, p)| *p)
    }

    fn verify_header(&self, header: &CpHeader) -> Result<(), IbcError> {
        let signing = header.own_signing_bytes();
        let mut power = 0u64;
        let mut seen: Vec<PublicKey> = Vec::new();
        for (pubkey, signature) in &header.signatures {
            if seen.contains(pubkey) {
                return Err(IbcError::ClientVerification("duplicate signer".into()));
            }
            seen.push(*pubkey);
            let Some(p) = self.power_of(pubkey) else {
                return Err(IbcError::ClientVerification("unknown validator".into()));
            };
            if !pubkey.verify(&signing, signature) {
                return Err(IbcError::ClientVerification("invalid commit signature".into()));
            }
            power += p;
        }
        if power * 3 <= self.total_power * 2 {
            return Err(IbcError::ClientVerification(format!(
                "commit power {power} is not more than 2/3 of {}",
                self.total_power
            )));
        }
        Ok(())
    }
}

impl LightClient for CpLightClient {
    fn client_type(&self) -> &'static str {
        "tendermint-sim"
    }

    fn latest_height(&self) -> Height {
        self.latest
    }

    fn consensus_state(&self, height: Height) -> Option<ConsensusState> {
        self.consensus.get(&height).copied()
    }

    fn update(&mut self, header: &[u8]) -> Result<Height, IbcError> {
        let header = CpHeader::decode(header)
            .ok_or_else(|| IbcError::ClientVerification("malformed header".into()))?;
        if header.height <= self.latest {
            return Err(IbcError::ClientVerification("non-monotonic height".into()));
        }
        self.verify_header(&header)?;
        self.latest = header.height;
        self.consensus.insert(
            header.height,
            ConsensusState { root: header.app_hash, timestamp_ms: header.timestamp_ms },
        );
        // Adopt an announced rotation: the new set signs from the next
        // height on. (The current quorum vouched for it — same trust model
        // as the guest's epoch handover.)
        if let Some(next) = header.next_validators {
            self.total_power = next.iter().map(|(_, p)| p).sum();
            self.validators = next;
        }
        Ok(self.latest)
    }

    fn verify_membership(
        &self,
        height: Height,
        key: &[u8],
        value: &[u8],
        proof: &[u8],
    ) -> Result<(), IbcError> {
        let state = self.consensus_state(height).ok_or_else(|| {
            IbcError::InvalidProof(format!("no consensus state at height {height}"))
        })?;
        let proof = ibc_core::store::decode_proof(proof)?;
        if proof.verify_member(&state.root, key, value) {
            Ok(())
        } else {
            Err(IbcError::InvalidProof("membership proof failed".into()))
        }
    }

    fn verify_non_membership(
        &self,
        height: Height,
        key: &[u8],
        proof: &[u8],
    ) -> Result<(), IbcError> {
        let state = self.consensus_state(height).ok_or_else(|| {
            IbcError::InvalidProof(format!("no consensus state at height {height}"))
        })?;
        let proof = ibc_core::store::decode_proof(proof)?;
        if proof.verify_non_member(&state.root, key) {
            Ok(())
        } else {
            Err(IbcError::InvalidProof("non-membership proof failed".into()))
        }
    }

    fn check_misbehaviour(&self, evidence: &[u8]) -> bool {
        // Evidence: two conflicting quorum-signed headers at one height.
        let Ok((a, b)) = serde_json::from_slice::<(CpHeader, CpHeader)>(evidence) else {
            return false;
        };
        a.height == b.height
            && (a.app_hash != b.app_hash || a.timestamp_ms != b.timestamp_ms)
            && self.verify_header(&a).is_ok()
            && self.verify_header(&b).is_ok()
    }

    fn is_frozen(&self) -> bool {
        self.frozen
    }

    fn freeze(&mut self) {
        self.frozen = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_crypto::schnorr::Keypair;
    use sim_crypto::sha256;

    fn setup(n: usize) -> (Vec<Keypair>, CpLightClient) {
        let keypairs: Vec<Keypair> = (0..n as u64).map(Keypair::from_seed).collect();
        let client = CpLightClient::new(keypairs.iter().map(|kp| (kp.public(), 10)).collect());
        (keypairs, client)
    }

    fn header(height: u64, root_seed: &[u8], signers: &[Keypair]) -> CpHeader {
        let app_hash = sha256(root_seed);
        let signing = CpHeader::signing_bytes(height, &app_hash, height * 100, None);
        CpHeader {
            height,
            app_hash,
            timestamp_ms: height * 100,
            next_validators: None,
            signatures: signers.iter().map(|kp| (kp.public(), kp.sign(&signing))).collect(),
        }
    }

    #[test]
    fn quorum_accepted_subquorum_rejected() {
        let (keypairs, mut client) = setup(9);
        // 7 of 9 (power 70/90) > 2/3: accepted.
        assert!(client.update(&header(1, b"a", &keypairs[..7]).encode()).is_ok());
        // Exactly 6 of 9 (power 60/90 = 2/3 exactly): rejected (must be >).
        assert!(client.update(&header(2, b"b", &keypairs[..6]).encode()).is_err());
        assert_eq!(client.latest_height(), 1);
    }

    #[test]
    fn unknown_signer_rejected() {
        let (mut keypairs, mut client) = setup(4);
        keypairs.push(Keypair::from_seed(1_000));
        assert!(client.update(&header(1, b"a", &keypairs).encode()).is_err());
    }

    #[test]
    fn rotation_is_adopted_and_binding() {
        let (keypairs, mut client) = setup(4);
        let new_set: Vec<Keypair> = (10..14).map(Keypair::from_seed).collect();
        let next: Vec<_> = new_set.iter().map(|kp| (kp.public(), 10)).collect();

        // Height 1 announces the rotation, signed by the OLD set.
        let app_hash = sha256(b"rot");
        let signing = CpHeader::signing_bytes(1, &app_hash, 100, Some(&next));
        let rotation_header = CpHeader {
            height: 1,
            app_hash,
            timestamp_ms: 100,
            next_validators: Some(next),
            signatures: keypairs.iter().map(|kp| (kp.public(), kp.sign(&signing))).collect(),
        };
        client.update(&rotation_header.encode()).unwrap();

        // The old set can no longer sign height 2…
        assert!(client.update(&header(2, b"x", &keypairs).encode()).is_err());
        // …but the new set can.
        assert!(client.update(&header(2, b"x", &new_set).encode()).is_ok());
    }

    #[test]
    fn tampered_rotation_rejected() {
        let (keypairs, mut client) = setup(4);
        let honest_next: Vec<_> =
            (10..14u64).map(|s| (Keypair::from_seed(s).public(), 10)).collect();
        let attacker: Vec<_> = (90..94u64).map(|s| (Keypair::from_seed(s).public(), 10)).collect();
        // Signatures cover the honest set; the header carries the
        // attacker's — must fail verification.
        let app_hash = sha256(b"rot");
        let signing = CpHeader::signing_bytes(1, &app_hash, 100, Some(&honest_next));
        let forged = CpHeader {
            height: 1,
            app_hash,
            timestamp_ms: 100,
            next_validators: Some(attacker),
            signatures: keypairs.iter().map(|kp| (kp.public(), kp.sign(&signing))).collect(),
        };
        assert!(client.update(&forged.encode()).is_err());
    }

    #[test]
    fn misbehaviour_on_conflicting_headers() {
        let (keypairs, client) = setup(4);
        let a = header(5, b"fork-a", &keypairs);
        let b = header(5, b"fork-b", &keypairs);
        let evidence = serde_json::to_vec(&(a.clone(), b)).unwrap();
        assert!(client.check_misbehaviour(&evidence));
        let benign = serde_json::to_vec(&(a.clone(), a)).unwrap();
        assert!(!client.check_misbehaviour(&benign));
    }
}
