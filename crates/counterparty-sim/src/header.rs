//! Counterparty block headers (Tendermint-style commits).

use serde::{Deserialize, Serialize};
use sim_crypto::schnorr::{PublicKey, Signature};
use sim_crypto::{Hash, Sha256};

/// A counterparty header: block metadata plus the validator commit.
///
/// This is the payload the relayer chunks into the guest chain when
/// updating the guest's light client of the counterparty.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpHeader {
    /// Block height.
    pub height: u64,
    /// Application state root (the IBC store's commitment).
    pub app_hash: Hash,
    /// Block timestamp.
    pub timestamp_ms: u64,
    /// The validator set taking over from the next block, when this block
    /// closes a counterparty epoch (Tendermint-style set rotation). The
    /// current set signs over its hash, so light clients can adopt it.
    #[serde(default)]
    pub next_validators: Option<Vec<(PublicKey, u64)>>,
    /// The commit: signatures from participating validators.
    pub signatures: Vec<(PublicKey, Signature)>,
}

impl CpHeader {
    /// The bytes each validator signs (binding the next validator set when
    /// one is announced).
    pub fn signing_bytes(
        height: u64,
        app_hash: &Hash,
        timestamp_ms: u64,
        next_validators: Option<&[(PublicKey, u64)]>,
    ) -> Vec<u8> {
        let mut hasher = Sha256::new();
        hasher.update(b"cp/commit");
        hasher.update(height.to_le_bytes());
        hasher.update(app_hash);
        hasher.update(timestamp_ms.to_le_bytes());
        match next_validators {
            Some(set) => {
                hasher.update([1u8]);
                hasher.update((set.len() as u64).to_le_bytes());
                for (pk, power) in set {
                    hasher.update(pk.to_bytes());
                    hasher.update(power.to_le_bytes());
                }
            }
            None => {
                hasher.update([0u8]);
            }
        }
        hasher.finalize().into_bytes().to_vec()
    }

    /// Convenience: the signing bytes of this header.
    pub fn own_signing_bytes(&self) -> Vec<u8> {
        Self::signing_bytes(
            self.height,
            &self.app_hash,
            self.timestamp_ms,
            self.next_validators.as_deref(),
        )
    }

    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("header serializes")
    }

    /// Parses the wire encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }

    /// Realistic wire size in bytes: fixed fields plus an Ed25519-sized
    /// (32 + 64 byte) entry per signature. Drives host transaction
    /// chunking, so it intentionally models the binary encoding a real
    /// deployment would use, not the JSON test encoding.
    pub fn wire_size(&self) -> usize {
        let rotation = self.next_validators.as_ref().map_or(0, |set| set.len() * 40);
        8 + 32 + 8 + 4 + rotation + self.signatures.len() * 96
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_crypto::schnorr::Keypair;
    use sim_crypto::sha256;

    #[test]
    fn encode_round_trip() {
        let kp = Keypair::from_seed(1);
        let root = sha256(b"app");
        let header = CpHeader {
            height: 10,
            app_hash: root,
            timestamp_ms: 123,
            next_validators: None,
            signatures: vec![(
                kp.public(),
                kp.sign(&CpHeader::signing_bytes(10, &root, 123, None)),
            )],
        };
        assert_eq!(CpHeader::decode(&header.encode()).unwrap(), header);
    }

    #[test]
    fn wire_size_grows_with_signatures() {
        let kp = Keypair::from_seed(1);
        let root = sha256(b"app");
        let sig = kp.sign(b"x");
        let mut header = CpHeader {
            height: 1,
            app_hash: root,
            timestamp_ms: 0,
            next_validators: None,
            signatures: vec![],
        };
        let empty = header.wire_size();
        header.signatures = vec![(kp.public(), sig); 50];
        assert_eq!(header.wire_size(), empty + 50 * 96);
    }
}
