//! A Picasso-like counterparty chain with native IBC support.
//!
//! The paper connects the guest blockchain (on Solana) to Picasso, a
//! Cosmos chain (§IV). This crate simulates that side: a chain with
//! instant finality, a Tendermint-style validator commit on every block,
//! and a full IBC stack over a plain Merkle store.
//!
//! What matters to the reproduction is the *size* of this chain's headers:
//! a commit carries one signature per participating validator, and the
//! whole header must be pushed through the guest's 1232-byte host
//! transactions — that is what makes light-client updates take ~36.5
//! transactions (Fig. 4) with the variance of Fig. 5.
//!
//! # Examples
//!
//! ```
//! use counterparty_sim::{CounterpartyChain, CounterpartyConfig, CpLightClient};
//! use ibc_core::LightClient;
//!
//! let mut chain = CounterpartyChain::new(CounterpartyConfig::default(), 7);
//! let mut client = CpLightClient::new(chain.validator_set());
//! let header = chain.produce_block(6_000).clone();
//! assert_eq!(client.update(&header.encode()).unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod header;
mod light_client;

pub use chain::{CounterpartyChain, CounterpartyConfig};
pub use header::CpHeader;
pub use light_client::CpLightClient;
