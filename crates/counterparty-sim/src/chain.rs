//! The counterparty chain itself.

use ibc_core::handler::{HandlerConfig, HostTime, IbcHandler};
use ibc_core::IbcEvent;
use profiler::Profiler;
use sealable_trie::Trie;
use sim_crypto::rng::SplitMix64;
use sim_crypto::schnorr::{Keypair, PublicKey};
use telemetry::{names, Telemetry};

use crate::header::CpHeader;

/// Counterparty chain parameters.
#[derive(Clone, Copy, Debug)]
pub struct CounterpartyConfig {
    /// Number of validators in the (fixed) set.
    pub num_validators: usize,
    /// Probability that a validator participates in a given commit —
    /// commits vary in size, which produces the light-client-update cost
    /// variance of Fig. 5.
    pub participation: f64,
    /// Block interval in milliseconds (Cosmos chains: ~6 s).
    pub block_interval_ms: u64,
    /// Rotate (reshuffle) the validator set every this many blocks
    /// (0 = never). Rotation headers are larger and must be relayed to the
    /// guest so its light client can follow the set.
    pub rotation_interval_blocks: u64,
}

impl Default for CounterpartyConfig {
    fn default() -> Self {
        Self {
            num_validators: 124,
            participation: 0.85,
            block_interval_ms: 6_000,
            rotation_interval_blocks: 0,
        }
    }
}

/// A simulated Cosmos-style chain with native IBC.
///
/// Unlike the host chain, this side has no relevant resource constraints
/// (§V evaluates only the guest's side of the costs), so relayers call the
/// IBC handler directly instead of submitting size-limited transactions.
pub struct CounterpartyChain {
    ibc: IbcHandler<Trie>,
    validators: Vec<Keypair>,
    /// The pool rotations draw from (a superset of the active set).
    candidate_pool: Vec<Keypair>,
    next_set: Option<Vec<Keypair>>,
    height: u64,
    time_ms: u64,
    config: CounterpartyConfig,
    rng: SplitMix64,
    headers: Vec<CpHeader>,
    telemetry: Telemetry,
    /// Wall-clock self-profiler (disabled by default; wall time never
    /// feeds back into simulation state).
    profiler: Profiler,
    /// Bounded `(height, trie)` history snapshotted at block production —
    /// the proof-at-height service a full node offers relayers. Proofs
    /// generated from live state stop verifying against a header's
    /// app-hash as soon as later transactions touch the proof path, which
    /// under sustained traffic is always.
    proof_snapshots: std::collections::VecDeque<(u64, Trie)>,
}

/// Snapshot history depth. Covers the gap between a guest-side client
/// update landing and the relayer proving packets at that height, even
/// when several counterparty blocks commit in between.
const PROOF_SNAPSHOT_HISTORY: usize = 32;

impl CounterpartyChain {
    /// Spins up a chain with `config.num_validators` deterministic
    /// validators.
    pub fn new(config: CounterpartyConfig, seed: u64) -> Self {
        // Wrapping: full 64-bit stream seeds are valid; for the small
        // seeds older callers passed this is the same arithmetic.
        let candidate_pool: Vec<Keypair> = (0..config.num_validators as u64 * 2)
            .map(|i| {
                Keypair::from_seed(
                    0xC0DE_0000u64.wrapping_add(seed.wrapping_mul(10_000)).wrapping_add(i),
                )
            })
            .collect();
        let validators = candidate_pool[..config.num_validators].to_vec();
        Self {
            candidate_pool,
            next_set: None,
            // Receipts stay live here: an ordinary chain does not seal.
            ibc: IbcHandler::with_config(
                Trie::new(),
                HandlerConfig { seal_receipts: false, consensus_history: 64 },
            ),
            validators,
            height: 0,
            time_ms: 0,
            config,
            rng: sim_crypto::rng::seed_stream(seed, "counterparty.blocks"),
            headers: Vec::new(),
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            proof_snapshots: std::collections::VecDeque::new(),
        }
    }

    /// Merkle proof of `key` as of block `height` — the proof-at-height
    /// query a full node answers for relayers. `None` when the height's
    /// snapshot has been evicted or the key cannot be proven there.
    pub fn prove_at(&self, height: u64, key: &[u8]) -> Option<sealable_trie::Proof> {
        let _prove = self.profiler.scope("cp.prove");
        let (_, trie) = self.proof_snapshots.iter().rev().find(|(h, _)| *h == height)?;
        trie.prove(key).ok()
    }

    /// Installs an observability sink. Counterparty-side packet lifecycle
    /// events join the same traces the guest side writes to, keyed by
    /// `(source_channel, sequence)`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Installs a wall-clock self-profiler. Scopes only measure wall
    /// time — the block clock, RNG streams and headers are untouched, so
    /// a profiled run stays byte-identical to a bare one.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The validator public keys and their (equal) voting powers, for
    /// initializing a [`crate::CpLightClient`] on the guest side.
    pub fn validator_set(&self) -> Vec<(PublicKey, u64)> {
        self.validators.iter().map(|kp| (kp.public(), 10)).collect()
    }

    /// The chain's IBC handler (the "node RPC" of the simulation).
    pub fn ibc(&self) -> &IbcHandler<Trie> {
        &self.ibc
    }

    /// Mutable IBC access for relayers and applications.
    pub fn ibc_mut(&mut self) -> &mut IbcHandler<Trie> {
        &mut self.ibc
    }

    /// Current height.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Current chain time.
    pub fn now_ms(&self) -> u64 {
        self.time_ms
    }

    /// The chain's view of "now" for packet-timeout checks.
    pub fn host_time(&self) -> HostTime {
        HostTime { height: self.height, timestamp_ms: self.time_ms }
    }

    /// The header committed at `height`, if produced.
    pub fn header_at(&self, height: u64) -> Option<&CpHeader> {
        self.headers.get(height.checked_sub(1)? as usize)
    }

    /// The most recent header.
    pub fn latest_header(&self) -> Option<&CpHeader> {
        self.headers.last()
    }

    /// Produces the next block at simulation time `now_ms`: commits the
    /// current IBC root with signatures from a random ≥⅔ subset of
    /// validators.
    pub fn produce_block(&mut self, now_ms: u64) -> &CpHeader {
        self.height += 1;
        self.time_ms = now_ms.max(self.time_ms + 1);
        let app_hash = self.ibc.root();
        {
            // Snapshot the state this header commits to for prove_at.
            let _snapshot = self.profiler.scope("cp.snapshot");
            self.proof_snapshots.push_back((self.height, self.ibc.store().clone()));
            while self.proof_snapshots.len() > PROOF_SNAPSHOT_HISTORY {
                self.proof_snapshots.pop_front();
            }
        }

        // Epoch boundary: announce a reshuffled validator set, signed by
        // the *current* set (Tendermint-style).
        let rotation = self.config.rotation_interval_blocks;
        let next_validators: Option<Vec<(PublicKey, u64)>> =
            if rotation > 0 && self.height.is_multiple_of(rotation) {
                let mut next = Vec::with_capacity(self.config.num_validators);
                let pool = self.candidate_pool.len();
                let start = self.rng.next_below(pool as u64) as usize;
                for i in 0..self.config.num_validators {
                    next.push(self.candidate_pool[(start + i) % pool].clone());
                }
                let set = next.iter().map(|kp| (kp.public(), 10)).collect();
                self.next_set = Some(next);
                Some(set)
            } else {
                None
            };
        let signing = CpHeader::signing_bytes(
            self.height,
            &app_hash,
            self.time_ms,
            next_validators.as_deref(),
        );

        // Sample participants. Per-block participation fluctuates around
        // the configured mean (±0.15), which varies commit sizes — the
        // source of the paper's Fig. 4 σ = 5.8 transactions and the Fig. 5
        // cost spread. Top up to a guaranteed quorum if the draw came up
        // short (Tendermint cannot commit without one).
        let block_participation =
            (self.config.participation + (self.rng.next_f64() - 0.5) * 0.50).clamp(0.0, 1.0);
        let mut participating: Vec<usize> = (0..self.validators.len())
            .filter(|_| self.rng.next_f64() < block_participation)
            .collect();
        let quorum = self.validators.len() * 2 / 3 + 1;
        let mut idx = 0;
        while participating.len() < quorum {
            if !participating.contains(&idx) {
                participating.push(idx);
            }
            idx += 1;
        }
        participating.sort_unstable();

        let signatures = {
            let _sign = self.profiler.scope("cp.sign");
            participating
                .into_iter()
                .map(|i| (self.validators[i].public(), self.validators[i].sign(&signing)))
                .collect()
        };
        let header = CpHeader {
            height: self.height,
            app_hash,
            timestamp_ms: self.time_ms,
            next_validators,
            signatures,
        };
        self.headers.push(header);
        // The announced set takes over from the next block.
        if let Some(next) = self.next_set.take() {
            self.validators = next;
        }
        if self.telemetry.is_recording() {
            // Per-block aggregates only — a multi-week run produces tens
            // of thousands of counterparty blocks.
            self.telemetry.counter_add("cp.blocks", 1);
            self.telemetry.gauge_set("cp.height", self.height as f64);
        }
        self.headers.last().expect("just pushed")
    }

    /// Drains pending IBC events (relayer polling).
    pub fn drain_events(&mut self) -> Vec<IbcEvent> {
        let events = self.ibc.drain_events();
        if self.telemetry.is_recording() {
            for event in &events {
                // Mirror of the guest's mapping: packets received or
                // ack-written here originated on the guest, the rest
                // originated on this chain.
                let (name, packet, origin) = match event {
                    IbcEvent::SendPacket { packet } => {
                        self.telemetry.counter_add("cp.packets.sent", 1);
                        (names::PACKET_SEND, packet, "cp")
                    }
                    IbcEvent::RecvPacket { packet } => (names::PACKET_RECV, packet, "guest"),
                    IbcEvent::WriteAcknowledgement { packet, ack } => {
                        // App-level rejection written on this chain: a
                        // distinct delivery outcome worth its own tally.
                        if !ack.is_success() {
                            self.telemetry.counter_add("cp.acks.error", 1);
                        }
                        (names::PACKET_ACK_WRITTEN, packet, "guest")
                    }
                    IbcEvent::AcknowledgePacket { packet } => {
                        self.telemetry.counter_add("cp.packets.acked", 1);
                        (names::PACKET_ACK, packet, "cp")
                    }
                    IbcEvent::TimeoutPacket { packet } => {
                        self.telemetry.counter_add("cp.packets.timed_out", 1);
                        (names::PACKET_TIMEOUT, packet, "cp")
                    }
                    _ => continue,
                };
                let trace = self.telemetry.trace_for_packet(
                    origin,
                    packet.source_channel.as_str(),
                    packet.sequence,
                );
                let traces: Vec<_> = trace.into_iter().collect();
                self.telemetry.event(
                    self.time_ms,
                    name,
                    &traces,
                    &[
                        ("chain", "cp".into()),
                        ("src_port", packet.source_port.as_str().into()),
                        ("src_channel", packet.source_channel.as_str().into()),
                        ("dst_channel", packet.destination_channel.as_str().into()),
                        ("sequence", packet.sequence.into()),
                        ("height", self.height.into()),
                    ],
                );
            }
        }
        events
    }
}

impl core::fmt::Debug for CounterpartyChain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CounterpartyChain")
            .field("height", &self.height)
            .field("validators", &self.validators.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpLightClient;
    use ibc_core::LightClient;

    #[test]
    fn produced_headers_verify_in_light_client() {
        let mut chain = CounterpartyChain::new(CounterpartyConfig::default(), 7);
        let mut client = CpLightClient::new(chain.validator_set());
        for i in 1..=5 {
            let header = chain.produce_block(i * 6_000).clone();
            assert_eq!(client.update(&header.encode()).unwrap(), i);
        }
        assert_eq!(client.latest_height(), 5);
    }

    #[test]
    fn commit_sizes_vary_but_always_reach_quorum() {
        let config = CounterpartyConfig {
            num_validators: 124,
            participation: 0.85,
            block_interval_ms: 6_000,
            rotation_interval_blocks: 0,
        };
        let mut chain = CounterpartyChain::new(config, 3);
        let mut sizes = Vec::new();
        for i in 1..=50 {
            let header = chain.produce_block(i * 6_000);
            assert!(header.signatures.len() * 3 > 124 * 2, "quorum every block");
            sizes.push(header.signatures.len());
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "participation varies commit sizes");
    }

    #[test]
    fn app_hash_tracks_ibc_state() {
        let mut chain = CounterpartyChain::new(CounterpartyConfig::default(), 1);
        let h1 = chain.produce_block(6_000).app_hash;
        ibc_core::ProvableStore::set(chain.ibc_mut().store_mut(), b"k", b"v").unwrap();
        let h2 = chain.produce_block(12_000).app_hash;
        assert_ne!(h1, h2);
    }

    #[test]
    fn rotation_headers_follow_in_the_light_client() {
        let config = CounterpartyConfig {
            num_validators: 12,
            participation: 1.0,
            block_interval_ms: 6_000,
            rotation_interval_blocks: 3,
        };
        let mut chain = CounterpartyChain::new(config, 5);
        let mut client = CpLightClient::new(chain.validator_set());
        // Cross several rotations; every header (including the epoch
        // boundaries) must verify in order.
        for i in 1..=10 {
            let header = chain.produce_block(i * 6_000).clone();
            if i % 3 == 0 {
                assert!(header.next_validators.is_some(), "block {i} rotates");
            }
            client.update(&header.encode()).unwrap();
        }
        assert_eq!(client.latest_height(), 10);
    }

    #[test]
    fn header_lookup_by_height() {
        let mut chain = CounterpartyChain::new(CounterpartyConfig::default(), 1);
        chain.produce_block(6_000);
        chain.produce_block(12_000);
        assert_eq!(chain.header_at(1).unwrap().height, 1);
        assert_eq!(chain.header_at(2).unwrap().height, 2);
        assert!(chain.header_at(0).is_none());
        assert!(chain.header_at(3).is_none());
        assert_eq!(chain.latest_header().unwrap().height, 2);
    }
}
