//! Workload determinism regression: the generated schedule must be a
//! pure function of `(config, seed)` for every arrival-curve shape, and
//! must survive a serde round trip of the configuration — scenario files
//! have to replay byte-identically.

use workload::{TrafficConfig, TrafficGenerator};

const HOUR_MS: u64 = 60 * 60 * 1_000;

/// Renders a schedule to one canonical string (what "byte-identical"
/// means for a schedule).
fn schedule_bytes(config: TrafficConfig, seed: u64, horizon_ms: u64) -> String {
    let mut generator = TrafficGenerator::new(config, seed);
    let mut out = String::new();
    for arrival in generator.schedule_until(horizon_ms) {
        out.push_str(&format!(
            "{}|{}|{:?}|{}|{}\n",
            arrival.at_ms, arrival.user, arrival.direction, arrival.amount, arrival.memo
        ));
    }
    out
}

fn shapes() -> Vec<(&'static str, TrafficConfig)> {
    TrafficConfig::bench_shapes(5_000, 3_000)
}

#[test]
fn same_seed_schedules_are_byte_identical_per_shape() {
    for (label, config) in shapes() {
        let first = schedule_bytes(config.clone(), 11, 3 * HOUR_MS);
        let second = schedule_bytes(config, 11, 3 * HOUR_MS);
        assert!(!first.is_empty(), "{label}: three hours of traffic must produce arrivals");
        assert_eq!(first, second, "{label}: same-seed schedules diverged");
    }
}

#[test]
fn different_seeds_diverge_per_shape() {
    for (label, config) in shapes() {
        let a = schedule_bytes(config.clone(), 1, HOUR_MS);
        let b = schedule_bytes(config, 2, HOUR_MS);
        assert_ne!(a, b, "{label}: the seed has no effect");
    }
}

#[test]
fn serde_round_trip_preserves_the_schedule() {
    for (label, config) in shapes() {
        let json = serde_json::to_string(&config).expect("traffic config serialises");
        let restored: TrafficConfig = serde_json::from_str(&json).expect("and deserialises");
        assert_eq!(config, restored, "{label}: config did not round-trip");
        assert_eq!(
            schedule_bytes(config, 7, HOUR_MS),
            schedule_bytes(restored, 7, HOUR_MS),
            "{label}: schedule changed across a serde round trip"
        );
    }
}

#[test]
fn population_balances_are_part_of_the_replay() {
    // Two same-seed generators must agree on post-run balances too — the
    // population is state the schedule depends on (amount clamping).
    let config = TrafficConfig::steady(50, 500);
    let mut a = TrafficGenerator::new(config.clone(), 21);
    let mut b = TrafficGenerator::new(config, 21);
    a.schedule_until(HOUR_MS);
    b.schedule_until(HOUR_MS);
    for user in 0..50 {
        assert_eq!(a.population().balance(user), b.population().balance(user));
        assert_eq!(a.population().name(user), b.population().name(user));
    }
}
