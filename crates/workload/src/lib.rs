//! Heavy-traffic workload engine.
//!
//! Every earlier bench drove the simulator with a Poisson trickle — a
//! handful of packets per simulated day. This crate models the traffic a
//! production deployment would actually face ("heavy traffic from
//! millions of users"): a seeded population of per-user accounts with
//! balances, non-homogeneous arrival curves (steady, diurnal, flash
//! crowd, airdrop storm), mixed packet sizes via memo padding and routed
//! memos, and sustained multi-week schedules — all serde-configurable and
//! a pure function of `(config, seed)`.
//!
//! Two halves:
//!
//! * [`TrafficGenerator`] turns a [`TrafficConfig`] into an endless,
//!   deterministic stream of [`Arrival`]s via Lewis thinning over the
//!   configured [`ArrivalCurve`].
//! * [`EventQueue`] is the discrete-event core the harnesses schedule
//!   against: a global binary heap of timed events with deterministic
//!   `(time, insertion sequence)` tie-breaking, so same-seed runs pop
//!   events in a byte-identical order.
//!
//! # Examples
//!
//! ```
//! use workload::{ArrivalCurve, TrafficConfig, TrafficGenerator};
//!
//! let config = TrafficConfig::steady(10_000, 2_000);
//! let mut generator = TrafficGenerator::new(config, 42);
//! let arrivals = generator.schedule_until(60_000);
//! assert!(!arrivals.is_empty());
//! // Same (config, seed) ⇒ byte-identical schedule.
//! let again = TrafficGenerator::new(TrafficConfig::steady(10_000, 2_000), 42)
//!     .schedule_until(60_000);
//! assert_eq!(arrivals, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod curve;
mod generator;
mod population;
mod queue;

pub use config::{AmountMix, AppKind, AppMix, MemoMix, TrafficConfig};
pub use curve::ArrivalCurve;
pub use generator::{Arrival, Direction, TrafficGenerator};
pub use population::UserPopulation;
pub use queue::EventQueue;
