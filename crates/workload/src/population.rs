//! The seeded user population: per-user accounts with balances.

use sim_crypto::rng::seed_stream;

/// A deterministic population of user accounts.
///
/// Account names are derived from the seed (so two runs agree on every
/// name without storing them), balances live in a dense vector — 16 bytes
/// per user, which is what lets a single simulation model hundreds of
/// thousands of distinct senders.
#[derive(Clone, Debug)]
pub struct UserPopulation {
    /// Per-user spendable balance, indexed by user id.
    balances: Vec<u128>,
    /// Name-derivation base, fixed by the seed.
    name_base: u64,
}

impl UserPopulation {
    /// Creates `users` accounts, each holding `initial_balance`.
    pub fn new(users: u32, initial_balance: u128, seed: u64) -> Self {
        let name_base = seed_stream(seed, "workload.population").next_u64();
        Self { balances: vec![initial_balance; users as usize], name_base }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.balances.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.balances.is_empty()
    }

    /// The ledger account name of user `id` — a pure function of the
    /// population seed, stable across runs and harnesses.
    pub fn name(&self, id: u32) -> String {
        // One extra SplitMix64 mix keyed by the id keeps names
        // unpredictable without a per-user RNG stream.
        let mut tag = sim_crypto::rng::SplitMix64::new(self.name_base ^ u64::from(id));
        format!("user-{id:06}-{:08x}", tag.next_u64() as u32)
    }

    /// User `id`'s current balance.
    pub fn balance(&self, id: u32) -> u128 {
        self.balances[id as usize]
    }

    /// Debits up to `amount` from user `id`, returning what was actually
    /// debited (the balance floor is 0; a broke user sends nothing).
    pub fn debit_up_to(&mut self, id: u32, amount: u128) -> u128 {
        let balance = &mut self.balances[id as usize];
        let debited = amount.min(*balance);
        *balance -= debited;
        debited
    }

    /// Credits `amount` to user `id` (delivery of an inbound transfer,
    /// or a refund).
    pub fn credit(&mut self, id: u32, amount: u128) {
        let balance = &mut self.balances[id as usize];
        *balance = balance.saturating_add(amount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let a = UserPopulation::new(100, 10, 7);
        let b = UserPopulation::new(100, 10, 7);
        assert_eq!(a.name(0), b.name(0));
        assert_eq!(a.name(99), b.name(99));
        assert_ne!(a.name(0), a.name(1));
        // A different seed renames everyone.
        let c = UserPopulation::new(100, 10, 8);
        assert_ne!(a.name(0), c.name(0));
    }

    #[test]
    fn debit_respects_balance_floor() {
        let mut pop = UserPopulation::new(2, 100, 1);
        assert_eq!(pop.debit_up_to(0, 60), 60);
        assert_eq!(pop.debit_up_to(0, 60), 40, "only the remainder is spendable");
        assert_eq!(pop.debit_up_to(0, 60), 0, "broke users send nothing");
        pop.credit(0, 25);
        assert_eq!(pop.balance(0), 25);
        assert_eq!(pop.balance(1), 100, "other users untouched");
    }
}
