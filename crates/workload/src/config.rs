//! Serde-configurable traffic parameters.

use serde::{Deserialize, Serialize};

use crate::curve::ArrivalCurve;

/// Hours → milliseconds (convenience for presets).
const HOUR_MS: u64 = 60 * 60 * 1_000;

/// How transfer amounts are drawn: log-uniform between `min` and `max`,
/// so a population mixes dust with whale-sized transfers like a real
/// ledger does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmountMix {
    /// Smallest transfer.
    pub min: u128,
    /// Largest transfer (clamped to the sender's balance at draw time).
    pub max: u128,
}

impl Default for AmountMix {
    fn default() -> Self {
        Self { min: 1, max: 10_000 }
    }
}

/// How memos — and therefore packet sizes — are mixed.
///
/// Packet size is what splits a delivery into 4–5 host transactions
/// (§V-A), so a workload that never varies memo length never exercises
/// the chunking path under load.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoMix {
    /// Fraction of transfers carrying router-style forward metadata.
    pub forward_fraction: f64,
    /// Longest multi-hop route encoded when forwarding (uniform 1..=n).
    pub max_route_hops: u32,
    /// Maximum extra payload padding in bytes (uniform 0..=n), modelling
    /// the long tail of memo sizes seen in main-net traffic.
    pub pad_max: u32,
}

impl Default for MemoMix {
    fn default() -> Self {
        Self { forward_fraction: 0.05, max_route_hops: 4, pad_max: 192 }
    }
}

/// Which IBC application an arrival exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppKind {
    /// ICS-20 fungible transfer (the default app).
    Transfer,
    /// ICS-721-style NFT transfer.
    Nft,
    /// ICS-27-style interchain-account batch.
    Ica,
}

/// How arrivals split across application ports: a fraction become NFT
/// transfers and a fraction interchain-account batches; the rest stay
/// ICS-20 fungible transfers. Both fractions default to zero, so
/// configurations written before the application stacks existed
/// generate byte-identical schedules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AppMix {
    /// Fraction of arrivals sent as NFT transfers.
    #[serde(default)]
    pub nft_fraction: f64,
    /// Fraction of arrivals sent as interchain-account batches.
    #[serde(default)]
    pub ica_fraction: f64,
}

impl AppMix {
    /// An even three-way split across the shipped applications.
    pub fn even() -> Self {
        Self { nft_fraction: 1.0 / 3.0, ica_fraction: 1.0 / 3.0 }
    }

    /// Whether any arrival leaves the plain-transfer path. Harnesses use
    /// this to skip the per-arrival app draw entirely for pure-transfer
    /// configs, keeping their RNG timelines untouched.
    pub fn is_mixed(&self) -> bool {
        self.nft_fraction > 0.0 || self.ica_fraction > 0.0
    }

    /// Classifies one uniform draw in `[0, 1)` into an application.
    pub fn classify(&self, draw: f64) -> AppKind {
        if draw < self.nft_fraction {
            AppKind::Nft
        } else if draw < self.nft_fraction + self.ica_fraction {
            AppKind::Ica
        } else {
            AppKind::Transfer
        }
    }
}

/// A complete traffic model: who sends (a seeded user population with
/// balances), how often (base rate shaped by an [`ArrivalCurve`]), in
/// which direction, and what the packets look like.
///
/// Pure data — the same `(TrafficConfig, seed)` pair always generates the
/// same schedule — and fully serde-round-trippable, so scenario files can
/// describe multi-week heavy-traffic campaigns declaratively.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Population size: distinct user accounts with balances.
    pub users: u32,
    /// Mean gap between arrivals (all users combined) at multiplier 1.
    pub mean_gap_ms: u64,
    /// Intensity shape over time (omitted ⇒ steady).
    #[serde(default)]
    pub curve: ArrivalCurve,
    /// Fraction of arrivals flowing counterparty→guest (the rest flow
    /// guest→counterparty).
    pub inbound_fraction: f64,
    /// Transfer amount distribution.
    #[serde(default)]
    pub amount: AmountMix,
    /// Memo/packet-size distribution.
    #[serde(default)]
    pub memo: MemoMix,
    /// Per-application traffic split (default: all plain transfers).
    #[serde(default)]
    pub apps: AppMix,
    /// Balance every user account starts with.
    pub initial_balance: u128,
}

/// Default counterparty→guest share: main-net bridges skew outbound.
const DEFAULT_INBOUND_FRACTION: f64 = 0.4;

/// Default per-user starting balance.
const DEFAULT_INITIAL_BALANCE: u128 = 1_000_000;

impl TrafficConfig {
    /// A steady (homogeneous Poisson) workload.
    pub fn steady(users: u32, mean_gap_ms: u64) -> Self {
        Self {
            users,
            mean_gap_ms,
            curve: ArrivalCurve::Steady,
            inbound_fraction: DEFAULT_INBOUND_FRACTION,
            amount: AmountMix::default(),
            memo: MemoMix::default(),
            apps: AppMix::default(),
            initial_balance: DEFAULT_INITIAL_BALANCE,
        }
    }

    /// Routes a share of arrivals through the NFT and interchain-account
    /// apps instead of plain transfers.
    #[must_use]
    pub fn with_app_mix(mut self, apps: AppMix) -> Self {
        self.apps = apps;
        self
    }

    /// A day/night cycle: 3× the base rate at the peak, 0.3× at night.
    pub fn diurnal(users: u32, mean_gap_ms: u64) -> Self {
        Self {
            curve: ArrivalCurve::Diurnal {
                peak: 3.0,
                trough: 0.3,
                period_ms: 24 * HOUR_MS,
                peak_at_ms: 14 * HOUR_MS,
            },
            ..Self::steady(users, mean_gap_ms)
        }
    }

    /// A flash crowd one simulated hour in: 20× spike over a 5-minute
    /// ramp, decaying over 20 minutes.
    pub fn flash_crowd(users: u32, mean_gap_ms: u64) -> Self {
        Self {
            curve: ArrivalCurve::FlashCrowd {
                at_ms: HOUR_MS,
                ramp_ms: 5 * 60 * 1_000,
                peak: 20.0,
                decay_ms: 20 * 60 * 1_000,
            },
            ..Self::steady(users, mean_gap_ms)
        }
    }

    /// An airdrop claim window one simulated hour in: 40× the base rate
    /// for 30 minutes, flat otherwise.
    pub fn airdrop_storm(users: u32, mean_gap_ms: u64) -> Self {
        Self {
            curve: ArrivalCurve::AirdropStorm {
                at_ms: HOUR_MS,
                duration_ms: 30 * 60 * 1_000,
                surge: 40.0,
            },
            ..Self::steady(users, mean_gap_ms)
        }
    }

    /// The workload's shape label (the curve's serde tag) — the key
    /// per-shape pre-aggregated metrics are named under.
    pub fn shape_label(&self) -> &'static str {
        self.curve.label()
    }

    /// The four canonical shapes the throughput bench sweeps, with their
    /// short labels.
    pub fn bench_shapes(users: u32, mean_gap_ms: u64) -> Vec<(&'static str, Self)> {
        vec![
            ("steady", Self::steady(users, mean_gap_ms)),
            ("diurnal", Self::diurnal(users, mean_gap_ms)),
            ("flash_crowd", Self::flash_crowd(users, mean_gap_ms)),
            ("airdrop_storm", Self::airdrop_storm(users, mean_gap_ms)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = TrafficConfig::steady(1_000, 2_000);
        assert_eq!(config.curve, ArrivalCurve::Steady);
        assert!(config.inbound_fraction > 0.0 && config.inbound_fraction < 1.0);
        assert!(config.amount.min <= config.amount.max);
    }

    #[test]
    fn bench_shapes_cover_all_curves() {
        let shapes = TrafficConfig::bench_shapes(100, 1_000);
        assert_eq!(shapes.len(), 4);
        let labels: Vec<_> = shapes.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["steady", "diurnal", "flash_crowd", "airdrop_storm"]);
    }
}
