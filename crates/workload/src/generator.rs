//! The traffic generator: a deterministic stream of arrivals sampled
//! from the configured non-homogeneous Poisson process.

use sim_crypto::rng::{seed_stream, SplitMix64};

use crate::config::TrafficConfig;
use crate::population::UserPopulation;

/// Which way a transfer flows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Guest → counterparty (a host-side user escrows native tokens).
    Outbound,
    /// Counterparty → guest (mints vouchers on the guest).
    Inbound,
}

/// One generated transfer.
#[derive(Clone, Debug, PartialEq)]
pub struct Arrival {
    /// When the user submits, in simulated ms.
    pub at_ms: u64,
    /// Sending user (index into the population).
    pub user: u32,
    /// Flow direction.
    pub direction: Direction,
    /// Transfer amount, already debited from the user's balance (0 when
    /// the user was broke — callers skip those).
    pub amount: u128,
    /// Memo payload (sizes the packet; may carry forward metadata).
    pub memo: String,
}

/// Generates [`Arrival`]s one at a time, in timestamp order, forever.
///
/// Sampling uses Lewis thinning: candidate gaps are drawn from the
/// homogeneous process at the curve's majorising rate, then accepted with
/// probability `multiplier(t) / max_multiplier`. Acceptance, user choice,
/// direction, amount and memo all come from one [`SplitMix64`] stream
/// derived from `(seed, "workload.traffic")`, so the schedule is a pure
/// function of `(config, seed)`.
#[derive(Clone, Debug)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    rng: SplitMix64,
    population: UserPopulation,
    clock_ms: u64,
    max_multiplier: f64,
    generated: u64,
}

impl TrafficGenerator {
    /// A generator starting at time 0.
    pub fn new(config: TrafficConfig, seed: u64) -> Self {
        let population = UserPopulation::new(config.users, config.initial_balance, seed);
        let max_multiplier = config.curve.max_multiplier().max(1e-9);
        Self {
            rng: seed_stream(seed, "workload.traffic"),
            population,
            clock_ms: 0,
            max_multiplier,
            generated: 0,
            config,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// The user population (balances reflect everything generated so far).
    pub fn population(&self) -> &UserPopulation {
        &self.population
    }

    /// Mutable population access (harnesses credit deliveries/refunds).
    pub fn population_mut(&mut self) -> &mut UserPopulation {
        &mut self.population
    }

    /// Arrivals generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Draws the next arrival. The clock only moves forward; successive
    /// calls return non-decreasing timestamps.
    pub fn next_arrival(&mut self) -> Arrival {
        // Thinning: candidates at the majorising rate, accepted by the
        // instantaneous multiplier.
        let candidate_mean = (self.config.mean_gap_ms as f64 / self.max_multiplier).max(1e-6);
        loop {
            let u = self.rng.next_f64().max(1e-12);
            let gap = (-candidate_mean * u.ln()) as u64 + 1;
            self.clock_ms += gap;
            let accept = self.config.curve.multiplier(self.clock_ms) / self.max_multiplier;
            if self.rng.next_f64() < accept {
                break;
            }
        }
        let user = self.rng.next_below(self.config.users.max(1) as u64) as u32;
        let direction = if self.rng.next_f64() < self.config.inbound_fraction {
            Direction::Inbound
        } else {
            Direction::Outbound
        };
        let amount = self.sample_amount(user);
        let memo = self.sample_memo();
        self.generated += 1;
        Arrival { at_ms: self.clock_ms, user, direction, amount, memo }
    }

    /// Every arrival up to and including `until_ms`, in order. The draw
    /// that crosses the horizon is discarded, so interleaving this with
    /// [`TrafficGenerator::next_arrival`] is not stream-stable — use one
    /// or the other per run.
    pub fn schedule_until(&mut self, until_ms: u64) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        loop {
            let arrival = self.next_arrival();
            if arrival.at_ms > until_ms {
                return arrivals;
            }
            arrivals.push(arrival);
        }
    }

    /// Log-uniform amount in `[min, max]`, clamped to the user's balance
    /// (and debited from it).
    fn sample_amount(&mut self, user: u32) -> u128 {
        let (min, max) = (self.config.amount.min.max(1), self.config.amount.max);
        let amount = if max <= min {
            min
        } else {
            let span = (max as f64 / min as f64).ln();
            let drawn = (min as f64 * (self.rng.next_f64() * span).exp()).round() as u128;
            drawn.clamp(min, max)
        };
        self.population.debit_up_to(user, amount)
    }

    /// A memo sized by the configured mix: possibly forward metadata
    /// (multi-hop route), plus uniform padding.
    fn sample_memo(&mut self) -> String {
        let seq = self.generated;
        let mut memo = if self.rng.next_f64() < self.config.memo.forward_fraction {
            let hops = 1 + self.rng.next_below(u64::from(self.config.memo.max_route_hops.max(1)));
            let mut route = format!("{{\"forward\":{{\"hops\":{hops}");
            for hop in 0..hops {
                route.push_str(&format!(",\"ch{hop}\":\"channel-{}\"", 40 + hop));
            }
            route.push_str("}}");
            route
        } else {
            format!("wl/{seq:010}")
        };
        if self.config.memo.pad_max > 0 {
            let pad = self.rng.next_below(u64::from(self.config.memo.pad_max) + 1) as usize;
            memo.extend(core::iter::repeat_n('x', pad));
        }
        memo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::ArrivalCurve;

    #[test]
    fn arrivals_are_ordered_and_deterministic() {
        let config = TrafficConfig::steady(500, 1_000);
        let a = TrafficGenerator::new(config.clone(), 3).schedule_until(10 * 60_000);
        let b = TrafficGenerator::new(config, 3).schedule_until(10 * 60_000);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms), "timestamps ordered");
    }

    #[test]
    fn storm_density_dwarfs_baseline() {
        let mut config = TrafficConfig::airdrop_storm(10_000, 5_000);
        config.curve =
            ArrivalCurve::AirdropStorm { at_ms: 60_000, duration_ms: 60_000, surge: 30.0 };
        let arrivals = TrafficGenerator::new(config, 9).schedule_until(3 * 60_000);
        let before = arrivals.iter().filter(|a| a.at_ms < 60_000).count();
        let during = arrivals.iter().filter(|a| (60_000..120_000).contains(&a.at_ms)).count();
        assert!(
            during > before * 5,
            "storm window must be much denser: before={before} during={during}"
        );
    }

    #[test]
    fn amounts_respect_balances() {
        let mut config = TrafficConfig::steady(3, 500);
        config.initial_balance = 50;
        config.amount = crate::AmountMix { min: 40, max: 40 };
        let mut generator = TrafficGenerator::new(config, 4);
        let arrivals = generator.schedule_until(60 * 60_000);
        // Each user can afford one full transfer and one partial one.
        let total: u128 = arrivals.iter().map(|a| a.amount).sum();
        assert!(total <= 150, "population spent more than it owns: {total}");
        assert!(arrivals.iter().any(|a| a.amount == 0), "broke users draw zero");
    }

    #[test]
    fn memo_mix_produces_varied_sizes() {
        let mut config = TrafficConfig::steady(100, 200);
        config.memo.forward_fraction = 0.3;
        let arrivals = TrafficGenerator::new(config, 5).schedule_until(5 * 60_000);
        let forwards = arrivals.iter().filter(|a| a.memo.contains("forward")).count();
        assert!(forwards > 0, "some memos carry routes");
        assert!(forwards < arrivals.len(), "not all memos carry routes");
        let lens: std::collections::BTreeSet<usize> =
            arrivals.iter().map(|a| a.memo.len()).collect();
        assert!(lens.len() > 10, "padding must vary packet sizes, got {} lengths", lens.len());
    }
}
