//! Arrival-rate curves: the time-varying intensity of the traffic
//! process, expressed as a dimensionless multiplier over the configured
//! base rate.

use serde::{Deserialize, Serialize};

/// The shape of a workload's arrival intensity over simulated time.
///
/// A curve maps a timestamp to a multiplier applied to the base rate
/// (`1 / mean_gap_ms`); the generator samples arrivals from the resulting
/// non-homogeneous Poisson process by thinning. All shapes are pure
/// functions of time, so the same configuration always produces the same
/// intensity profile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "shape", rename_all = "snake_case")]
pub enum ArrivalCurve {
    /// A homogeneous Poisson process: the multiplier is 1 everywhere.
    Steady,
    /// A sinusoidal day/night cycle between `trough` and `peak`,
    /// peaking every `period_ms` at offset `peak_at_ms` — the shape of
    /// organic user traffic across time zones.
    Diurnal {
        /// Multiplier at the daily peak (≥ `trough`).
        peak: f64,
        /// Multiplier at the nightly trough.
        trough: f64,
        /// Cycle length (24 h for a natural day/night rhythm).
        period_ms: u64,
        /// Time of the first peak within the cycle.
        #[serde(default)]
        peak_at_ms: u64,
    },
    /// A flash crowd: baseline 1, a linear ramp to `peak` starting at
    /// `at_ms` over `ramp_ms`, then exponential decay back to baseline
    /// with time constant `decay_ms` — a viral event or market move.
    FlashCrowd {
        /// When the crowd starts arriving.
        at_ms: u64,
        /// Ramp-up length.
        ramp_ms: u64,
        /// Multiplier at the spike top.
        peak: f64,
        /// Exponential decay time constant after the top.
        decay_ms: u64,
    },
    /// An airdrop storm: a square wave of `surge` for `duration_ms`
    /// starting at `at_ms` — everyone claiming in the same window, the
    /// regime where queues actually build.
    AirdropStorm {
        /// Claim window opening.
        at_ms: u64,
        /// Claim window length.
        duration_ms: u64,
        /// Multiplier inside the window.
        surge: f64,
    },
}

impl Default for ArrivalCurve {
    /// A homogeneous process — the shape scenario files get when they
    /// omit `curve` entirely.
    fn default() -> Self {
        Self::Steady
    }
}

impl ArrivalCurve {
    /// The shape's short label — the serde tag, stable across runs, used
    /// for per-shape metric names (`traffic.<label>.outbound`).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Steady => "steady",
            Self::Diurnal { .. } => "diurnal",
            Self::FlashCrowd { .. } => "flash_crowd",
            Self::AirdropStorm { .. } => "airdrop_storm",
        }
    }

    /// The rate multiplier at `now_ms`.
    pub fn multiplier(&self, now_ms: u64) -> f64 {
        match *self {
            Self::Steady => 1.0,
            Self::Diurnal { peak, trough, period_ms, peak_at_ms } => {
                let period = period_ms.max(1) as f64;
                let phase = (now_ms as f64 - peak_at_ms as f64) / period;
                let wave = 0.5 * (1.0 + (2.0 * core::f64::consts::PI * phase).cos());
                trough + (peak - trough) * wave
            }
            Self::FlashCrowd { at_ms, ramp_ms, peak, decay_ms } => {
                if now_ms < at_ms {
                    return 1.0;
                }
                let top_ms = at_ms + ramp_ms;
                if now_ms < top_ms {
                    let progress = (now_ms - at_ms) as f64 / ramp_ms.max(1) as f64;
                    1.0 + (peak - 1.0) * progress
                } else {
                    let elapsed = (now_ms - top_ms) as f64 / decay_ms.max(1) as f64;
                    1.0 + (peak - 1.0) * (-elapsed).exp()
                }
            }
            Self::AirdropStorm { at_ms, duration_ms, surge } => {
                if (at_ms..at_ms.saturating_add(duration_ms)).contains(&now_ms) {
                    surge
                } else {
                    1.0
                }
            }
        }
    }

    /// A tight upper bound on [`ArrivalCurve::multiplier`] over all time —
    /// the majorising rate the thinning sampler draws candidates at.
    pub fn max_multiplier(&self) -> f64 {
        match *self {
            Self::Steady => 1.0,
            Self::Diurnal { peak, trough, .. } => peak.max(trough),
            Self::FlashCrowd { peak, .. } => peak.max(1.0),
            Self::AirdropStorm { surge, .. } => surge.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Milliseconds per day.
    const DAY_MS: u64 = 24 * 60 * 60 * 1_000;

    #[test]
    fn steady_is_flat() {
        for t in [0, 1_000, DAY_MS] {
            assert_eq!(ArrivalCurve::Steady.multiplier(t), 1.0);
        }
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let curve =
            ArrivalCurve::Diurnal { peak: 3.0, trough: 0.5, period_ms: DAY_MS, peak_at_ms: 0 };
        assert!((curve.multiplier(0) - 3.0).abs() < 1e-9);
        assert!((curve.multiplier(DAY_MS / 2) - 0.5).abs() < 1e-9);
        assert!((curve.multiplier(DAY_MS) - 3.0).abs() < 1e-9);
        assert!(curve.max_multiplier() >= curve.multiplier(DAY_MS / 3));
    }

    #[test]
    fn flash_crowd_ramps_then_decays() {
        let curve =
            ArrivalCurve::FlashCrowd { at_ms: 1_000, ramp_ms: 1_000, peak: 10.0, decay_ms: 2_000 };
        assert_eq!(curve.multiplier(0), 1.0);
        assert!((curve.multiplier(1_500) - 5.5).abs() < 1e-9, "half-way up the ramp");
        assert!((curve.multiplier(2_000) - 10.0).abs() < 1e-9, "spike top");
        let late = curve.multiplier(20_000);
        assert!(late > 1.0 && late < 1.01, "decays toward baseline, got {late}");
    }

    #[test]
    fn airdrop_storm_is_a_square_wave() {
        let curve = ArrivalCurve::AirdropStorm { at_ms: 5_000, duration_ms: 1_000, surge: 50.0 };
        assert_eq!(curve.multiplier(4_999), 1.0);
        assert_eq!(curve.multiplier(5_000), 50.0);
        assert_eq!(curve.multiplier(5_999), 50.0);
        assert_eq!(curve.multiplier(6_000), 1.0);
    }

    #[test]
    fn multiplier_never_exceeds_bound() {
        let curves = [
            ArrivalCurve::Steady,
            ArrivalCurve::Diurnal { peak: 4.0, trough: 0.2, period_ms: DAY_MS, peak_at_ms: 7 },
            ArrivalCurve::FlashCrowd { at_ms: 100, ramp_ms: 300, peak: 25.0, decay_ms: 900 },
            ArrivalCurve::AirdropStorm { at_ms: 50, duration_ms: 400, surge: 80.0 },
        ];
        for curve in curves {
            let bound = curve.max_multiplier();
            for t in (0..DAY_MS).step_by(60_000) {
                assert!(curve.multiplier(t) <= bound + 1e-12);
            }
        }
    }
}
