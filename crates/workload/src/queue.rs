//! The discrete-event core: a global binary heap of timed events with
//! deterministic tie-breaking.
//!
//! Replaces per-slot polling in the harnesses: instead of asking every
//! component "anything due?" each slot, components schedule their next
//! wake-up (arrivals, block slots, relayer jobs, detector windows) and
//! the driver pops events in `(time, insertion sequence)` order. The
//! sequence number makes simultaneous events pop in the order they were
//! scheduled — exactly the ordering the old `BTreeMap<(time, seq), _>`
//! schedule gave, so same-seed runs stay byte-identical.

use std::collections::BinaryHeap;

/// One scheduled event (private: ordering must stay in sync with the
/// queue's pop semantics).
#[derive(Debug)]
struct Entry<T> {
    at_ms: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms == other.at_ms && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest
        // (time, seq) on top.
        other.at_ms.cmp(&self.at_ms).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use workload::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(20, "relayer");
/// queue.schedule(10, "arrival");
/// queue.schedule(10, "slot");
/// assert_eq!(queue.pop_due(15), Some((10, "arrival")));
/// assert_eq!(queue.pop_due(15), Some((10, "slot")));
/// assert_eq!(queue.pop_due(15), None, "the relayer job is not due yet");
/// assert_eq!(queue.next_at(), Some(20));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `payload` at `at_ms`. Events scheduled for the same
    /// instant pop in scheduling order.
    pub fn schedule(&mut self, at_ms: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at_ms, seq, payload });
    }

    /// Pops the earliest event due at or before `now_ms`.
    pub fn pop_due(&mut self, now_ms: u64) -> Option<(u64, T)> {
        if self.heap.peek().is_some_and(|entry| entry.at_ms <= now_ms) {
            let entry = self.heap.pop().expect("just peeked");
            Some((entry.at_ms, entry.payload))
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|entry| (entry.at_ms, entry.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn next_at(&self) -> Option<u64> {
        self.heap.peek().map(|entry| entry.at_ms)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut queue = EventQueue::new();
        queue.schedule(5, "c");
        queue.schedule(1, "a");
        queue.schedule(5, "d");
        queue.schedule(1, "b");
        let mut popped = Vec::new();
        while let Some((at, label)) = queue.pop() {
            popped.push((at, label));
        }
        assert_eq!(popped, [(1, "a"), (1, "b"), (5, "c"), (5, "d")]);
    }

    #[test]
    fn matches_btreemap_schedule_ordering() {
        // The old harness schedule was a BTreeMap keyed by (time, seq);
        // the heap must drain in exactly that key order.
        let mut queue = EventQueue::new();
        let mut reference = std::collections::BTreeMap::new();
        let mut rng = sim_crypto::rng::SplitMix64::new(99);
        for seq in 0..1_000u64 {
            let at = rng.next_below(50);
            queue.schedule(at, seq);
            reference.insert((at, seq), seq);
        }
        let from_map: Vec<u64> = reference.into_values().collect();
        let mut from_heap = Vec::new();
        while let Some((_, v)) = queue.pop() {
            from_heap.push(v);
        }
        assert_eq!(from_heap, from_map);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut queue = EventQueue::new();
        queue.schedule(10, ());
        queue.schedule(30, ());
        assert!(queue.pop_due(9).is_none());
        assert_eq!(queue.pop_due(10), Some((10, ())));
        assert!(queue.pop_due(29).is_none());
        assert_eq!(queue.len(), 1);
    }
}
