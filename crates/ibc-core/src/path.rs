//! ICS-24 host storage paths.
//!
//! Every IBC datum lives at a well-known path in the chain's provable
//! store, so a counterparty can verify it with a membership proof against
//! the chain's commitment root. Sequence numbers are encoded **fixed-width**
//! so packet keys are dense and monotone — the property the sealable trie
//! exploits to reclaim whole 16-blocks of delivered packets (§III-A).

use crate::types::{ChannelId, ClientId, ConnectionId, PortId};

/// Path of a client's latest state.
pub fn client_state(client_id: &ClientId) -> Vec<u8> {
    format!("clients/{client_id}/clientState").into_bytes()
}

/// Path of a client's consensus state at `height` (fixed-width).
pub fn consensus_state(client_id: &ClientId, height: u64) -> Vec<u8> {
    format!("clients/{client_id}/consensusStates/{height:020}").into_bytes()
}

/// Path of a connection end.
pub fn connection(connection_id: &ConnectionId) -> Vec<u8> {
    format!("connections/{connection_id}").into_bytes()
}

/// Path of a channel end.
pub fn channel(port_id: &PortId, channel_id: &ChannelId) -> Vec<u8> {
    format!("channelEnds/ports/{port_id}/channels/{channel_id}").into_bytes()
}

/// Path of the next send sequence for a channel.
pub fn next_sequence_send(port_id: &PortId, channel_id: &ChannelId) -> Vec<u8> {
    format!("nextSequenceSend/ports/{port_id}/channels/{channel_id}").into_bytes()
}

/// Path of the next receive sequence for an ordered channel.
pub fn next_sequence_recv(port_id: &PortId, channel_id: &ChannelId) -> Vec<u8> {
    format!("nextSequenceRecv/ports/{port_id}/channels/{channel_id}").into_bytes()
}

/// Path of an outgoing packet commitment.
pub fn packet_commitment(port_id: &PortId, channel_id: &ChannelId, sequence: u64) -> Vec<u8> {
    format!("commitments/ports/{port_id}/channels/{channel_id}/sequences/{sequence:020}")
        .into_bytes()
}

/// Path of a packet receipt (proves delivery; sealed after writing).
pub fn packet_receipt(port_id: &PortId, channel_id: &ChannelId, sequence: u64) -> Vec<u8> {
    format!("receipts/ports/{port_id}/channels/{channel_id}/sequences/{sequence:020}").into_bytes()
}

/// Path of a packet acknowledgement commitment.
pub fn packet_ack(port_id: &PortId, channel_id: &ChannelId, sequence: u64) -> Vec<u8> {
    format!("acks/ports/{port_id}/channels/{channel_id}/sequences/{sequence:020}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_fixed_width() {
        let p1 = packet_commitment(&PortId::transfer(), &ChannelId::new(0), 15);
        let p2 = packet_commitment(&PortId::transfer(), &ChannelId::new(0), 150);
        assert_eq!(p1.len(), p2.len(), "dense monotone keys for sealing");
        assert!(String::from_utf8(p1).unwrap().ends_with("00000000000000000015"));
    }

    #[test]
    fn paths_are_distinct_across_kinds() {
        let port = PortId::transfer();
        let chan = ChannelId::new(1);
        let all = [
            packet_commitment(&port, &chan, 1),
            packet_receipt(&port, &chan, 1),
            packet_ack(&port, &chan, 1),
            channel(&port, &chan),
            next_sequence_send(&port, &chan),
            next_sequence_recv(&port, &chan),
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn consensus_state_height_fixed_width() {
        let a = consensus_state(&ClientId::new(0), 9);
        let b = consensus_state(&ClientId::new(0), 999_999);
        assert_eq!(a.len(), b.len());
    }
}
