//! ICS-02: light clients.
//!
//! A light client tracks a counterparty chain's consensus: it validates
//! headers, stores consensus states (commitment root + timestamp per
//! height) and verifies (non-)membership proofs against those roots.
//! Concrete client implementations live with the chains they track (the
//! guest light client in `guest-chain`, the Tendermint-like client in
//! `counterparty-sim`); the handler talks to them through [`LightClient`].

use serde::{Deserialize, Serialize};
use sim_crypto::Hash;

use crate::types::{Height, IbcError, TimestampMs};

/// A consensus snapshot of the tracked chain at one height.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsensusState {
    /// The chain's provable-store commitment root at this height.
    pub root: Hash,
    /// The chain's timestamp at this height.
    pub timestamp_ms: TimestampMs,
}

/// A light client instance tracking one counterparty chain.
///
/// Headers, proofs and misbehaviour evidence are exchanged as opaque bytes;
/// each implementation defines its own encodings. This keeps the handler
/// chain-agnostic — precisely the pluggability IBC requires.
pub trait LightClient {
    /// A short type tag, e.g. `"guest"` or `"tendermint-sim"`.
    fn client_type(&self) -> &'static str;

    /// Highest verified height.
    fn latest_height(&self) -> Height;

    /// The consensus state stored for `height`, if any.
    fn consensus_state(&self, height: Height) -> Option<ConsensusState>;

    /// Verifies an encoded header and stores its consensus state.
    ///
    /// Returns the new verified height.
    ///
    /// # Errors
    ///
    /// [`IbcError::ClientVerification`] when the header does not check out
    /// (bad signatures, no quorum, non-monotonic, …).
    fn update(&mut self, header: &[u8]) -> Result<Height, IbcError>;

    /// Verifies that `key ↦ value` is committed by the tracked chain at
    /// `height`.
    ///
    /// # Errors
    ///
    /// [`IbcError::InvalidProof`] when the proof fails.
    fn verify_membership(
        &self,
        height: Height,
        key: &[u8],
        value: &[u8],
        proof: &[u8],
    ) -> Result<(), IbcError>;

    /// Verifies that `key` is absent from the tracked chain at `height`.
    ///
    /// # Errors
    ///
    /// [`IbcError::InvalidProof`] when the proof fails.
    fn verify_non_membership(
        &self,
        height: Height,
        key: &[u8],
        proof: &[u8],
    ) -> Result<(), IbcError>;

    /// Checks misbehaviour evidence; returns `true` when valid, in which
    /// case the caller freezes the client.
    fn check_misbehaviour(&self, evidence: &[u8]) -> bool;

    /// Whether the client has been frozen after proven misbehaviour.
    fn is_frozen(&self) -> bool;

    /// Freezes the client.
    fn freeze(&mut self);
}

/// A trivial client for tests: trusts a preloaded table of heights.
///
/// Useful wherever a real header-verification pipeline is not the thing
/// under test.
#[derive(Debug, Default)]
pub struct MockClient {
    states: std::collections::BTreeMap<Height, ConsensusState>,
    frozen: bool,
}

impl MockClient {
    /// Creates an empty mock client.
    pub fn new() -> Self {
        Self::default()
    }

    /// Preloads a consensus state.
    pub fn trust(&mut self, height: Height, root: Hash, timestamp_ms: TimestampMs) {
        self.states.insert(height, ConsensusState { root, timestamp_ms });
    }
}

/// Header format understood by [`MockClient`]: plain serde JSON.
#[derive(Debug, Serialize, Deserialize)]
pub struct MockHeader {
    /// New height.
    pub height: Height,
    /// Commitment root at that height.
    pub root: Hash,
    /// Timestamp at that height.
    pub timestamp_ms: TimestampMs,
}

impl LightClient for MockClient {
    fn client_type(&self) -> &'static str {
        "mock"
    }

    fn latest_height(&self) -> Height {
        self.states.keys().next_back().copied().unwrap_or(0)
    }

    fn consensus_state(&self, height: Height) -> Option<ConsensusState> {
        self.states.get(&height).copied()
    }

    fn update(&mut self, header: &[u8]) -> Result<Height, IbcError> {
        let header: MockHeader = serde_json::from_slice(header)
            .map_err(|e| IbcError::ClientVerification(e.to_string()))?;
        if header.height <= self.latest_height() {
            return Err(IbcError::ClientVerification("non-monotonic height".into()));
        }
        self.trust(header.height, header.root, header.timestamp_ms);
        Ok(header.height)
    }

    fn verify_membership(
        &self,
        height: Height,
        key: &[u8],
        value: &[u8],
        proof: &[u8],
    ) -> Result<(), IbcError> {
        let state = self
            .consensus_state(height)
            .ok_or_else(|| IbcError::InvalidProof(format!("no consensus state at {height}")))?;
        let proof = crate::store::decode_proof(proof)?;
        if proof.verify_member(&state.root, key, value) {
            Ok(())
        } else {
            Err(IbcError::InvalidProof("membership proof failed".into()))
        }
    }

    fn verify_non_membership(
        &self,
        height: Height,
        key: &[u8],
        proof: &[u8],
    ) -> Result<(), IbcError> {
        let state = self
            .consensus_state(height)
            .ok_or_else(|| IbcError::InvalidProof(format!("no consensus state at {height}")))?;
        let proof = crate::store::decode_proof(proof)?;
        if proof.verify_non_member(&state.root, key) {
            Ok(())
        } else {
            Err(IbcError::InvalidProof("non-membership proof failed".into()))
        }
    }

    fn check_misbehaviour(&self, _evidence: &[u8]) -> bool {
        false
    }

    fn is_frozen(&self) -> bool {
        self.frozen
    }

    fn freeze(&mut self) {
        self.frozen = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealable_trie::Trie;
    use sim_crypto::sha256;

    #[test]
    fn mock_client_updates_monotonically() {
        let mut client = MockClient::new();
        let header = |height| {
            serde_json::to_vec(&MockHeader {
                height,
                root: sha256([height as u8]),
                timestamp_ms: height * 1_000,
            })
            .unwrap()
        };
        assert_eq!(client.update(&header(5)).unwrap(), 5);
        assert_eq!(client.update(&header(9)).unwrap(), 9);
        assert!(client.update(&header(7)).is_err());
        assert_eq!(client.latest_height(), 9);
    }

    #[test]
    fn mock_client_verifies_real_trie_proofs() {
        let mut trie = Trie::new();
        trie.insert(b"commitments/x", b"value").unwrap();
        let mut client = MockClient::new();
        client.trust(4, trie.root_hash(), 4_000);

        let proof = crate::store::encode_proof(&trie.prove(b"commitments/x").unwrap());
        client.verify_membership(4, b"commitments/x", b"value", &proof).unwrap();
        assert!(client.verify_membership(4, b"commitments/x", b"forged", &proof).is_err());

        let absent = crate::store::encode_proof(&trie.prove(b"missing").unwrap());
        client.verify_non_membership(4, b"missing", &absent).unwrap();
        assert!(client.verify_non_membership(5, b"missing", &absent).is_err(), "unknown height");
    }
}
