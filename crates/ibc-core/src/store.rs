//! The provable-store abstraction (IBC's first requirement, §II).

use sealable_trie::{NodeStore, Proof, Trie, TrieError};
use sim_crypto::Hash;

use crate::types::IbcError;

/// A key-value store that can prove membership and non-membership of its
/// entries to external verifiers.
///
/// The guest blockchain backs this with the sealable trie; an ordinary
/// IBC chain backs it with a plain Merkle store. `seal` is the
/// guest-specific extension: stores without sealing fall back to keeping
/// the entry (the default implementation is a no-op).
pub trait ProvableStore {
    /// Writes `value` at `key`.
    ///
    /// # Errors
    ///
    /// [`IbcError::Store`] if the slot is sealed or otherwise unwritable.
    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), IbcError>;

    /// Reads the value at `key` (`None` when absent).
    ///
    /// # Errors
    ///
    /// [`IbcError::Store`] if the slot is sealed.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, IbcError>;

    /// Deletes the value at `key`.
    ///
    /// # Errors
    ///
    /// [`IbcError::Store`] if the slot is sealed.
    fn delete(&mut self, key: &[u8]) -> Result<(), IbcError>;

    /// Permanently seals `key` (reclaiming its storage where supported).
    ///
    /// # Errors
    ///
    /// [`IbcError::Store`] if the key is unknown or already sealed.
    fn seal(&mut self, key: &[u8]) -> Result<(), IbcError> {
        let _ = key;
        Ok(())
    }

    /// The current commitment root.
    fn root(&self) -> Hash;

    /// Produces a (non-)membership proof for `key`, serialized.
    ///
    /// # Errors
    ///
    /// [`IbcError::Store`] if the proof cannot be built (sealed path).
    fn prove(&self, key: &[u8]) -> Result<Vec<u8>, IbcError>;
}

fn trie_err(err: TrieError) -> IbcError {
    IbcError::Store(err.to_string())
}

/// Serializes a trie proof for transport.
pub fn encode_proof(proof: &Proof) -> Vec<u8> {
    serde_json::to_vec(proof).expect("proof serializes")
}

/// Deserializes a trie proof received from a counterparty.
///
/// # Errors
///
/// [`IbcError::InvalidProof`] on malformed bytes.
pub fn decode_proof(bytes: &[u8]) -> Result<Proof, IbcError> {
    serde_json::from_slice(bytes).map_err(|e| IbcError::InvalidProof(e.to_string()))
}

impl<S: NodeStore> ProvableStore for Trie<S> {
    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), IbcError> {
        self.insert(key, value).map_err(trie_err)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, IbcError> {
        Trie::get(self, key).map_err(trie_err)
    }

    fn delete(&mut self, key: &[u8]) -> Result<(), IbcError> {
        self.remove(key).map(|_| ()).map_err(trie_err)
    }

    fn seal(&mut self, key: &[u8]) -> Result<(), IbcError> {
        Trie::seal(self, key).map_err(trie_err)
    }

    fn root(&self) -> Hash {
        self.root_hash()
    }

    fn prove(&self, key: &[u8]) -> Result<Vec<u8>, IbcError> {
        Trie::prove(self, key).map(|p| encode_proof(&p)).map_err(trie_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_implements_provable_store() {
        let mut store: Trie = Trie::new();
        ProvableStore::set(&mut store, b"k", b"v").unwrap();
        assert_eq!(ProvableStore::get(&store, b"k").unwrap().unwrap(), b"v");
        let root = ProvableStore::root(&store);
        let proof = decode_proof(&ProvableStore::prove(&store, b"k").unwrap()).unwrap();
        assert!(proof.verify_member(&root, b"k", b"v"));
        ProvableStore::seal(&mut store, b"k").unwrap();
        assert!(ProvableStore::get(&store, b"k").is_err());
        assert_eq!(ProvableStore::root(&store), root);
    }

    #[test]
    fn proof_round_trips_through_encoding() {
        let mut store: Trie = Trie::new();
        ProvableStore::set(&mut store, b"a", b"1").unwrap();
        let bytes = ProvableStore::prove(&store, b"missing").unwrap();
        let proof = decode_proof(&bytes).unwrap();
        assert!(proof.verify_non_member(&store.root_hash(), b"missing"));
        assert!(decode_proof(b"garbage").is_err());
    }
}
