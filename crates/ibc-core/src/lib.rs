//! A from-scratch implementation of the Inter-Blockchain Communication
//! (IBC) protocol core.
//!
//! IBC is a stateful, connection-oriented protocol for reliable and
//! authenticated communication between independent blockchains (§II of the
//! paper). This crate provides the chain-agnostic machinery; chains plug in
//! their provable store and light clients:
//!
//! * [`store::ProvableStore`] — key-value storage with (non-)membership
//!   proofs. The guest blockchain backs it with the sealable trie.
//! * [`client`] (ICS-02) — light clients validating counterparty headers.
//! * [`connection`] (ICS-03) — the four-step connection handshake, including
//!   the *self-client validation* step ([`handler::SelfHistory`]) whose
//!   absence keeps other ports incomplete.
//! * [`channel`] (ICS-04) — channels, packets, commitments,
//!   acknowledgements and timeouts.
//! * [`router`] / [`handler`] — module routing and the full packet life
//!   cycle (§II steps 1–6).
//! * [`ics20`] — the token-transfer application with escrow/voucher
//!   semantics.
//!
//! Two in-process chains complete a connection, open a channel and relay
//! packets end-to-end in the integration test `tests/two_chains.rs`.
//!
//! # Examples
//!
//! Committing and proving an outbound packet (what a source chain does):
//!
//! ```
//! use ibc_core::channel::{Packet, Timeout};
//! use ibc_core::types::{ChannelId, PortId};
//! use ibc_core::ProvableStore;
//! use sealable_trie::Trie;
//!
//! let packet = Packet {
//!     sequence: 1,
//!     source_port: PortId::transfer(),
//!     source_channel: ChannelId::new(0),
//!     destination_port: PortId::transfer(),
//!     destination_channel: ChannelId::new(5),
//!     payload: b"{\"amount\":10}".to_vec(),
//!     timeout: Timeout::at_height(1_000),
//! };
//! let mut store: Trie = Trie::new();
//! let key = ibc_core::path::packet_commitment(
//!     &packet.source_port, &packet.source_channel, packet.sequence,
//! );
//! store.set(&key, packet.commitment().as_bytes())?;
//! let proof = store.prove(&key)?;
//! assert!(proof.verify_member(&store.root_hash(), &key, packet.commitment().as_bytes()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod client;
pub mod connection;
pub mod events;
pub mod forward;
pub mod handler;
pub mod ics20;
pub mod path;
pub mod router;
pub mod store;
pub mod types;

pub use channel::{Acknowledgement, ChannelEnd, ChannelState, Ordering, Packet, Timeout};
pub use client::{ConsensusState, LightClient};
pub use connection::{ConnectionEnd, ConnectionState};
pub use events::IbcEvent;
pub use forward::{ForwardKind, ForwardMetadata, MemoEnvelope, RefundMetadata};
pub use handler::{
    HandlerConfig, HostTime, IbcHandler, ProofData, SelfConsensusProof, SelfHistory,
};
pub use router::Module;
pub use store::ProvableStore;
pub use types::{ChannelId, ClientId, ConnectionId, Height, IbcError, PortId, TimestampMs};
