//! Events emitted by the IBC handler for off-chain observation.

use serde::{Deserialize, Serialize};

use crate::channel::{Acknowledgement, Packet};
use crate::types::{ChannelId, ClientId, ConnectionId, Height, PortId};

/// An IBC-level event. Relayers drive the protocol by watching these.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IbcEvent {
    /// A light client was created.
    ClientCreated {
        /// The new client's id.
        client_id: ClientId,
    },
    /// A light client advanced to a new verified height.
    ClientUpdated {
        /// The updated client.
        client_id: ClientId,
        /// The newly verified height.
        height: Height,
    },
    /// A client was frozen after proven misbehaviour.
    ClientFrozen {
        /// The frozen client.
        client_id: ClientId,
    },
    /// Connection handshake progressed.
    ConnectionStateChanged {
        /// The connection.
        connection_id: ConnectionId,
        /// New state name (`Init`/`TryOpen`/`Open`).
        state: String,
    },
    /// Channel handshake progressed.
    ChannelStateChanged {
        /// The port.
        port_id: PortId,
        /// The channel.
        channel_id: ChannelId,
        /// New state name.
        state: String,
    },
    /// A packet was committed for sending (§II step 1).
    SendPacket {
        /// The packet.
        packet: Packet,
    },
    /// A packet was received and processed (§II step 4).
    RecvPacket {
        /// The packet.
        packet: Packet,
    },
    /// The destination wrote an acknowledgement (§II step 5).
    WriteAcknowledgement {
        /// The packet.
        packet: Packet,
        /// The acknowledgement.
        ack: Acknowledgement,
    },
    /// The source processed the acknowledgement (§II step 6).
    AcknowledgePacket {
        /// The packet.
        packet: Packet,
    },
    /// The source timed a packet out.
    TimeoutPacket {
        /// The packet.
        packet: Packet,
    },
}
