//! The IBC handler: client registry, handshakes, packet life cycle.
//!
//! One [`IbcHandler`] instance is the complete IBC state machine of one
//! chain. The guest contract embeds one over a sealable trie; the
//! counterparty chain embeds one over a plain trie. Relayers shuttle
//! messages (with proofs) between two handlers.

use std::collections::HashMap;

use sim_crypto::Hash;

use crate::channel::{Acknowledgement, ChannelEnd, ChannelState, Ordering, Packet, Timeout};
use crate::client::{ConsensusState, LightClient};
use crate::connection::{ConnectionEnd, ConnectionState};
use crate::events::IbcEvent;
use crate::path;
use crate::router::Module;
use crate::store::ProvableStore;
use crate::types::{ChannelId, ClientId, ConnectionId, Height, IbcError, PortId, TimestampMs};

/// A proof plus the counterparty height it was taken at.
#[derive(Clone, Debug)]
pub struct ProofData {
    /// Height of the counterparty consensus state to verify against.
    pub height: Height,
    /// Serialized proof bytes (client-specific format).
    pub bytes: Vec<u8>,
}

/// The local chain's view of "now", for timeout enforcement.
#[derive(Clone, Copy, Debug)]
pub struct HostTime {
    /// Local chain height.
    pub height: Height,
    /// Local chain timestamp.
    pub timestamp_ms: TimestampMs,
}

/// Access to this chain's own consensus history, used to validate the
/// counterparty's client of us during handshakes.
///
/// This is the capability whose absence keeps NEAR's IBC port incomplete
/// (§I footnote 2); the guest blockchain provides it by having the Guest
/// Contract track past guest blocks (§VI-D).
pub trait SelfHistory {
    /// Our own consensus state at `height`, if still tracked.
    fn self_consensus_at(&self, height: Height) -> Option<ConsensusState>;
}

/// Proof that the counterparty's client of us holds a given consensus
/// state, to be cross-checked against [`SelfHistory`].
#[derive(Clone, Debug)]
pub struct SelfConsensusProof {
    /// Our height the counterparty claims to have verified.
    pub self_height: Height,
    /// The consensus state the counterparty stored for that height.
    pub consensus: ConsensusState,
    /// Membership proof of that consensus state in the counterparty store.
    pub proof: ProofData,
}

/// Handler configuration.
#[derive(Clone, Copy, Debug)]
pub struct HandlerConfig {
    /// Seal packet receipts after writing them (guest-chain behaviour,
    /// §III-A). Chains with unbounded storage leave receipts live.
    pub seal_receipts: bool,
    /// Keep at most this many consensus states per client in the provable
    /// store, deleting the oldest (0 = unbounded). Part of keeping the
    /// guest's 10 MiB account sufficient "in the long term" (§V-D).
    pub consensus_history: usize,
}

impl Default for HandlerConfig {
    fn default() -> Self {
        Self { seal_receipts: true, consensus_history: 32 }
    }
}

/// The IBC state machine of one chain.
pub struct IbcHandler<S: ProvableStore> {
    store: S,
    config: HandlerConfig,
    stored_consensus_heights: HashMap<ClientId, Vec<Height>>,
    clients: HashMap<ClientId, Box<dyn LightClient>>,
    modules: HashMap<PortId, Box<dyn Module>>,
    self_history: Option<Box<dyn SelfHistory>>,
    next_client: u64,
    next_connection: u64,
    next_channel: u64,
    events: Vec<IbcEvent>,
}

impl<S: ProvableStore> IbcHandler<S> {
    /// Creates a handler over `store` with default configuration.
    pub fn new(store: S) -> Self {
        Self::with_config(store, HandlerConfig::default())
    }

    /// Creates a handler with explicit configuration.
    pub fn with_config(store: S, config: HandlerConfig) -> Self {
        Self {
            store,
            config,
            stored_consensus_heights: HashMap::new(),
            clients: HashMap::new(),
            modules: HashMap::new(),
            self_history: None,
            next_client: 0,
            next_connection: 0,
            next_channel: 0,
            events: Vec::new(),
        }
    }

    /// Installs the chain's own consensus history for handshake
    /// self-validation.
    pub fn set_self_history(&mut self, history: Box<dyn SelfHistory>) {
        self.self_history = Some(history);
    }

    /// The provable store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable store access (chain-internal bookkeeping).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Current commitment root of the chain's IBC state.
    pub fn root(&self) -> Hash {
        self.store.root()
    }

    /// Removes and returns all pending events.
    pub fn drain_events(&mut self) -> Vec<IbcEvent> {
        std::mem::take(&mut self.events)
    }

    // ------------------------------------------------------------------
    // ICS-02: clients
    // ------------------------------------------------------------------

    /// Registers a light client; returns its id.
    pub fn create_client(&mut self, client: Box<dyn LightClient>) -> ClientId {
        let client_id = ClientId::new(self.next_client);
        self.next_client += 1;
        self.clients.insert(client_id.clone(), client);
        self.events.push(IbcEvent::ClientCreated { client_id: client_id.clone() });
        client_id
    }

    /// Looks a client up.
    ///
    /// # Errors
    ///
    /// [`IbcError::UnknownClient`].
    pub fn client(&self, client_id: &ClientId) -> Result<&dyn LightClient, IbcError> {
        self.clients
            .get(client_id)
            .map(|c| c.as_ref())
            .ok_or_else(|| IbcError::UnknownClient(client_id.clone()))
    }

    /// Feeds a header to a client (§II: light-client update).
    ///
    /// Also records the verified consensus state in our provable store so
    /// the counterparty can run handshake self-validation against it.
    ///
    /// # Errors
    ///
    /// [`IbcError::UnknownClient`], [`IbcError::FrozenClient`], or the
    /// client's verification error.
    pub fn update_client(
        &mut self,
        client_id: &ClientId,
        header: &[u8],
    ) -> Result<Height, IbcError> {
        let client = self
            .clients
            .get_mut(client_id)
            .ok_or_else(|| IbcError::UnknownClient(client_id.clone()))?;
        if client.is_frozen() {
            return Err(IbcError::FrozenClient(client_id.clone()));
        }
        let height = client.update(header)?;
        let consensus =
            client.consensus_state(height).expect("update stores the consensus state it verified");
        self.store.set(
            &path::consensus_state(client_id, height),
            &serde_json::to_vec(&consensus).expect("consensus state serializes"),
        )?;
        // Bound provable-store growth: drop the oldest consensus states
        // beyond the configured history window.
        let heights = self.stored_consensus_heights.entry(client_id.clone()).or_default();
        heights.push(height);
        if self.config.consensus_history > 0 {
            while heights.len() > self.config.consensus_history {
                let old = heights.remove(0);
                self.store.delete(&path::consensus_state(client_id, old))?;
            }
        }
        self.events.push(IbcEvent::ClientUpdated { client_id: client_id.clone(), height });
        Ok(height)
    }

    /// Submits misbehaviour evidence; freezes the client when valid.
    ///
    /// # Errors
    ///
    /// [`IbcError::UnknownClient`].
    pub fn submit_misbehaviour(
        &mut self,
        client_id: &ClientId,
        evidence: &[u8],
    ) -> Result<bool, IbcError> {
        let client = self
            .clients
            .get_mut(client_id)
            .ok_or_else(|| IbcError::UnknownClient(client_id.clone()))?;
        if client.check_misbehaviour(evidence) {
            client.freeze();
            self.events.push(IbcEvent::ClientFrozen { client_id: client_id.clone() });
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn verify_membership(
        &self,
        client_id: &ClientId,
        proof: &ProofData,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), IbcError> {
        let client = self.client(client_id)?;
        if client.is_frozen() {
            return Err(IbcError::FrozenClient(client_id.clone()));
        }
        client.verify_membership(proof.height, key, value, &proof.bytes)
    }

    // ------------------------------------------------------------------
    // ICS-03: connection handshake
    // ------------------------------------------------------------------

    fn put_connection(
        &mut self,
        connection_id: &ConnectionId,
        end: &ConnectionEnd,
    ) -> Result<(), IbcError> {
        self.store.set(&path::connection(connection_id), &end.encode())?;
        self.events.push(IbcEvent::ConnectionStateChanged {
            connection_id: connection_id.clone(),
            state: format!("{:?}", end.state),
        });
        Ok(())
    }

    /// Reads a connection end.
    ///
    /// # Errors
    ///
    /// [`IbcError::UnknownConnection`].
    pub fn connection(&self, connection_id: &ConnectionId) -> Result<ConnectionEnd, IbcError> {
        let bytes = self
            .store
            .get(&path::connection(connection_id))?
            .ok_or_else(|| IbcError::UnknownConnection(connection_id.clone()))?;
        ConnectionEnd::decode(&bytes)
            .ok_or_else(|| IbcError::Store("corrupt connection end".into()))
    }

    /// Starts a handshake (side A).
    ///
    /// # Errors
    ///
    /// [`IbcError::UnknownClient`] if `client_id` is unregistered.
    pub fn conn_open_init(
        &mut self,
        client_id: ClientId,
        counterparty_client_id: ClientId,
    ) -> Result<ConnectionId, IbcError> {
        self.client(&client_id)?;
        let connection_id = ConnectionId::new(self.next_connection);
        self.next_connection += 1;
        let end = ConnectionEnd::init(client_id, counterparty_client_id);
        self.put_connection(&connection_id, &end)?;
        Ok(connection_id)
    }

    /// Responds to a counterparty Init (side B), verifying its stored end.
    ///
    /// # Errors
    ///
    /// Proof/verification failures per [`IbcError`].
    pub fn conn_open_try(
        &mut self,
        client_id: ClientId,
        counterparty_client_id: ClientId,
        counterparty_connection_id: ConnectionId,
        proof_init: ProofData,
        self_consensus: Option<SelfConsensusProof>,
    ) -> Result<ConnectionId, IbcError> {
        let expected = ConnectionEnd::init(counterparty_client_id.clone(), client_id.clone());
        self.verify_membership(
            &client_id,
            &proof_init,
            &path::connection(&counterparty_connection_id),
            &expected.encode(),
        )?;
        self.validate_self_consensus(&client_id, &counterparty_client_id, self_consensus)?;

        let connection_id = ConnectionId::new(self.next_connection);
        self.next_connection += 1;
        let end =
            ConnectionEnd::try_open(client_id, counterparty_client_id, counterparty_connection_id);
        self.put_connection(&connection_id, &end)?;
        Ok(connection_id)
    }

    /// Completes the handshake on side A after the counterparty's Try.
    ///
    /// # Errors
    ///
    /// [`IbcError::InvalidState`] unless the end is in Init; proof errors
    /// otherwise.
    pub fn conn_open_ack(
        &mut self,
        connection_id: &ConnectionId,
        counterparty_connection_id: ConnectionId,
        proof_try: ProofData,
        self_consensus: Option<SelfConsensusProof>,
    ) -> Result<(), IbcError> {
        let mut end = self.connection(connection_id)?;
        if end.state != ConnectionState::Init {
            return Err(IbcError::InvalidState(format!(
                "conn_open_ack on {:?} connection",
                end.state
            )));
        }
        let expected = ConnectionEnd {
            state: ConnectionState::TryOpen,
            client_id: end.counterparty_client_id.clone(),
            counterparty_client_id: end.client_id.clone(),
            counterparty_connection_id: Some(connection_id.clone()),
            version: ConnectionEnd::DEFAULT_VERSION.to_string(),
        };
        self.verify_membership(
            &end.client_id,
            &proof_try,
            &path::connection(&counterparty_connection_id),
            &expected.encode(),
        )?;
        let client_id = end.client_id.clone();
        let counterparty_client_id = end.counterparty_client_id.clone();
        self.validate_self_consensus(&client_id, &counterparty_client_id, self_consensus)?;

        end.state = ConnectionState::Open;
        end.counterparty_connection_id = Some(counterparty_connection_id);
        self.put_connection(connection_id, &end)
    }

    /// Completes the handshake on side B after the counterparty's Ack.
    ///
    /// # Errors
    ///
    /// [`IbcError::InvalidState`] unless the end is in TryOpen; proof errors
    /// otherwise.
    pub fn conn_open_confirm(
        &mut self,
        connection_id: &ConnectionId,
        proof_ack: ProofData,
    ) -> Result<(), IbcError> {
        let mut end = self.connection(connection_id)?;
        if end.state != ConnectionState::TryOpen {
            return Err(IbcError::InvalidState(format!(
                "conn_open_confirm on {:?} connection",
                end.state
            )));
        }
        let counterparty_connection_id =
            end.counterparty_connection_id.clone().expect("TryOpen implies counterparty id");
        let expected = ConnectionEnd {
            state: ConnectionState::Open,
            client_id: end.counterparty_client_id.clone(),
            counterparty_client_id: end.client_id.clone(),
            counterparty_connection_id: Some(connection_id.clone()),
            version: ConnectionEnd::DEFAULT_VERSION.to_string(),
        };
        self.verify_membership(
            &end.client_id,
            &proof_ack,
            &path::connection(&counterparty_connection_id),
            &expected.encode(),
        )?;
        end.state = ConnectionState::Open;
        self.put_connection(connection_id, &end)
    }

    /// Checks the counterparty's client of *us* against our own history
    /// (the `validate_self_client` step missing from NEAR's port, §I).
    fn validate_self_consensus(
        &self,
        client_id: &ClientId,
        counterparty_client_id: &ClientId,
        proof: Option<SelfConsensusProof>,
    ) -> Result<(), IbcError> {
        let (Some(history), Some(claim)) = (&self.self_history, proof) else {
            return Ok(());
        };
        // The consensus state must be committed in the counterparty store
        // under its client of us...
        self.verify_membership(
            client_id,
            &claim.proof,
            &path::consensus_state(counterparty_client_id, claim.self_height),
            &serde_json::to_vec(&claim.consensus).expect("consensus state serializes"),
        )?;
        // ...and must match what actually happened on this chain.
        let ours = history.self_consensus_at(claim.self_height).ok_or_else(|| {
            IbcError::ClientVerification(format!(
                "no self consensus recorded at height {}",
                claim.self_height
            ))
        })?;
        if ours != claim.consensus {
            return Err(IbcError::ClientVerification(
                "counterparty tracks a fork of this chain".into(),
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // ICS-04: channel handshake
    // ------------------------------------------------------------------

    /// Binds an application module to a port.
    pub fn bind_port(&mut self, port_id: PortId, module: Box<dyn Module>) {
        self.modules.insert(port_id, module);
    }

    /// Mutable access to the module bound to `port_id` (app-state queries).
    pub fn module_mut(&mut self, port_id: &PortId) -> Option<&mut (dyn Module + '_)> {
        match self.modules.get_mut(port_id) {
            Some(module) => Some(module.as_mut()),
            None => None,
        }
    }

    /// Read-only access to the module bound to `port_id` (invariant
    /// checkers, reporting).
    pub fn module(&self, port_id: &PortId) -> Option<&(dyn Module + '_)> {
        match self.modules.get(port_id) {
            Some(module) => Some(module.as_ref()),
            None => None,
        }
    }

    fn put_channel(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        end: &ChannelEnd,
    ) -> Result<(), IbcError> {
        self.store.set(&path::channel(port_id, channel_id), &end.encode())?;
        self.events.push(IbcEvent::ChannelStateChanged {
            port_id: port_id.clone(),
            channel_id: channel_id.clone(),
            state: format!("{:?}", end.state),
        });
        Ok(())
    }

    /// Reads a channel end.
    ///
    /// # Errors
    ///
    /// [`IbcError::UnknownChannel`].
    pub fn channel(
        &self,
        port_id: &PortId,
        channel_id: &ChannelId,
    ) -> Result<ChannelEnd, IbcError> {
        let bytes = self
            .store
            .get(&path::channel(port_id, channel_id))?
            .ok_or_else(|| IbcError::UnknownChannel(port_id.clone(), channel_id.clone()))?;
        ChannelEnd::decode(&bytes).ok_or_else(|| IbcError::Store("corrupt channel end".into()))
    }

    fn open_connection(&self, connection_id: &ConnectionId) -> Result<ConnectionEnd, IbcError> {
        let connection = self.connection(connection_id)?;
        if !connection.is_open() {
            return Err(IbcError::InvalidState("connection not open".into()));
        }
        Ok(connection)
    }

    /// Starts a channel handshake (side A).
    ///
    /// # Errors
    ///
    /// [`IbcError::UnboundPort`] without a module; state errors otherwise.
    pub fn chan_open_init(
        &mut self,
        port_id: PortId,
        connection_id: ConnectionId,
        counterparty_port_id: PortId,
        ordering: Ordering,
        version: &str,
    ) -> Result<ChannelId, IbcError> {
        if !self.modules.contains_key(&port_id) {
            return Err(IbcError::UnboundPort(port_id));
        }
        self.open_connection(&connection_id)?;
        let channel_id = ChannelId::new(self.next_channel);
        self.next_channel += 1;
        let end = ChannelEnd {
            state: ChannelState::Init,
            ordering,
            counterparty_port_id,
            counterparty_channel_id: None,
            connection_id,
            version: version.to_string(),
        };
        self.put_channel(&port_id, &channel_id, &end)?;
        self.init_sequences(&port_id, &channel_id)?;
        Ok(channel_id)
    }

    /// Responds to a counterparty channel Init (side B).
    ///
    /// # Errors
    ///
    /// Proof/state errors per [`IbcError`].
    #[allow(clippy::too_many_arguments)]
    pub fn chan_open_try(
        &mut self,
        port_id: PortId,
        connection_id: ConnectionId,
        counterparty_port_id: PortId,
        counterparty_channel_id: ChannelId,
        ordering: Ordering,
        version: &str,
        proof_init: ProofData,
    ) -> Result<ChannelId, IbcError> {
        if !self.modules.contains_key(&port_id) {
            return Err(IbcError::UnboundPort(port_id));
        }
        let connection = self.open_connection(&connection_id)?;
        let expected = ChannelEnd {
            state: ChannelState::Init,
            ordering,
            counterparty_port_id: port_id.clone(),
            counterparty_channel_id: None,
            connection_id: connection
                .counterparty_connection_id
                .clone()
                .expect("open connection has counterparty id"),
            version: version.to_string(),
        };
        self.verify_membership(
            &connection.client_id,
            &proof_init,
            &path::channel(&counterparty_port_id, &counterparty_channel_id),
            &expected.encode(),
        )?;

        let channel_id = ChannelId::new(self.next_channel);
        self.next_channel += 1;
        let end = ChannelEnd {
            state: ChannelState::TryOpen,
            ordering,
            counterparty_port_id,
            counterparty_channel_id: Some(counterparty_channel_id),
            connection_id,
            version: version.to_string(),
        };
        self.put_channel(&port_id, &channel_id, &end)?;
        self.init_sequences(&port_id, &channel_id)?;
        Ok(channel_id)
    }

    /// Completes the channel handshake on side A.
    ///
    /// # Errors
    ///
    /// Proof/state errors per [`IbcError`].
    pub fn chan_open_ack(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        counterparty_channel_id: ChannelId,
        proof_try: ProofData,
    ) -> Result<(), IbcError> {
        let mut end = self.channel(port_id, channel_id)?;
        if end.state != ChannelState::Init {
            return Err(IbcError::InvalidState(format!(
                "chan_open_ack on {:?} channel",
                end.state
            )));
        }
        let connection = self.open_connection(&end.connection_id)?;
        let expected = ChannelEnd {
            state: ChannelState::TryOpen,
            ordering: end.ordering,
            counterparty_port_id: port_id.clone(),
            counterparty_channel_id: Some(channel_id.clone()),
            connection_id: connection
                .counterparty_connection_id
                .clone()
                .expect("open connection has counterparty id"),
            version: end.version.clone(),
        };
        self.verify_membership(
            &connection.client_id,
            &proof_try,
            &path::channel(&end.counterparty_port_id, &counterparty_channel_id),
            &expected.encode(),
        )?;
        end.state = ChannelState::Open;
        end.counterparty_channel_id = Some(counterparty_channel_id);
        self.put_channel(port_id, channel_id, &end)?;
        let version = end.version.clone();
        self.module_callback_chan_open(port_id, channel_id, &version)
    }

    /// Completes the channel handshake on side B.
    ///
    /// # Errors
    ///
    /// Proof/state errors per [`IbcError`].
    pub fn chan_open_confirm(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        proof_ack: ProofData,
    ) -> Result<(), IbcError> {
        let mut end = self.channel(port_id, channel_id)?;
        if end.state != ChannelState::TryOpen {
            return Err(IbcError::InvalidState(format!(
                "chan_open_confirm on {:?} channel",
                end.state
            )));
        }
        let connection = self.open_connection(&end.connection_id)?;
        let counterparty_channel_id =
            end.counterparty_channel_id.clone().expect("TryOpen implies counterparty id");
        let expected = ChannelEnd {
            state: ChannelState::Open,
            ordering: end.ordering,
            counterparty_port_id: port_id.clone(),
            counterparty_channel_id: Some(channel_id.clone()),
            connection_id: connection
                .counterparty_connection_id
                .clone()
                .expect("open connection has counterparty id"),
            version: end.version.clone(),
        };
        self.verify_membership(
            &connection.client_id,
            &proof_ack,
            &path::channel(&end.counterparty_port_id, &counterparty_channel_id),
            &expected.encode(),
        )?;
        end.state = ChannelState::Open;
        self.put_channel(port_id, channel_id, &end)?;
        let version = end.version.clone();
        self.module_callback_chan_open(port_id, channel_id, &version)
    }

    /// Closes a channel end from this side (`ChanCloseInit`). Packets can
    /// no longer be sent or received on it; in-flight packets can still be
    /// timed out.
    ///
    /// # Errors
    ///
    /// [`IbcError::InvalidState`] unless the channel is open.
    pub fn chan_close_init(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
    ) -> Result<(), IbcError> {
        let mut end = self.channel(port_id, channel_id)?;
        if end.state != ChannelState::Open {
            return Err(IbcError::InvalidState(format!(
                "chan_close_init on {:?} channel",
                end.state
            )));
        }
        end.state = ChannelState::Closed;
        self.put_channel(port_id, channel_id, &end)
    }

    /// Closes this end after the counterparty proved it closed first
    /// (`ChanCloseConfirm`).
    ///
    /// # Errors
    ///
    /// [`IbcError::InvalidState`] unless open; proof errors otherwise.
    pub fn chan_close_confirm(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        proof_closed: ProofData,
    ) -> Result<(), IbcError> {
        let mut end = self.channel(port_id, channel_id)?;
        if end.state != ChannelState::Open {
            return Err(IbcError::InvalidState(format!(
                "chan_close_confirm on {:?} channel",
                end.state
            )));
        }
        let connection = self.open_connection(&end.connection_id)?;
        let counterparty_channel_id =
            end.counterparty_channel_id.clone().expect("open channel has counterparty id");
        let expected = ChannelEnd {
            state: ChannelState::Closed,
            ordering: end.ordering,
            counterparty_port_id: port_id.clone(),
            counterparty_channel_id: Some(channel_id.clone()),
            connection_id: connection
                .counterparty_connection_id
                .clone()
                .expect("open connection has counterparty id"),
            version: end.version.clone(),
        };
        self.verify_membership(
            &connection.client_id,
            &proof_closed,
            &path::channel(&end.counterparty_port_id, &counterparty_channel_id),
            &expected.encode(),
        )?;
        end.state = ChannelState::Closed;
        self.put_channel(port_id, channel_id, &end)
    }

    fn module_callback_chan_open(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        version: &str,
    ) -> Result<(), IbcError> {
        let module =
            self.modules.get_mut(port_id).ok_or_else(|| IbcError::UnboundPort(port_id.clone()))?;
        module.on_chan_open(port_id, channel_id, version)
    }

    // ------------------------------------------------------------------
    // ICS-04: packets
    // ------------------------------------------------------------------

    fn init_sequences(&mut self, port_id: &PortId, channel_id: &ChannelId) -> Result<(), IbcError> {
        self.store.set(&path::next_sequence_send(port_id, channel_id), &1u64.to_be_bytes())?;
        self.store.set(&path::next_sequence_recv(port_id, channel_id), &1u64.to_be_bytes())?;
        Ok(())
    }

    fn read_sequence(&self, key: &[u8]) -> Result<u64, IbcError> {
        let bytes = self
            .store
            .get(key)?
            .ok_or_else(|| IbcError::Store("missing sequence counter".into()))?;
        let arr: [u8; 8] = bytes
            .as_slice()
            .try_into()
            .map_err(|_| IbcError::Store("corrupt sequence counter".into()))?;
        Ok(u64::from_be_bytes(arr))
    }

    /// Next sequence number that [`Self::send_packet`] will assign.
    ///
    /// # Errors
    ///
    /// [`IbcError::Store`] if the channel's counters are missing.
    pub fn next_sequence_send(
        &self,
        port_id: &PortId,
        channel_id: &ChannelId,
    ) -> Result<u64, IbcError> {
        self.read_sequence(&path::next_sequence_send(port_id, channel_id))
    }

    /// Sends a packet: assigns the next sequence, stores the commitment,
    /// emits [`IbcEvent::SendPacket`] (Alg. 1, `SendPacket`).
    ///
    /// # Errors
    ///
    /// State errors when the channel is not open.
    pub fn send_packet(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        payload: Vec<u8>,
        timeout: Timeout,
    ) -> Result<Packet, IbcError> {
        let end = self.channel(port_id, channel_id)?;
        if !end.is_open() {
            return Err(IbcError::InvalidState("channel not open".into()));
        }
        let sequence = self.next_sequence_send(port_id, channel_id)?;
        self.store
            .set(&path::next_sequence_send(port_id, channel_id), &(sequence + 1).to_be_bytes())?;
        let packet = Packet {
            sequence,
            source_port: port_id.clone(),
            source_channel: channel_id.clone(),
            destination_port: end.counterparty_port_id.clone(),
            destination_channel: end
                .counterparty_channel_id
                .clone()
                .expect("open channel has counterparty id"),
            payload,
            timeout,
        };
        self.store.set(
            &path::packet_commitment(port_id, channel_id, sequence),
            packet.commitment().as_bytes(),
        )?;
        self.events.push(IbcEvent::SendPacket { packet: packet.clone() });
        Ok(packet)
    }

    /// Receives a packet (§II steps 3–4; Alg. 1, `ReceivePacket`):
    /// verifies the commitment proof, rejects duplicates via the (sealed)
    /// receipt, delivers to the application and commits the
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// [`IbcError::DuplicatePacket`] on redelivery, [`IbcError::Timeout`]
    /// past expiry, proof errors otherwise.
    pub fn recv_packet(
        &mut self,
        packet: &Packet,
        proof: ProofData,
        now: HostTime,
    ) -> Result<Acknowledgement, IbcError> {
        let end = self.channel(&packet.destination_port, &packet.destination_channel)?;
        if !end.is_open() {
            return Err(IbcError::InvalidState("channel not open".into()));
        }
        if end.counterparty_port_id != packet.source_port
            || end.counterparty_channel_id.as_ref() != Some(&packet.source_channel)
        {
            return Err(IbcError::InvalidState("packet routed to wrong channel".into()));
        }
        if packet.timeout.has_expired(now.height, now.timestamp_ms) {
            return Err(IbcError::Timeout("packet expired before delivery".into()));
        }

        // Verify the commitment on the source chain.
        let connection = self.open_connection(&end.connection_id)?;
        self.verify_membership(
            &connection.client_id,
            &proof,
            &path::packet_commitment(&packet.source_port, &packet.source_channel, packet.sequence),
            packet.commitment().as_bytes(),
        )?;

        // Replay protection (Alg. 1 line 37: `assert ph ∉ trie`). A sealed
        // receipt slot reads as an error — exactly "already delivered".
        let receipt_key = path::packet_receipt(
            &packet.destination_port,
            &packet.destination_channel,
            packet.sequence,
        );
        match self.store.get(&receipt_key) {
            Ok(None) => {}
            Ok(Some(_)) | Err(_) => return Err(IbcError::DuplicatePacket),
        }
        if end.ordering == Ordering::Ordered {
            let expected = self.read_sequence(&path::next_sequence_recv(
                &packet.destination_port,
                &packet.destination_channel,
            ))?;
            if packet.sequence != expected {
                return Err(IbcError::InvalidState(format!(
                    "ordered channel expects sequence {expected}, got {}",
                    packet.sequence
                )));
            }
            self.store.set(
                &path::next_sequence_recv(&packet.destination_port, &packet.destination_channel),
                &(expected + 1).to_be_bytes(),
            )?;
        }
        self.store.set(&receipt_key, &[1])?;
        if self.config.seal_receipts {
            self.store.seal(&receipt_key)?;
        }

        // Deliver to the application (§II step 5: deliver payload).
        let module = self
            .modules
            .get_mut(&packet.destination_port)
            .ok_or_else(|| IbcError::UnboundPort(packet.destination_port.clone()))?;
        let ack = module.on_recv_packet(packet);

        // Commit the acknowledgement for relay back to the source.
        self.store.set(
            &path::packet_ack(
                &packet.destination_port,
                &packet.destination_channel,
                packet.sequence,
            ),
            ack.commitment().as_bytes(),
        )?;
        self.events.push(IbcEvent::RecvPacket { packet: packet.clone() });
        self.events
            .push(IbcEvent::WriteAcknowledgement { packet: packet.clone(), ack: ack.clone() });
        Ok(ack)
    }

    /// Processes the acknowledgement for a packet we sent (§II step 6):
    /// verifies the ack proof, clears the commitment, notifies the app.
    ///
    /// # Errors
    ///
    /// [`IbcError::DuplicatePacket`] if the commitment is already gone;
    /// proof errors otherwise.
    pub fn acknowledge_packet(
        &mut self,
        packet: &Packet,
        ack: &Acknowledgement,
        proof: ProofData,
    ) -> Result<(), IbcError> {
        let end = self.channel(&packet.source_port, &packet.source_channel)?;
        let commitment_key =
            path::packet_commitment(&packet.source_port, &packet.source_channel, packet.sequence);
        let stored = self.store.get(&commitment_key)?.ok_or(IbcError::DuplicatePacket)?;
        if stored != packet.commitment().as_bytes() {
            return Err(IbcError::InvalidProof("commitment mismatch".into()));
        }
        let connection = self.open_connection(&end.connection_id)?;
        self.verify_membership(
            &connection.client_id,
            &proof,
            &path::packet_ack(
                &packet.destination_port,
                &packet.destination_channel,
                packet.sequence,
            ),
            ack.commitment().as_bytes(),
        )?;
        self.store.delete(&commitment_key)?;
        let module = self
            .modules
            .get_mut(&packet.source_port)
            .ok_or_else(|| IbcError::UnboundPort(packet.source_port.clone()))?;
        module.on_acknowledge(packet, ack)?;
        self.events.push(IbcEvent::AcknowledgePacket { packet: packet.clone() });
        Ok(())
    }

    /// Times out an unsent-in-time packet: verifies expiry at the proven
    /// counterparty height and the receipt's absence, then clears the
    /// commitment and refunds via the app.
    ///
    /// # Errors
    ///
    /// [`IbcError::Timeout`] if the packet has not expired at the proven
    /// height; proof errors otherwise. Ordered channels are not supported
    /// (transfer channels are unordered).
    pub fn timeout_packet(
        &mut self,
        packet: &Packet,
        proof_unreceived: ProofData,
    ) -> Result<(), IbcError> {
        let end = self.channel(&packet.source_port, &packet.source_channel)?;
        if end.ordering == Ordering::Ordered {
            return Err(IbcError::InvalidState(
                "timeout on ordered channels is not supported".into(),
            ));
        }
        let commitment_key =
            path::packet_commitment(&packet.source_port, &packet.source_channel, packet.sequence);
        let stored = self.store.get(&commitment_key)?.ok_or(IbcError::DuplicatePacket)?;
        if stored != packet.commitment().as_bytes() {
            return Err(IbcError::InvalidProof("commitment mismatch".into()));
        }
        let connection = self.open_connection(&end.connection_id)?;
        let client = self.client(&connection.client_id)?;
        let consensus = client.consensus_state(proof_unreceived.height).ok_or_else(|| {
            IbcError::InvalidProof(format!(
                "no consensus state at height {}",
                proof_unreceived.height
            ))
        })?;
        if !packet.timeout.has_expired(proof_unreceived.height, consensus.timestamp_ms) {
            return Err(IbcError::Timeout("packet has not expired at the proven height".into()));
        }
        client.verify_non_membership(
            proof_unreceived.height,
            &path::packet_receipt(
                &packet.destination_port,
                &packet.destination_channel,
                packet.sequence,
            ),
            &proof_unreceived.bytes,
        )?;
        self.store.delete(&commitment_key)?;
        let module = self
            .modules
            .get_mut(&packet.source_port)
            .ok_or_else(|| IbcError::UnboundPort(packet.source_port.clone()))?;
        module.on_timeout(packet)?;
        self.events.push(IbcEvent::TimeoutPacket { packet: packet.clone() });
        Ok(())
    }
}

impl<S: ProvableStore> core::fmt::Debug for IbcHandler<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("IbcHandler")
            .field("clients", &self.clients.len())
            .field("modules", &self.modules.len())
            .field("root", &self.root())
            .finish()
    }
}
