//! ICS-04: channels, packets and commitments.

use serde::{Deserialize, Serialize};
use sim_crypto::{sha256, Hash, Sha256};

use crate::types::{ChannelId, ConnectionId, Height, PortId, TimestampMs};

/// Handshake progress of a channel end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelState {
    /// `ChanOpenInit` executed.
    Init,
    /// `ChanOpenTry` executed.
    TryOpen,
    /// Open for packets.
    Open,
    /// Closed (by app or after an ordered-channel timeout).
    Closed,
}

/// Packet delivery ordering of a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ordering {
    /// Packets may be delivered in any order (each at most once).
    Unordered,
    /// Packets must be delivered in sequence order.
    Ordered,
}

/// One side of an IBC channel (a packet stream multiplexed over a
/// connection, identified by ⟨port, channel⟩ — §III-A).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelEnd {
    /// Handshake state.
    pub state: ChannelState,
    /// Delivery ordering.
    pub ordering: Ordering,
    /// Counterparty port.
    pub counterparty_port_id: PortId,
    /// Counterparty channel id (known after Try/Ack).
    pub counterparty_channel_id: Option<ChannelId>,
    /// The connection this channel runs over.
    pub connection_id: ConnectionId,
    /// Application version string.
    pub version: String,
}

impl ChannelEnd {
    /// Serialized form stored in the provable store.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("channel end serializes")
    }

    /// Parses the stored form.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }

    /// Whether packets may flow.
    pub fn is_open(&self) -> bool {
        self.state == ChannelState::Open
    }
}

/// When a packet expires. At least one bound must be set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeout {
    /// Expires when the destination chain passes this height (0 = unset).
    pub height: Height,
    /// Expires when the destination's time passes this (0 = unset).
    pub timestamp_ms: TimestampMs,
}

impl Timeout {
    /// A timeout that never triggers (for tests and control channels).
    pub const NEVER: Timeout = Timeout { height: u64::MAX, timestamp_ms: u64::MAX };

    /// A height-only timeout.
    pub fn at_height(height: Height) -> Self {
        Self { height, timestamp_ms: u64::MAX }
    }

    /// A timestamp-only timeout.
    pub fn at_time(timestamp_ms: TimestampMs) -> Self {
        Self { height: u64::MAX, timestamp_ms }
    }

    /// Whether the packet has expired given the destination chain's view.
    pub fn has_expired(&self, dest_height: Height, dest_time_ms: TimestampMs) -> bool {
        dest_height >= self.height || dest_time_ms >= self.timestamp_ms
    }
}

/// An IBC packet (§II step 1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Per-channel sequence number.
    pub sequence: u64,
    /// Source port.
    pub source_port: PortId,
    /// Source channel.
    pub source_channel: ChannelId,
    /// Destination port.
    pub destination_port: PortId,
    /// Destination channel.
    pub destination_channel: ChannelId,
    /// Application payload.
    pub payload: Vec<u8>,
    /// Expiry.
    pub timeout: Timeout,
}

impl Packet {
    /// The commitment stored in the source chain's provable store: a hash
    /// over everything the destination must not be able to equivocate on.
    pub fn commitment(&self) -> Hash {
        let mut hasher = Sha256::new();
        hasher.update(self.sequence.to_be_bytes());
        hasher.update(self.source_port.as_str());
        hasher.update([0]);
        hasher.update(self.source_channel.as_str());
        hasher.update([0]);
        hasher.update(self.destination_port.as_str());
        hasher.update([0]);
        hasher.update(self.destination_channel.as_str());
        hasher.update([0]);
        hasher.update(self.timeout.height.to_be_bytes());
        hasher.update(self.timeout.timestamp_ms.to_be_bytes());
        hasher.update(sha256(&self.payload));
        hasher.finalize()
    }

    /// Wire encoding (relayers carry packets verbatim).
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("packet serializes")
    }

    /// Parses the wire encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }
}

/// An application acknowledgement, committed on the destination chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Acknowledgement {
    /// The application processed the packet; opaque success payload.
    Success(Vec<u8>),
    /// The application rejected the packet with an error string.
    Error(String),
}

impl Acknowledgement {
    /// Commitment hash stored under the ack path.
    pub fn commitment(&self) -> Hash {
        sha256(self.encode())
    }

    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("ack serializes")
    }

    /// Parses the wire encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }

    /// Whether this is a success acknowledgement.
    pub fn is_success(&self) -> bool {
        matches!(self, Self::Success(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> Packet {
        Packet {
            sequence: 7,
            source_port: PortId::transfer(),
            source_channel: ChannelId::new(0),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::new(3),
            payload: b"{\"amount\":5}".to_vec(),
            timeout: Timeout::at_height(100),
        }
    }

    #[test]
    fn commitment_binds_every_field() {
        let base = packet();
        let mut variants = Vec::new();
        let mut p = base.clone();
        p.sequence = 8;
        variants.push(p);
        let mut p = base.clone();
        p.payload = b"{\"amount\":6}".to_vec();
        variants.push(p);
        let mut p = base.clone();
        p.timeout = Timeout::at_height(101);
        variants.push(p);
        let mut p = base.clone();
        p.destination_channel = ChannelId::new(4);
        variants.push(p);
        let mut p = base.clone();
        p.source_port = PortId::named("other");
        variants.push(p);
        for variant in variants {
            assert_ne!(variant.commitment(), base.commitment());
        }
    }

    #[test]
    fn commitment_is_not_confusable_across_field_boundaries() {
        // port "ab" + channel "c" must differ from port "a" + channel "bc".
        let mut a = packet();
        a.source_port = PortId::named("ab");
        a.source_channel = ChannelId::named("c");
        let mut b = packet();
        b.source_port = PortId::named("a");
        b.source_channel = ChannelId::named("bc");
        assert_ne!(a.commitment(), b.commitment());
    }

    #[test]
    fn timeout_semantics() {
        let timeout = Timeout { height: 100, timestamp_ms: 50_000 };
        assert!(!timeout.has_expired(99, 49_999));
        assert!(timeout.has_expired(100, 0));
        assert!(timeout.has_expired(0, 50_000));
        assert!(!Timeout::NEVER.has_expired(u64::MAX - 1, u64::MAX - 1));
    }

    #[test]
    fn packet_and_ack_round_trip() {
        let p = packet();
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        let ack = Acknowledgement::Success(b"ok".to_vec());
        assert_eq!(Acknowledgement::decode(&ack.encode()).unwrap(), ack);
        assert_ne!(ack.commitment(), Acknowledgement::Error("ok".into()).commitment());
    }
}
