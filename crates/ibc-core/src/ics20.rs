//! ICS-20: fungible token transfer.
//!
//! The canonical IBC application, used by the paper's deployment to move
//! assets between Solana and Picasso. Implements escrow/mint voucher
//! semantics with denomination tracing and refunds on failure or timeout.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::channel::{Acknowledgement, Packet, Timeout};
use crate::handler::IbcHandler;
use crate::router::Module;
use crate::store::ProvableStore;
use crate::types::{ChannelId, IbcError, PortId};

/// The ICS-20 packet payload.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FungibleTokenPacketData {
    /// Denomination, possibly voucher-prefixed (`port/channel/base`).
    pub denom: String,
    /// Amount transferred.
    pub amount: u128,
    /// Sender account on the source chain.
    pub sender: String,
    /// Receiver account on the destination chain.
    pub receiver: String,
    /// Free-form memo (routing hints, invoice ids — ICS-20 v2).
    #[serde(default)]
    pub memo: String,
}

impl FungibleTokenPacketData {
    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("packet data serializes")
    }

    /// Parses the wire encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }
}

/// The escrow account name for a channel.
fn escrow_account(channel_id: &ChannelId) -> String {
    format!("escrow:{channel_id}")
}

/// The voucher prefix for tokens that travelled over `port/channel`.
fn voucher_prefix(port_id: &PortId, channel_id: &ChannelId) -> String {
    format!("{port_id}/{channel_id}/")
}

/// The ICS-20 transfer application: a minimal multi-denom ledger plus the
/// escrow/mint rules.
///
/// # Examples
///
/// ```
/// use ibc_core::ics20::TransferModule;
///
/// let mut bank = TransferModule::new();
/// bank.mint("alice", "sol", 100);
/// assert_eq!(bank.balance("alice", "sol"), 100);
/// ```
#[derive(Debug, Default)]
pub struct TransferModule {
    balances: HashMap<(String, String), u128>,
}

impl TransferModule {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits `amount` of `denom` to `account` (genesis/faucet/mint).
    pub fn mint(&mut self, account: &str, denom: &str, amount: u128) {
        *self.balances.entry((account.to_string(), denom.to_string())).or_default() += amount;
    }

    /// Burns `amount` of `denom` from `account`.
    ///
    /// # Errors
    ///
    /// [`IbcError::AppError`] when the balance is insufficient.
    pub fn burn(&mut self, account: &str, denom: &str, amount: u128) -> Result<(), IbcError> {
        let balance = self.balances.entry((account.to_string(), denom.to_string())).or_default();
        if *balance < amount {
            return Err(IbcError::AppError(format!(
                "insufficient {denom} balance: {balance} < {amount}"
            )));
        }
        *balance -= amount;
        Ok(())
    }

    /// Moves `amount` of `denom` between ledger accounts.
    ///
    /// # Errors
    ///
    /// [`IbcError::AppError`] when the balance is insufficient.
    pub fn transfer_internal(
        &mut self,
        from: &str,
        to: &str,
        denom: &str,
        amount: u128,
    ) -> Result<(), IbcError> {
        self.burn(from, denom, amount)?;
        self.mint(to, denom, amount);
        Ok(())
    }

    /// Balance of `account` in `denom`.
    pub fn balance(&self, account: &str, denom: &str) -> u128 {
        self.balances.get(&(account.to_string(), denom.to_string())).copied().unwrap_or(0)
    }

    /// Total amount of `denom` across every ledger account (escrows
    /// included) — the supply an invariant checker audits against the
    /// remote escrow backing it.
    pub fn total_supply(&self, denom: &str) -> u128 {
        self.balances.iter().filter(|((_, d), _)| d == denom).map(|(_, amount)| *amount).sum()
    }

    /// The book-keeping run when this chain *sends* `data` over
    /// `(port, channel)`: burn returning vouchers, escrow native tokens.
    fn debit_sender(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        data: &FungibleTokenPacketData,
    ) -> Result<(), IbcError> {
        if data.denom.starts_with(&voucher_prefix(port_id, channel_id)) {
            // Token is returning to its origin: burn the voucher.
            self.burn(&data.sender, &data.denom, data.amount)
        } else {
            // Token is native here: escrow it.
            self.transfer_internal(
                &data.sender,
                &escrow_account(channel_id),
                &data.denom,
                data.amount,
            )
        }
    }

    /// Reverses [`Self::debit_sender`] after an error ack or a timeout.
    fn refund_sender(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        data: &FungibleTokenPacketData,
    ) -> Result<(), IbcError> {
        if data.denom.starts_with(&voucher_prefix(port_id, channel_id)) {
            self.mint(&data.sender, &data.denom, data.amount);
            Ok(())
        } else {
            self.transfer_internal(
                &escrow_account(channel_id),
                &data.sender,
                &data.denom,
                data.amount,
            )
        }
    }
}

impl Module for TransferModule {
    fn on_recv_packet(&mut self, packet: &Packet) -> Acknowledgement {
        let Some(data) = FungibleTokenPacketData::decode(&packet.payload) else {
            return Acknowledgement::Error("malformed ICS-20 packet".into());
        };
        let incoming_prefix = voucher_prefix(&packet.source_port, &packet.source_channel);
        let result = if let Some(base) = data.denom.strip_prefix(&incoming_prefix) {
            // Token returning home: release from escrow.
            self.transfer_internal(
                &escrow_account(&packet.destination_channel),
                &data.receiver,
                base,
                data.amount,
            )
        } else {
            // Foreign token arriving: mint a voucher with our prefix.
            let voucher = format!(
                "{}{}",
                voucher_prefix(&packet.destination_port, &packet.destination_channel),
                data.denom
            );
            self.mint(&data.receiver, &voucher, data.amount);
            Ok(())
        };
        match result {
            Ok(()) => Acknowledgement::Success(b"AQ==".to_vec()),
            Err(err) => Acknowledgement::Error(err.to_string()),
        }
    }

    fn on_acknowledge(&mut self, packet: &Packet, ack: &Acknowledgement) -> Result<(), IbcError> {
        if ack.is_success() {
            return Ok(());
        }
        let data = FungibleTokenPacketData::decode(&packet.payload)
            .ok_or_else(|| IbcError::AppError("malformed ICS-20 packet".into()))?;
        self.refund_sender(&packet.source_port, &packet.source_channel, &data)
    }

    fn on_timeout(&mut self, packet: &Packet) -> Result<(), IbcError> {
        let data = FungibleTokenPacketData::decode(&packet.payload)
            .ok_or_else(|| IbcError::AppError("malformed ICS-20 packet".into()))?;
        self.refund_sender(&packet.source_port, &packet.source_channel, &data)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Initiates an ICS-20 transfer on `handler`: debits the sender in the
/// transfer module's ledger, then commits the packet.
///
/// # Errors
///
/// [`IbcError::UnboundPort`] when no [`TransferModule`] is bound to
/// `port_id`; ledger or channel errors otherwise.
#[allow(clippy::too_many_arguments)]
pub fn send_transfer<S: ProvableStore>(
    handler: &mut IbcHandler<S>,
    port_id: &PortId,
    channel_id: &ChannelId,
    denom: &str,
    amount: u128,
    sender: &str,
    receiver: &str,
    memo: &str,
    timeout: Timeout,
) -> Result<Packet, IbcError> {
    let data = FungibleTokenPacketData {
        denom: denom.to_string(),
        amount,
        sender: sender.to_string(),
        receiver: receiver.to_string(),
        memo: memo.to_string(),
    };
    {
        let module =
            handler.module_mut(port_id).ok_or_else(|| IbcError::UnboundPort(port_id.clone()))?;
        let transfer = module
            .as_any_mut()
            .downcast_mut::<TransferModule>()
            .ok_or_else(|| IbcError::UnboundPort(port_id.clone()))?;
        transfer.debit_sender(port_id, channel_id, &data)?;
    }
    match handler.send_packet(port_id, channel_id, data.encode(), timeout) {
        Ok(packet) => Ok(packet),
        Err(err) => {
            // Undo the debit if the packet could not be committed.
            let module = handler.module_mut(port_id).expect("module bound above");
            let transfer =
                module.as_any_mut().downcast_mut::<TransferModule>().expect("checked above");
            transfer
                .refund_sender(port_id, channel_id, &data)
                .expect("refund of a just-made debit cannot fail");
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ChannelId;

    fn packet(payload: Vec<u8>) -> Packet {
        Packet {
            sequence: 1,
            source_port: PortId::transfer(),
            source_channel: ChannelId::new(0),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::new(7),
            payload,
            timeout: Timeout::NEVER,
        }
    }

    #[test]
    fn foreign_token_mints_prefixed_voucher() {
        let mut module = TransferModule::new();
        let data = FungibleTokenPacketData {
            denom: "sol".into(),
            amount: 50,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        let ack = module.on_recv_packet(&packet(data.encode()));
        assert!(ack.is_success());
        assert_eq!(module.balance("bob", "transfer/channel-7/sol"), 50);
    }

    #[test]
    fn returning_token_unescrows() {
        let mut module = TransferModule::new();
        // Channel-7's escrow holds 30 "pica" from an earlier inbound leg.
        module.mint(&escrow_account(&ChannelId::new(7)), "pica", 30);
        let data = FungibleTokenPacketData {
            // Sender's chain sees it as their voucher over (transfer, channel-0).
            denom: "transfer/channel-0/pica".into(),
            amount: 30,
            sender: "bob".into(),
            receiver: "alice".into(),
            memo: String::new(),
        };
        let ack = module.on_recv_packet(&packet(data.encode()));
        assert!(ack.is_success(), "{ack:?}");
        assert_eq!(module.balance("alice", "pica"), 30);
        assert_eq!(module.balance(&escrow_account(&ChannelId::new(7)), "pica"), 0);
    }

    #[test]
    fn insufficient_escrow_yields_error_ack() {
        let mut module = TransferModule::new();
        let data = FungibleTokenPacketData {
            denom: "transfer/channel-0/pica".into(),
            amount: 30,
            sender: "bob".into(),
            receiver: "alice".into(),
            memo: String::new(),
        };
        let ack = module.on_recv_packet(&packet(data.encode()));
        assert!(!ack.is_success());
        assert_eq!(module.balance("alice", "pica"), 0);
    }

    #[test]
    fn malformed_payload_yields_error_ack_not_panic() {
        let mut module = TransferModule::new();
        let ack = module.on_recv_packet(&packet(b"not json".to_vec()));
        assert!(!ack.is_success());
    }

    #[test]
    fn error_ack_refunds_escrowed_tokens() {
        let mut module = TransferModule::new();
        module.mint("alice", "sol", 100);
        let data = FungibleTokenPacketData {
            denom: "sol".into(),
            amount: 40,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        let mut outbound = packet(data.encode());
        outbound.source_channel = ChannelId::new(0);
        module.debit_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        assert_eq!(module.balance("alice", "sol"), 60);

        module.on_acknowledge(&outbound, &Acknowledgement::Error("nope".into())).unwrap();
        assert_eq!(module.balance("alice", "sol"), 100);

        // A success ack does not refund.
        module.debit_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        module.on_acknowledge(&outbound, &Acknowledgement::Success(b"AQ==".to_vec())).unwrap();
        assert_eq!(module.balance("alice", "sol"), 60);
    }

    #[test]
    fn timeout_refunds_vouchers_by_reminting() {
        let mut module = TransferModule::new();
        let voucher = "transfer/channel-0/pica";
        module.mint("alice", voucher, 25);
        let data = FungibleTokenPacketData {
            denom: voucher.into(),
            amount: 25,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        let mut outbound = packet(data.encode());
        outbound.source_channel = ChannelId::new(0);
        module.debit_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        assert_eq!(module.balance("alice", voucher), 0, "voucher burned on send");
        module.on_timeout(&outbound).unwrap();
        assert_eq!(module.balance("alice", voucher), 25, "voucher re-minted");
    }

    #[test]
    fn burn_rejects_overdraw() {
        let mut module = TransferModule::new();
        module.mint("a", "x", 5);
        assert!(module.burn("a", "x", 6).is_err());
        assert_eq!(module.balance("a", "x"), 5);
    }
}
