//! ICS-20: fungible token transfer.
//!
//! The canonical IBC application, used by the paper's deployment to move
//! assets between Solana and Picasso. Implements escrow/mint voucher
//! semantics with denomination tracing and refunds on failure or timeout.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::channel::{Acknowledgement, Packet, Timeout};
use crate::handler::IbcHandler;
use crate::router::Module;
use crate::store::ProvableStore;
use crate::types::{ChannelId, IbcError, PortId};

/// The ICS-20 packet payload.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FungibleTokenPacketData {
    /// Denomination, possibly voucher-prefixed (`port/channel/base`).
    pub denom: String,
    /// Amount transferred.
    pub amount: u128,
    /// Sender account on the source chain.
    pub sender: String,
    /// Receiver account on the destination chain.
    pub receiver: String,
    /// Free-form memo (routing hints, invoice ids — ICS-20 v2).
    #[serde(default)]
    pub memo: String,
}

impl FungibleTokenPacketData {
    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("packet data serializes")
    }

    /// Parses the wire encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }
}

/// The escrow account name for a channel.
pub fn escrow_account(channel_id: &ChannelId) -> String {
    format!("escrow:{channel_id}")
}

/// The voucher prefix for tokens that travelled over `port/channel`.
pub fn voucher_prefix(port_id: &PortId, channel_id: &ChannelId) -> String {
    format!("{port_id}/{channel_id}/")
}

/// Segment-wise voucher-prefix match: returns the base denomination when
/// `denom` is a voucher minted over exactly `(port_id, channel_id)`.
///
/// Unlike a plain `starts_with` test this requires the port and channel to
/// be whole `/`-separated segments *and* the remaining base denomination to
/// be non-empty — a native denom whose name textually embeds
/// `port/channel/` as a prefix with nothing after it (e.g. the literal
/// string `"transfer/channel-0/"`) is classified as native, not as a
/// voucher for the empty denom.
pub fn split_voucher<'a>(
    denom: &'a str,
    port_id: &PortId,
    channel_id: &ChannelId,
) -> Option<&'a str> {
    let mut segments = denom.splitn(3, '/');
    let port = segments.next()?;
    let channel = segments.next()?;
    let base = segments.next()?;
    (port == port_id.as_str() && channel == channel_id.as_str() && !base.is_empty()).then_some(base)
}

/// Splits one voucher-prefix layer off `denom` regardless of which
/// port/channel minted it: `(port, channel, rest)`.
///
/// Used to walk stacked multi-hop prefixes
/// (`transfer/channel-1/transfer/channel-0/base`) when rendering denom
/// traces or auditing voucher supply; returns [`None`] for denoms that do
/// not carry at least `port/channel/base` with a non-empty base.
pub fn pop_voucher_prefix(denom: &str) -> Option<(&str, &str, &str)> {
    let mut segments = denom.splitn(3, '/');
    let port = segments.next()?;
    let channel = segments.next()?;
    let rest = segments.next()?;
    (!port.is_empty() && !channel.is_empty() && !rest.is_empty()).then_some((port, channel, rest))
}

/// Strips every stacked voucher prefix off `denom`, yielding the base
/// denomination and the number of hops it has travelled.
pub fn base_denom(denom: &str) -> (&str, usize) {
    let mut rest = denom;
    let mut hops = 0;
    while let Some((_, _, inner)) = pop_voucher_prefix(rest) {
        rest = inner;
        hops += 1;
    }
    (rest, hops)
}

/// The ICS-20 transfer application: a minimal multi-denom ledger plus the
/// escrow/mint rules.
///
/// # Examples
///
/// ```
/// use ibc_core::ics20::TransferModule;
///
/// let mut bank = TransferModule::new();
/// bank.mint("alice", "sol", 100);
/// assert_eq!(bank.balance("alice", "sol"), 100);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TransferModule {
    balances: HashMap<(String, String), u128>,
}

impl TransferModule {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits `amount` of `denom` to `account` (genesis/faucet/mint).
    pub fn mint(&mut self, account: &str, denom: &str, amount: u128) {
        *self.balances.entry((account.to_string(), denom.to_string())).or_default() += amount;
    }

    /// Burns `amount` of `denom` from `account`.
    ///
    /// # Errors
    ///
    /// [`IbcError::AppError`] when the balance is insufficient.
    pub fn burn(&mut self, account: &str, denom: &str, amount: u128) -> Result<(), IbcError> {
        let balance = self.balances.entry((account.to_string(), denom.to_string())).or_default();
        if *balance < amount {
            return Err(IbcError::AppError(format!(
                "insufficient {denom} balance: {balance} < {amount}"
            )));
        }
        *balance -= amount;
        Ok(())
    }

    /// Moves `amount` of `denom` between ledger accounts.
    ///
    /// # Errors
    ///
    /// [`IbcError::AppError`] when the balance is insufficient.
    pub fn transfer_internal(
        &mut self,
        from: &str,
        to: &str,
        denom: &str,
        amount: u128,
    ) -> Result<(), IbcError> {
        self.burn(from, denom, amount)?;
        self.mint(to, denom, amount);
        Ok(())
    }

    /// Balance of `account` in `denom`.
    pub fn balance(&self, account: &str, denom: &str) -> u128 {
        self.balances.get(&(account.to_string(), denom.to_string())).copied().unwrap_or(0)
    }

    /// Total amount of `denom` across every ledger account (escrows
    /// included) — the supply an invariant checker audits against the
    /// remote escrow backing it.
    pub fn total_supply(&self, denom: &str) -> u128 {
        self.balances.iter().filter(|((_, d), _)| d == denom).map(|(_, amount)| *amount).sum()
    }

    /// The book-keeping run when this chain *sends* `data` over
    /// `(port, channel)`: burn returning vouchers, escrow native tokens.
    ///
    /// Public so application/middleware crates (e.g. the packet-forward
    /// middleware in `apps`) can drive the same escrow discipline.
    ///
    /// # Errors
    ///
    /// [`IbcError::AppError`] when the sender's balance is insufficient.
    pub fn debit_sender(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        data: &FungibleTokenPacketData,
    ) -> Result<(), IbcError> {
        if split_voucher(&data.denom, port_id, channel_id).is_some() {
            // Token is returning to its origin: burn the voucher.
            self.burn(&data.sender, &data.denom, data.amount)
        } else {
            // Token is native here: escrow it.
            self.transfer_internal(
                &data.sender,
                &escrow_account(channel_id),
                &data.denom,
                data.amount,
            )
        }
    }

    /// Reverses [`Self::debit_sender`] after an error ack or a timeout.
    ///
    /// # Errors
    ///
    /// [`IbcError::AppError`] when the escrow balance is insufficient.
    pub fn refund_sender(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        data: &FungibleTokenPacketData,
    ) -> Result<(), IbcError> {
        if split_voucher(&data.denom, port_id, channel_id).is_some() {
            self.mint(&data.sender, &data.denom, data.amount);
            Ok(())
        } else {
            self.transfer_internal(
                &escrow_account(channel_id),
                &data.sender,
                &data.denom,
                data.amount,
            )
        }
    }

    /// The book-keeping run when this chain *receives* `denom` over
    /// `packet`'s destination end, crediting `account`: release escrowed
    /// tokens when the denom is returning home, mint a locally-prefixed
    /// voucher otherwise. Returns the local denomination credited.
    ///
    /// # Errors
    ///
    /// [`IbcError::AppError`] when a returning token's escrow cannot
    /// cover the amount.
    pub fn credit_receiver(
        &mut self,
        packet: &Packet,
        denom: &str,
        amount: u128,
        account: &str,
    ) -> Result<String, IbcError> {
        match split_voucher(denom, &packet.source_port, &packet.source_channel) {
            Some(base) => {
                // Token returning home: release from escrow.
                self.transfer_internal(
                    &escrow_account(&packet.destination_channel),
                    account,
                    base,
                    amount,
                )?;
                Ok(base.to_string())
            }
            None => {
                // Foreign token arriving: mint a voucher with our prefix.
                let voucher = format!(
                    "{}{}",
                    voucher_prefix(&packet.destination_port, &packet.destination_channel),
                    denom
                );
                self.mint(account, &voucher, amount);
                Ok(voucher)
            }
        }
    }

    /// Every denomination the ledger has ever held a balance in, sorted —
    /// deterministic iteration for supply audits over the internal map.
    pub fn denoms(&self) -> Vec<String> {
        let mut denoms: Vec<String> = self.balances.keys().map(|(_, d)| d.clone()).collect();
        denoms.sort();
        denoms.dedup();
        denoms
    }
}

impl Module for TransferModule {
    fn on_recv_packet(&mut self, packet: &Packet) -> Acknowledgement {
        let Some(data) = FungibleTokenPacketData::decode(&packet.payload) else {
            return Acknowledgement::Error("malformed ICS-20 packet".into());
        };
        match self.credit_receiver(packet, &data.denom, data.amount, &data.receiver) {
            Ok(_) => Acknowledgement::Success(b"AQ==".to_vec()),
            Err(err) => Acknowledgement::Error(err.to_string()),
        }
    }

    fn on_acknowledge(&mut self, packet: &Packet, ack: &Acknowledgement) -> Result<(), IbcError> {
        if ack.is_success() {
            return Ok(());
        }
        let data = FungibleTokenPacketData::decode(&packet.payload)
            .ok_or_else(|| IbcError::AppError("malformed ICS-20 packet".into()))?;
        self.refund_sender(&packet.source_port, &packet.source_channel, &data)
    }

    fn on_timeout(&mut self, packet: &Packet) -> Result<(), IbcError> {
        let data = FungibleTokenPacketData::decode(&packet.payload)
            .ok_or_else(|| IbcError::AppError("malformed ICS-20 packet".into()))?;
        self.refund_sender(&packet.source_port, &packet.source_channel, &data)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn ics20(&self) -> Option<&TransferModule> {
        Some(self)
    }

    fn ics20_mut(&mut self) -> Option<&mut TransferModule> {
        Some(self)
    }
}

/// Initiates an ICS-20 transfer on `handler`: debits the sender in the
/// transfer module's ledger, then commits the packet.
///
/// The port may be bound to a bare [`TransferModule`] or to any middleware
/// stack exposing one through [`Module::ics20_mut`] (e.g. the multi-hop
/// forward middleware).
///
/// # Errors
///
/// [`IbcError::UnboundPort`] when no ICS-20 ledger is reachable behind
/// `port_id`; ledger or channel errors otherwise.
#[allow(clippy::too_many_arguments)]
pub fn send_transfer<S: ProvableStore>(
    handler: &mut IbcHandler<S>,
    port_id: &PortId,
    channel_id: &ChannelId,
    denom: &str,
    amount: u128,
    sender: &str,
    receiver: &str,
    memo: &str,
    timeout: Timeout,
) -> Result<Packet, IbcError> {
    let data = FungibleTokenPacketData {
        denom: denom.to_string(),
        amount,
        sender: sender.to_string(),
        receiver: receiver.to_string(),
        memo: memo.to_string(),
    };
    {
        let module =
            handler.module_mut(port_id).ok_or_else(|| IbcError::UnboundPort(port_id.clone()))?;
        let transfer = module.ics20_mut().ok_or_else(|| IbcError::UnboundPort(port_id.clone()))?;
        transfer.debit_sender(port_id, channel_id, &data)?;
    }
    match handler.send_packet(port_id, channel_id, data.encode(), timeout) {
        Ok(packet) => Ok(packet),
        Err(err) => {
            // Undo the debit if the packet could not be committed.
            let module = handler.module_mut(port_id).expect("module bound above");
            let transfer = module.ics20_mut().expect("checked above");
            transfer
                .refund_sender(port_id, channel_id, &data)
                .expect("refund of a just-made debit cannot fail");
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ChannelId;

    fn packet(payload: Vec<u8>) -> Packet {
        Packet {
            sequence: 1,
            source_port: PortId::transfer(),
            source_channel: ChannelId::new(0),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::new(7),
            payload,
            timeout: Timeout::NEVER,
        }
    }

    #[test]
    fn foreign_token_mints_prefixed_voucher() {
        let mut module = TransferModule::new();
        let data = FungibleTokenPacketData {
            denom: "sol".into(),
            amount: 50,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        let ack = module.on_recv_packet(&packet(data.encode()));
        assert!(ack.is_success());
        assert_eq!(module.balance("bob", "transfer/channel-7/sol"), 50);
    }

    #[test]
    fn returning_token_unescrows() {
        let mut module = TransferModule::new();
        // Channel-7's escrow holds 30 "pica" from an earlier inbound leg.
        module.mint(&escrow_account(&ChannelId::new(7)), "pica", 30);
        let data = FungibleTokenPacketData {
            // Sender's chain sees it as their voucher over (transfer, channel-0).
            denom: "transfer/channel-0/pica".into(),
            amount: 30,
            sender: "bob".into(),
            receiver: "alice".into(),
            memo: String::new(),
        };
        let ack = module.on_recv_packet(&packet(data.encode()));
        assert!(ack.is_success(), "{ack:?}");
        assert_eq!(module.balance("alice", "pica"), 30);
        assert_eq!(module.balance(&escrow_account(&ChannelId::new(7)), "pica"), 0);
    }

    #[test]
    fn insufficient_escrow_yields_error_ack() {
        let mut module = TransferModule::new();
        let data = FungibleTokenPacketData {
            denom: "transfer/channel-0/pica".into(),
            amount: 30,
            sender: "bob".into(),
            receiver: "alice".into(),
            memo: String::new(),
        };
        let ack = module.on_recv_packet(&packet(data.encode()));
        assert!(!ack.is_success());
        assert_eq!(module.balance("alice", "pica"), 0);
    }

    #[test]
    fn malformed_payload_yields_error_ack_not_panic() {
        let mut module = TransferModule::new();
        let ack = module.on_recv_packet(&packet(b"not json".to_vec()));
        assert!(!ack.is_success());
    }

    #[test]
    fn error_ack_refunds_escrowed_tokens() {
        let mut module = TransferModule::new();
        module.mint("alice", "sol", 100);
        let data = FungibleTokenPacketData {
            denom: "sol".into(),
            amount: 40,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        let mut outbound = packet(data.encode());
        outbound.source_channel = ChannelId::new(0);
        module.debit_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        assert_eq!(module.balance("alice", "sol"), 60);

        module.on_acknowledge(&outbound, &Acknowledgement::Error("nope".into())).unwrap();
        assert_eq!(module.balance("alice", "sol"), 100);

        // A success ack does not refund.
        module.debit_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        module.on_acknowledge(&outbound, &Acknowledgement::Success(b"AQ==".to_vec())).unwrap();
        assert_eq!(module.balance("alice", "sol"), 60);
    }

    #[test]
    fn timeout_refunds_vouchers_by_reminting() {
        let mut module = TransferModule::new();
        let voucher = "transfer/channel-0/pica";
        module.mint("alice", voucher, 25);
        let data = FungibleTokenPacketData {
            denom: voucher.into(),
            amount: 25,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        let mut outbound = packet(data.encode());
        outbound.source_channel = ChannelId::new(0);
        module.debit_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        assert_eq!(module.balance("alice", voucher), 0, "voucher burned on send");
        module.on_timeout(&outbound).unwrap();
        assert_eq!(module.balance("alice", voucher), 25, "voucher re-minted");
    }

    #[test]
    fn burn_rejects_overdraw() {
        let mut module = TransferModule::new();
        module.mint("a", "x", 5);
        assert!(module.burn("a", "x", 6).is_err());
        assert_eq!(module.balance("a", "x"), 5);
    }

    #[test]
    fn split_voucher_requires_whole_segments_and_nonempty_base() {
        let port = PortId::transfer();
        let chan = ChannelId::new(0);
        assert_eq!(split_voucher("transfer/channel-0/pica", &port, &chan), Some("pica"));
        // Stacked prefixes peel one layer at a time.
        assert_eq!(
            split_voucher("transfer/channel-0/transfer/channel-9/sol", &port, &chan),
            Some("transfer/channel-9/sol")
        );
        // A textual prefix with an empty base is NOT a voucher.
        assert_eq!(split_voucher("transfer/channel-0/", &port, &chan), None);
        // Wrong channel segment, missing segments, plain denoms.
        assert_eq!(split_voucher("transfer/channel-1/pica", &port, &chan), None);
        assert_eq!(split_voucher("transfer/channel-0", &port, &chan), None);
        assert_eq!(split_voucher("pica", &port, &chan), None);
    }

    #[test]
    fn native_denom_textually_embedding_prefix_is_escrowed_not_burned() {
        // Regression: a *native* denom whose name textually starts with
        // `port/channel/` but carries no base used to satisfy the old
        // `starts_with` voucher test and be burned (losing the tokens
        // instead of escrowing them).
        let mut module = TransferModule::new();
        let weird_native = "transfer/channel-0/";
        module.mint("alice", weird_native, 10);
        let data = FungibleTokenPacketData {
            denom: weird_native.into(),
            amount: 10,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        module.debit_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        assert_eq!(
            module.balance(&escrow_account(&ChannelId::new(0)), weird_native),
            10,
            "native denom must be escrowed, not burned as a voucher"
        );
        module.refund_sender(&PortId::transfer(), &ChannelId::new(0), &data).unwrap();
        assert_eq!(module.balance("alice", weird_native), 10);
    }

    #[test]
    fn recv_of_prefix_only_denom_mints_voucher_not_empty_base() {
        // Inbound packets get the same segment-wise treatment: a denom
        // equal to the incoming prefix with an empty base is treated as a
        // foreign token (stack our prefix) rather than unescrowing `""`.
        let mut module = TransferModule::new();
        let data = FungibleTokenPacketData {
            denom: "transfer/channel-0/".into(),
            amount: 5,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo: String::new(),
        };
        let ack = module.on_recv_packet(&packet(data.encode()));
        assert!(ack.is_success(), "{ack:?}");
        assert_eq!(module.balance("bob", "transfer/channel-7/transfer/channel-0/"), 5);
        assert_eq!(module.balance("bob", ""), 0);
    }

    #[test]
    fn base_denom_walks_stacked_prefixes() {
        assert_eq!(base_denom("transfer/channel-2/transfer/channel-0/wsol"), ("wsol", 2));
        assert_eq!(base_denom("transfer/channel-0/pica"), ("pica", 1));
        assert_eq!(base_denom("wsol"), ("wsol", 0));
        assert_eq!(base_denom("transfer/channel-0/"), ("transfer/channel-0/", 0));
    }
}
