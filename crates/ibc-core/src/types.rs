//! Identifiers, heights and protocol errors.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A block height on some chain (single-revision numbering).
pub type Height = u64;

/// A Unix-style timestamp in milliseconds.
pub type TimestampMs = u64;

macro_rules! identifier {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(String);

        impl $name {
            /// Creates the identifier with the conventional prefix and a
            /// numeric suffix, e.g. `connection-3`.
            pub fn new(index: u64) -> Self {
                Self(format!(concat!($prefix, "-{}"), index))
            }

            /// Wraps an arbitrary identifier string.
            pub fn named(name: impl Into<String>) -> Self {
                Self(name.into())
            }

            /// The identifier text.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

identifier!(
    /// Identifies a light client instance on a chain (`07-tendermint-5`,
    /// `guest-0`, …).
    ClientId,
    "client"
);
identifier!(
    /// Identifies a connection end.
    ConnectionId,
    "connection"
);
identifier!(
    /// Identifies a channel end (scoped by a [`PortId`]).
    ChannelId,
    "channel"
);
identifier!(
    /// Identifies an application port (`transfer`, …).
    PortId,
    "port"
);

impl PortId {
    /// The ICS-20 token-transfer port.
    pub fn transfer() -> Self {
        Self::named("transfer")
    }
}

/// Errors surfaced by the IBC handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IbcError {
    /// No client registered under the id.
    UnknownClient(ClientId),
    /// No connection with the id.
    UnknownConnection(ConnectionId),
    /// No channel with the id.
    UnknownChannel(PortId, ChannelId),
    /// A handshake message arrived for an end in the wrong state.
    InvalidState(String),
    /// Light-client verification failed.
    ClientVerification(String),
    /// A commitment proof failed to verify.
    InvalidProof(String),
    /// The packet was already relayed (duplicate delivery attempt).
    DuplicatePacket,
    /// The packet timed out (or a timeout message was premature).
    Timeout(String),
    /// No module bound to the port.
    UnboundPort(PortId),
    /// The application module rejected the packet.
    AppError(String),
    /// The underlying provable store rejected the operation.
    Store(String),
    /// Frozen client (after misbehaviour).
    FrozenClient(ClientId),
}

impl fmt::Display for IbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownClient(id) => write!(f, "unknown client {id}"),
            Self::UnknownConnection(id) => write!(f, "unknown connection {id}"),
            Self::UnknownChannel(port, channel) => {
                write!(f, "unknown channel {port}/{channel}")
            }
            Self::InvalidState(msg) => write!(f, "invalid handshake state: {msg}"),
            Self::ClientVerification(msg) => write!(f, "client verification failed: {msg}"),
            Self::InvalidProof(msg) => write!(f, "invalid proof: {msg}"),
            Self::DuplicatePacket => f.write_str("packet already delivered"),
            Self::Timeout(msg) => write!(f, "timeout: {msg}"),
            Self::UnboundPort(port) => write!(f, "no module bound to port {port}"),
            Self::AppError(msg) => write!(f, "application error: {msg}"),
            Self::Store(msg) => write!(f, "store error: {msg}"),
            Self::FrozenClient(id) => write!(f, "client {id} is frozen"),
        }
    }
}

impl std::error::Error for IbcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_format_conventionally() {
        assert_eq!(ClientId::new(0).as_str(), "client-0");
        assert_eq!(ConnectionId::new(3).as_str(), "connection-3");
        assert_eq!(ChannelId::new(12).as_str(), "channel-12");
        assert_eq!(PortId::transfer().as_str(), "transfer");
    }

    #[test]
    fn identifiers_compare_by_content() {
        assert_eq!(ClientId::new(1), ClientId::named("client-1"));
        assert_ne!(ClientId::new(1), ClientId::new(2));
    }
}
