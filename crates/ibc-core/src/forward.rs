//! The packet-forward memo vocabulary: routing and refund metadata for
//! multi-hop transfers.
//!
//! An incoming packet whose memo carries `{"forward": {...}}` is not
//! delivered to its nominal receiver: a forwarding layer credits the
//! assets to a chain-local *forward account* (stacking this chain's
//! voucher prefix or releasing escrow, exactly as a normal delivery
//! would) and queues an outgoing transfer for the next hop, carrying the
//! remaining hop list in its memo. Failure unwinds hop-by-hop,
//! *backwards*: dedicated refund transfers carry
//! `{"refund": {"channel", "sequence"}}` naming the leg they unwind on
//! the receiving chain.
//!
//! This module defines only that protocol vocabulary — the metadata
//! shapes and the [`ForwardKind`] correlation handles. The forwarding
//! middleware itself lives in the `apps` crate as one layer of the
//! general stacked-middleware mechanism, generalised over asset kinds
//! (ICS-20 amounts and NFT classes route identically).

use serde::{Deserialize, Serialize};

use crate::types::ChannelId;

/// One hop of routing metadata, carried in a transfer memo as
/// `{"forward": {...}}`; `next` nests the rest of the route.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardMetadata {
    /// Receiver on the next chain: the final receiver on the last hop, a
    /// forward account on intermediate ones.
    pub receiver: String,
    /// Port to forward over; defaults to the incoming packet's
    /// destination port when absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub port: Option<String>,
    /// Channel (on the forwarding chain) to send the next leg over.
    pub channel: String,
    /// Remaining hops after the next one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub next: Option<Box<ForwardMetadata>>,
}

impl ForwardMetadata {
    /// A single-hop forward to `receiver` over `channel`.
    pub fn new(receiver: impl Into<String>, channel: &ChannelId) -> Self {
        Self { receiver: receiver.into(), port: None, channel: channel.to_string(), next: None }
    }

    /// Appends the rest of the route.
    #[must_use]
    pub fn with_next(mut self, next: ForwardMetadata) -> Self {
        self.next = Some(Box::new(next));
        self
    }

    /// Renders the metadata as a transfer memo string.
    pub fn to_memo(&self) -> String {
        serde_json::to_string(&MemoEnvelope { forward: Some(self.clone()), refund: None })
            .expect("memo serializes")
    }
}

/// Backward-refund correlation carried in a transfer memo as
/// `{"refund": {...}}`: names the failed outgoing leg — by its source
/// channel and sequence *on the receiving chain* — that this transfer
/// unwinds.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefundMetadata {
    /// Source channel of the leg being unwound, on the refund's receiver.
    pub channel: String,
    /// Sequence of the leg being unwound.
    pub sequence: u64,
}

impl RefundMetadata {
    /// Renders the metadata as a transfer memo string.
    pub fn to_memo(&self) -> String {
        serde_json::to_string(&MemoEnvelope { forward: None, refund: Some(self.clone()) })
            .expect("memo serializes")
    }
}

/// The recognised routing memo shapes. Memos that parse as neither (or
/// not as JSON at all) are opaque to forwarding layers and pass straight
/// through to the application.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct MemoEnvelope {
    /// Next-hop routing metadata, if present.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub forward: Option<ForwardMetadata>,
    /// Backward-refund correlation, if present.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub refund: Option<RefundMetadata>,
}

impl MemoEnvelope {
    /// Parses a memo leniently: anything unrecognised yields the empty
    /// envelope.
    pub fn parse(memo: &str) -> Self {
        serde_json::from_str(memo).unwrap_or_default()
    }
}

/// Why an outgoing transfer was queued — correlation handles for route
/// tracking by the harness. Channels are always identified on the chain
/// that *sent* the named leg.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardKind {
    /// Next hop of an incoming leg, identified by that leg's source
    /// channel (on the previous chain) and sequence.
    Forward {
        /// Source channel of the incoming leg, on the previous chain.
        incoming_channel: ChannelId,
        /// Sequence of the incoming leg.
        incoming_sequence: u64,
    },
    /// Backward refund unwinding a failed outgoing leg of *this* chain.
    Refund {
        /// Source channel of the failed leg, on this chain.
        failed_channel: ChannelId,
        /// Sequence of the failed leg.
        failed_sequence: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_roundtrip() {
        let meta = ForwardMetadata::new("carol", &ChannelId::new(3))
            .with_next(ForwardMetadata::new("dave", &ChannelId::new(9)));
        let parsed = MemoEnvelope::parse(&meta.to_memo());
        assert_eq!(parsed.forward, Some(meta));
        let refund = RefundMetadata { channel: "channel-2".into(), sequence: 7 };
        let parsed = MemoEnvelope::parse(&refund.to_memo());
        assert_eq!(parsed.refund, Some(refund));
        // Opaque memos parse to the empty envelope.
        let opaque = MemoEnvelope::parse("invoice 42");
        assert!(opaque.forward.is_none() && opaque.refund.is_none());
    }
}
