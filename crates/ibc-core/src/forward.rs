//! Multi-hop ICS-20 forwarding middleware (the packet-forward pattern).
//!
//! Wraps a [`TransferModule`] on the transfer port. An incoming packet
//! whose memo carries `{"forward": {...}}` routing metadata is not
//! delivered to its nominal receiver: the middleware credits the funds to
//! a chain-local *forward account* (stacking this chain's voucher prefix
//! or releasing escrow, exactly as a normal delivery would) and queues an
//! outgoing transfer for the next hop, carrying the remaining hop list in
//! its memo. The host harness drains that queue with
//! [`crate::ics20::send_transfer`] — packet commitment requires store
//! access the module callback does not have.
//!
//! Failure unwinds hop-by-hop, *backwards*. Each forwarded leg is
//! remembered in an in-flight table keyed by `(source channel, sequence)`.
//! When a leg times out or is error-acked, the wrapped module first
//! refunds the forward account (standard ICS-20 refund of the failed
//! send), then the middleware queues a dedicated *refund transfer* back
//! toward the previous hop, its memo carrying
//! `{"refund": {"channel", "sequence"}}` naming the leg it unwinds there.
//! Intermediate hops relay the refund further back the same way; the
//! origin chain (which has no in-flight entry for the named leg) delivers
//! it plainly to the original sender. Every step re-uses the normal
//! escrow/mint rules, so stacked voucher prefixes unwind to the base
//! denomination with zero net supply change on every chain.
//!
//! The middleware acknowledges forwarded packets with success immediately
//! rather than deferring the ack to the end of the route; delivery
//! guarantees over the remaining hops are carried by the refund path.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::channel::{Acknowledgement, Packet};
use crate::ics20::{FungibleTokenPacketData, TransferModule};
use crate::router::Module;
use crate::types::{ChannelId, IbcError, PortId};

/// One hop of routing metadata, carried in an ICS-20 memo as
/// `{"forward": {...}}`; `next` nests the rest of the route.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardMetadata {
    /// Receiver on the next chain: the final receiver on the last hop, a
    /// forward account on intermediate ones.
    pub receiver: String,
    /// Port to forward over; defaults to the incoming packet's
    /// destination port when absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub port: Option<String>,
    /// Channel (on the forwarding chain) to send the next leg over.
    pub channel: String,
    /// Remaining hops after the next one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub next: Option<Box<ForwardMetadata>>,
}

impl ForwardMetadata {
    /// A single-hop forward to `receiver` over `channel`.
    pub fn new(receiver: impl Into<String>, channel: &ChannelId) -> Self {
        Self { receiver: receiver.into(), port: None, channel: channel.to_string(), next: None }
    }

    /// Appends the rest of the route.
    #[must_use]
    pub fn with_next(mut self, next: ForwardMetadata) -> Self {
        self.next = Some(Box::new(next));
        self
    }

    /// Renders the metadata as an ICS-20 memo string.
    pub fn to_memo(&self) -> String {
        serde_json::to_string(&MemoEnvelope { forward: Some(self.clone()), refund: None })
            .expect("memo serializes")
    }
}

/// Backward-refund correlation carried in an ICS-20 memo as
/// `{"refund": {...}}`: names the failed outgoing leg — by its source
/// channel and sequence *on the receiving chain* — that this transfer
/// unwinds.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefundMetadata {
    /// Source channel of the leg being unwound, on the refund's receiver.
    pub channel: String,
    /// Sequence of the leg being unwound.
    pub sequence: u64,
}

impl RefundMetadata {
    /// Renders the metadata as an ICS-20 memo string.
    pub fn to_memo(&self) -> String {
        serde_json::to_string(&MemoEnvelope { forward: None, refund: Some(self.clone()) })
            .expect("memo serializes")
    }
}

/// The recognised memo shapes. Memos that parse as neither (or not as
/// JSON at all) are opaque to the middleware and pass straight through to
/// the wrapped module.
#[derive(Debug, Default, Serialize, Deserialize)]
struct MemoEnvelope {
    #[serde(default, skip_serializing_if = "Option::is_none")]
    forward: Option<ForwardMetadata>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    refund: Option<RefundMetadata>,
}

impl MemoEnvelope {
    fn parse(memo: &str) -> Self {
        serde_json::from_str(memo).unwrap_or_default()
    }
}

/// Book-keeping for one forwarded (outgoing) leg, kept until its ack or
/// timeout arrives. Everything needed to push the refund one hop further
/// back if the leg fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InFlightHop {
    /// Port to send the backward refund over.
    pub return_port: PortId,
    /// Channel (on this chain, toward the previous hop) for the refund.
    pub return_channel: ChannelId,
    /// The incoming leg's source channel on the *previous* chain — the
    /// key the previous hop's in-flight table knows that leg by.
    pub origin_channel: ChannelId,
    /// The incoming leg's sequence.
    pub origin_sequence: u64,
    /// Receiver of the backward refund: the incoming leg's sender (the
    /// original user when the previous hop is the origin chain).
    pub refund_receiver: String,
    /// Local denomination this chain credited and then forwarded.
    pub denom: String,
    /// Amount forwarded.
    pub amount: u128,
}

/// Why an outgoing transfer was queued — correlation handles for route
/// tracking by the harness. Channels are always identified on the chain
/// that *sent* the named leg.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardKind {
    /// Next hop of an incoming leg, identified by that leg's source
    /// channel (on the previous chain) and sequence.
    Forward {
        /// Source channel of the incoming leg, on the previous chain.
        incoming_channel: ChannelId,
        /// Sequence of the incoming leg.
        incoming_sequence: u64,
    },
    /// Backward refund unwinding a failed outgoing leg of *this* chain.
    Refund {
        /// Source channel of the failed leg, on this chain.
        failed_channel: ChannelId,
        /// Sequence of the failed leg.
        failed_sequence: u64,
    },
}

/// An outgoing transfer the middleware wants sent. Module callbacks
/// cannot commit packets (no store access), so requests queue here and
/// the harness drains them through [`crate::ics20::send_transfer`] with
/// the forward account as sender.
#[derive(Clone, Debug)]
pub struct ForwardRequest {
    /// Port to send over.
    pub port: PortId,
    /// Channel to send over.
    pub channel: ChannelId,
    /// Local denomination to transfer.
    pub denom: String,
    /// Amount to transfer.
    pub amount: u128,
    /// Receiver on the next chain.
    pub receiver: String,
    /// Memo for the outgoing packet (remaining hops, or refund
    /// correlation, or empty).
    pub memo: String,
    /// In-flight record to register — via
    /// [`ForwardMiddleware::register_in_flight`] — under the sent
    /// packet's sequence once it is committed. [`None`] for refund legs,
    /// which are not themselves unwound.
    pub in_flight: Option<InFlightHop>,
    /// What triggered this request.
    pub kind: ForwardKind,
}

/// ICS-20 middleware implementing multi-hop forwarding and backward
/// refunds over a wrapped [`TransferModule`].
///
/// # Examples
///
/// ```
/// use ibc_core::forward::ForwardMiddleware;
/// use ibc_core::ics20::TransferModule;
/// use ibc_core::Module;
///
/// let mut module = ForwardMiddleware::new(TransferModule::new(), "hub:forward");
/// // The wrapped ledger stays reachable for mints and audits.
/// module.ics20_mut().unwrap().mint("alice", "wsol", 100);
/// assert_eq!(module.ics20().unwrap().balance("alice", "wsol"), 100);
/// ```
#[derive(Debug)]
pub struct ForwardMiddleware {
    inner: TransferModule,
    forward_account: String,
    in_flight: BTreeMap<(String, u64), InFlightHop>,
    outbox: Vec<ForwardRequest>,
}

impl ForwardMiddleware {
    /// Wraps `inner`, escrowing in-transit funds under `forward_account`.
    pub fn new(inner: TransferModule, forward_account: impl Into<String>) -> Self {
        Self {
            inner,
            forward_account: forward_account.into(),
            in_flight: BTreeMap::new(),
            outbox: Vec::new(),
        }
    }

    /// The chain-local account holding funds between hops.
    pub fn forward_account(&self) -> &str {
        &self.forward_account
    }

    /// Drains the queued outgoing transfers.
    pub fn take_requests(&mut self) -> Vec<ForwardRequest> {
        std::mem::take(&mut self.outbox)
    }

    /// Whether any outgoing transfers are waiting to be sent.
    pub fn has_requests(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Number of forwarded legs awaiting ack or timeout.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Records a forwarded leg — call after committing a
    /// [`ForwardRequest`] carrying `hop`, with the sequence the packet
    /// was assigned.
    pub fn register_in_flight(&mut self, channel: &ChannelId, sequence: u64, hop: InFlightHop) {
        self.in_flight.insert((channel.to_string(), sequence), hop);
    }

    /// Unwinds a leg whose send failed synchronously (the commit was
    /// rolled back, so the forward account still holds the funds): queues
    /// the backward refund immediately. `kind` carries the caller's
    /// correlation for the failed request.
    pub fn fail_forward(&mut self, hop: InFlightHop, kind: ForwardKind) {
        self.queue_refund(hop, kind);
    }

    fn queue_refund(&mut self, hop: InFlightHop, kind: ForwardKind) {
        let memo = RefundMetadata {
            channel: hop.origin_channel.to_string(),
            sequence: hop.origin_sequence,
        }
        .to_memo();
        self.outbox.push(ForwardRequest {
            port: hop.return_port.clone(),
            channel: hop.return_channel.clone(),
            denom: hop.denom.clone(),
            amount: hop.amount,
            receiver: hop.refund_receiver.clone(),
            memo,
            in_flight: None,
            kind,
        });
    }

    /// Handles the failure (error ack or timeout) of an outgoing packet:
    /// if it was a forwarded leg, push the refund one hop further back.
    /// The wrapped module has already refunded the forward account.
    fn unwind_failed_leg(&mut self, packet: &Packet) {
        let key = (packet.source_channel.to_string(), packet.sequence);
        if let Some(hop) = self.in_flight.remove(&key) {
            self.queue_refund(
                hop,
                ForwardKind::Refund {
                    failed_channel: packet.source_channel.clone(),
                    failed_sequence: packet.sequence,
                },
            );
        }
    }
}

impl Module for ForwardMiddleware {
    fn on_recv_packet(&mut self, packet: &Packet) -> Acknowledgement {
        let Some(data) = FungibleTokenPacketData::decode(&packet.payload) else {
            return Acknowledgement::Error("malformed ICS-20 packet".into());
        };
        let memo = MemoEnvelope::parse(&data.memo);
        if let Some(forward) = memo.forward {
            // Intermediate hop: credit the forward account and queue the
            // next leg instead of delivering to the nominal receiver.
            let account = self.forward_account.clone();
            return match self.inner.credit_receiver(packet, &data.denom, data.amount, &account) {
                Ok(local_denom) => {
                    let next_memo =
                        forward.next.as_deref().map(ForwardMetadata::to_memo).unwrap_or_default();
                    let port = forward
                        .port
                        .as_deref()
                        .map(PortId::named)
                        .unwrap_or_else(|| packet.destination_port.clone());
                    self.outbox.push(ForwardRequest {
                        port,
                        channel: ChannelId::named(&forward.channel),
                        denom: local_denom.clone(),
                        amount: data.amount,
                        receiver: forward.receiver.clone(),
                        memo: next_memo,
                        in_flight: Some(InFlightHop {
                            return_port: packet.destination_port.clone(),
                            return_channel: packet.destination_channel.clone(),
                            origin_channel: packet.source_channel.clone(),
                            origin_sequence: packet.sequence,
                            refund_receiver: data.sender.clone(),
                            denom: local_denom,
                            amount: data.amount,
                        }),
                        kind: ForwardKind::Forward {
                            incoming_channel: packet.source_channel.clone(),
                            incoming_sequence: packet.sequence,
                        },
                    });
                    Acknowledgement::Success(b"AQ==".to_vec())
                }
                Err(err) => Acknowledgement::Error(err.to_string()),
            };
        }
        if let Some(refund) = memo.refund {
            // A backward refund arriving. On an intermediate hop the named
            // leg is in our in-flight table: take custody and relay the
            // refund further back. On the origin chain it is not — the
            // plain delivery below returns the funds to the original
            // sender (named as this transfer's receiver).
            if let Some(hop) = self.in_flight.remove(&(refund.channel.clone(), refund.sequence)) {
                let account = self.forward_account.clone();
                return match self.inner.credit_receiver(packet, &data.denom, data.amount, &account)
                {
                    Ok(_) => {
                        self.queue_refund(
                            hop,
                            ForwardKind::Refund {
                                failed_channel: ChannelId::named(&refund.channel),
                                failed_sequence: refund.sequence,
                            },
                        );
                        Acknowledgement::Success(b"AQ==".to_vec())
                    }
                    Err(err) => Acknowledgement::Error(err.to_string()),
                };
            }
        }
        self.inner.on_recv_packet(packet)
    }

    fn on_acknowledge(&mut self, packet: &Packet, ack: &Acknowledgement) -> Result<(), IbcError> {
        self.inner.on_acknowledge(packet, ack)?;
        let key = (packet.source_channel.to_string(), packet.sequence);
        if ack.is_success() {
            // Leg landed; its book-keeping is done.
            self.in_flight.remove(&key);
        } else {
            self.unwind_failed_leg(packet);
        }
        Ok(())
    }

    fn on_timeout(&mut self, packet: &Packet) -> Result<(), IbcError> {
        self.inner.on_timeout(packet)?;
        self.unwind_failed_leg(packet);
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn ics20(&self) -> Option<&TransferModule> {
        Some(&self.inner)
    }

    fn ics20_mut(&mut self) -> Option<&mut TransferModule> {
        Some(&mut self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Timeout;
    use crate::ics20::escrow_account;

    const FWD: &str = "hub:forward";

    fn packet(seq: u64, src_chan: u64, dst_chan: u64, data: &FungibleTokenPacketData) -> Packet {
        Packet {
            sequence: seq,
            source_port: PortId::transfer(),
            source_channel: ChannelId::new(src_chan),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::new(dst_chan),
            payload: data.encode(),
            timeout: Timeout::NEVER,
        }
    }

    fn data(denom: &str, amount: u128, memo: String) -> FungibleTokenPacketData {
        FungibleTokenPacketData {
            denom: denom.into(),
            amount,
            sender: "alice".into(),
            receiver: "bob".into(),
            memo,
        }
    }

    #[test]
    fn memo_roundtrip() {
        let meta = ForwardMetadata::new("carol", &ChannelId::new(3))
            .with_next(ForwardMetadata::new("dave", &ChannelId::new(9)));
        let parsed = MemoEnvelope::parse(&meta.to_memo());
        assert_eq!(parsed.forward, Some(meta));
        let refund = RefundMetadata { channel: "channel-2".into(), sequence: 7 };
        let parsed = MemoEnvelope::parse(&refund.to_memo());
        assert_eq!(parsed.refund, Some(refund));
        // Opaque memos parse to the empty envelope.
        let opaque = MemoEnvelope::parse("invoice 42");
        assert!(opaque.forward.is_none() && opaque.refund.is_none());
    }

    #[test]
    fn forward_memo_stacks_voucher_and_queues_next_leg() {
        let mut mw = ForwardMiddleware::new(TransferModule::new(), FWD);
        // A foreign token arrives with one more hop to go (send on over
        // our channel-5 to "carol").
        let memo = ForwardMetadata::new("carol", &ChannelId::new(5)).to_memo();
        let incoming = packet(4, 0, 1, &data("wsol", 70, memo));
        let ack = mw.on_recv_packet(&incoming);
        assert!(ack.is_success(), "{ack:?}");
        // Funds sit in the forward account under the stacked denom, not
        // with the nominal receiver.
        let local = "transfer/channel-1/wsol";
        assert_eq!(mw.ics20().unwrap().balance(FWD, local), 70);
        assert_eq!(mw.ics20().unwrap().balance("bob", local), 0);

        let requests = mw.take_requests();
        assert_eq!(requests.len(), 1);
        let req = &requests[0];
        assert_eq!(req.channel, ChannelId::new(5));
        assert_eq!((req.denom.as_str(), req.amount, req.receiver.as_str()), (local, 70, "carol"));
        assert!(req.memo.is_empty(), "last hop carries no further metadata");
        let hop = req.in_flight.clone().expect("forwarded legs are tracked");
        assert_eq!(hop.return_channel, ChannelId::new(1));
        assert_eq!((hop.origin_channel.clone(), hop.origin_sequence), (ChannelId::new(0), 4));
        assert_eq!(hop.refund_receiver, "alice");
    }

    #[test]
    fn failed_leg_unwinds_backwards_and_origin_delivers_refund() {
        let mut mw = ForwardMiddleware::new(TransferModule::new(), FWD);
        let memo = ForwardMetadata::new("carol", &ChannelId::new(5)).to_memo();
        let incoming = packet(4, 0, 1, &data("wsol", 70, memo));
        assert!(mw.on_recv_packet(&incoming).is_success());
        let req = mw.take_requests().remove(0);
        // Harness "sends" the next leg: debit the forward account, then
        // register the in-flight record under the assigned sequence.
        let local = req.denom.clone();
        let out_data = FungibleTokenPacketData {
            denom: local.clone(),
            amount: req.amount,
            sender: FWD.into(),
            receiver: req.receiver.clone(),
            memo: req.memo.clone(),
        };
        let outgoing = packet(1, 5, 2, &out_data);
        // The voucher's prefix names channel-1, so sending over channel-5
        // escrows it (it is not returning home on that channel).
        mw.ics20_mut()
            .unwrap()
            .transfer_internal(FWD, &escrow_account(&ChannelId::new(5)), &local, 70)
            .unwrap();
        mw.register_in_flight(&ChannelId::new(5), 1, req.in_flight.unwrap());
        assert_eq!(mw.in_flight_len(), 1);

        // The leg times out: inner refund re-mints to the forward
        // account, then a backward refund is queued over channel-1.
        mw.on_timeout(&outgoing).unwrap();
        assert_eq!(mw.in_flight_len(), 0);
        assert_eq!(mw.ics20().unwrap().balance(FWD, &local), 70);
        let refund = mw.take_requests().remove(0);
        assert_eq!(refund.channel, ChannelId::new(1));
        assert_eq!((refund.denom.as_str(), refund.receiver.as_str()), (local.as_str(), "alice"));
        assert!(refund.in_flight.is_none());
        let env = MemoEnvelope::parse(&refund.memo);
        assert_eq!(env.refund, Some(RefundMetadata { channel: "channel-0".into(), sequence: 4 }));

        // On the origin chain (no in-flight entry for channel-0 #4) the
        // refund transfer is a plain delivery back to the sender.
        let mut origin = ForwardMiddleware::new(TransferModule::new(), "origin:forward");
        origin.ics20_mut().unwrap().mint(&escrow_account(&ChannelId::new(0)), "wsol", 70);
        let refund_data = FungibleTokenPacketData {
            denom: "transfer/channel-1/wsol".into(),
            amount: 70,
            sender: FWD.into(),
            receiver: "alice".into(),
            memo: refund.memo.clone(),
        };
        // Arrives over the reverse direction of the original leg.
        let refund_packet = packet(9, 1, 0, &refund_data);
        assert!(origin.on_recv_packet(&refund_packet).is_success());
        assert_eq!(origin.ics20().unwrap().balance("alice", "wsol"), 70);
        assert_eq!(origin.ics20().unwrap().balance(&escrow_account(&ChannelId::new(0)), "wsol"), 0);
    }

    #[test]
    fn success_ack_clears_in_flight_without_refund() {
        let mut mw = ForwardMiddleware::new(TransferModule::new(), FWD);
        let memo = ForwardMetadata::new("carol", &ChannelId::new(5)).to_memo();
        assert!(mw.on_recv_packet(&packet(4, 0, 1, &data("wsol", 70, memo))).is_success());
        let req = mw.take_requests().remove(0);
        let out_data = FungibleTokenPacketData {
            denom: req.denom.clone(),
            amount: req.amount,
            sender: FWD.into(),
            receiver: req.receiver,
            memo: req.memo,
        };
        let outgoing = packet(1, 5, 2, &out_data);
        mw.ics20_mut()
            .unwrap()
            .transfer_internal(FWD, &escrow_account(&ChannelId::new(5)), &req.denom, 70)
            .unwrap();
        mw.register_in_flight(&ChannelId::new(5), 1, req.in_flight.unwrap());
        mw.on_acknowledge(&outgoing, &Acknowledgement::Success(b"AQ==".to_vec())).unwrap();
        assert_eq!(mw.in_flight_len(), 0);
        assert!(!mw.has_requests());
    }

    #[test]
    fn plain_transfers_pass_through_to_inner() {
        let mut mw = ForwardMiddleware::new(TransferModule::new(), FWD);
        let incoming = packet(1, 0, 1, &data("wsol", 30, String::new()));
        assert!(mw.on_recv_packet(&incoming).is_success());
        assert_eq!(mw.ics20().unwrap().balance("bob", "transfer/channel-1/wsol"), 30);
    }
}
