//! ICS-03: connection ends and handshake state.

use serde::{Deserialize, Serialize};

use crate::types::{ClientId, ConnectionId};

/// Handshake progress of a connection end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionState {
    /// `ConnOpenInit` executed on this side.
    Init,
    /// `ConnOpenTry` executed on this side.
    TryOpen,
    /// Handshake completed.
    Open,
}

/// One side of an IBC connection.
///
/// A connection pairs a local light client (tracking the counterparty) with
/// the counterparty's client of us, after the four-step handshake
/// (`Init → Try → Ack → Confirm`) has verified both directions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionEnd {
    /// Handshake state.
    pub state: ConnectionState,
    /// Local client tracking the counterparty chain.
    pub client_id: ClientId,
    /// The counterparty's client of this chain.
    pub counterparty_client_id: ClientId,
    /// The counterparty's connection id (known after Try/Ack).
    pub counterparty_connection_id: Option<ConnectionId>,
    /// Negotiated version string.
    pub version: String,
}

impl ConnectionEnd {
    /// The protocol version this implementation speaks.
    pub const DEFAULT_VERSION: &'static str = "ibc-1.0";

    /// Creates an end in [`ConnectionState::Init`].
    pub fn init(client_id: ClientId, counterparty_client_id: ClientId) -> Self {
        Self {
            state: ConnectionState::Init,
            client_id,
            counterparty_client_id,
            counterparty_connection_id: None,
            version: Self::DEFAULT_VERSION.to_string(),
        }
    }

    /// Creates an end in [`ConnectionState::TryOpen`], responding to a
    /// counterparty Init.
    pub fn try_open(
        client_id: ClientId,
        counterparty_client_id: ClientId,
        counterparty_connection_id: ConnectionId,
    ) -> Self {
        Self {
            state: ConnectionState::TryOpen,
            client_id,
            counterparty_client_id,
            counterparty_connection_id: Some(counterparty_connection_id),
            version: Self::DEFAULT_VERSION.to_string(),
        }
    }

    /// Whether packets may flow (state is Open).
    pub fn is_open(&self) -> bool {
        self.state == ConnectionState::Open
    }

    /// Serialized form stored in the provable store (and proven to the
    /// counterparty during the handshake).
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("connection end serializes")
    }

    /// Parses the stored form.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let end = ConnectionEnd::try_open(ClientId::new(0), ClientId::new(9), ConnectionId::new(4));
        let decoded = ConnectionEnd::decode(&end.encode()).unwrap();
        assert_eq!(decoded, end);
        assert!(!decoded.is_open());
    }

    #[test]
    fn init_has_no_counterparty_connection_yet() {
        let end = ConnectionEnd::init(ClientId::new(0), ClientId::new(1));
        assert_eq!(end.state, ConnectionState::Init);
        assert!(end.counterparty_connection_id.is_none());
    }
}
