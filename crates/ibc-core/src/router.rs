//! Port router and application-module interface (ICS-05/ICS-26).

use crate::channel::{Acknowledgement, Packet};
use crate::types::ChannelId;
use crate::types::{IbcError, PortId};

/// An IBC application module bound to a port (e.g. ICS-20 transfer).
pub trait Module {
    /// Called when a channel on this port completes its handshake.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the channel handshake step.
    fn on_chan_open(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        version: &str,
    ) -> Result<(), IbcError> {
        let _ = (port_id, channel_id, version);
        Ok(())
    }

    /// Handles an inbound packet and produces the acknowledgement.
    ///
    /// Application failures are reported in-band as
    /// [`Acknowledgement::Error`], never by aborting delivery — the
    /// receipt must still be written to prevent redelivery.
    fn on_recv_packet(&mut self, packet: &Packet) -> Acknowledgement;

    /// Handles the acknowledgement for a packet this chain sent.
    ///
    /// # Errors
    ///
    /// An error aborts acknowledgement processing (the relayer may retry).
    fn on_acknowledge(&mut self, packet: &Packet, ack: &Acknowledgement) -> Result<(), IbcError>;

    /// Handles a timeout for a packet this chain sent (refunds etc.).
    ///
    /// # Errors
    ///
    /// An error aborts timeout processing (the relayer may retry).
    fn on_timeout(&mut self, packet: &Packet) -> Result<(), IbcError>;

    /// Downcast support so chains can reach their concrete application
    /// state (e.g. the ICS-20 ledger) through the handler.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Read-only downcast support (invariant checkers, reporting).
    fn as_any(&self) -> &dyn std::any::Any;

    /// The ICS-20 ledger this module fronts, if any.
    ///
    /// Middleware that wraps a [`crate::ics20::TransferModule`] (e.g. the
    /// multi-hop forward middleware) forwards this to the wrapped ledger,
    /// so [`crate::ics20::send_transfer`] and invariant checkers work
    /// through any stack of wrappers, not just a bare transfer module.
    fn ics20(&self) -> Option<&crate::ics20::TransferModule> {
        None
    }

    /// Mutable access to the ICS-20 ledger this module fronts, if any.
    fn ics20_mut(&mut self) -> Option<&mut crate::ics20::TransferModule> {
        None
    }
}

/// A no-op module for control channels and tests: acknowledges every packet
/// with `Success(payload)` and records nothing.
#[derive(Debug, Default)]
pub struct EchoModule {
    /// Packets received, for inspection in tests.
    pub received: Vec<Packet>,
    /// Packets acknowledged back to us.
    pub acknowledged: Vec<(Packet, Acknowledgement)>,
    /// Packets timed out.
    pub timed_out: Vec<Packet>,
}

impl Module for EchoModule {
    fn on_recv_packet(&mut self, packet: &Packet) -> Acknowledgement {
        self.received.push(packet.clone());
        Acknowledgement::Success(packet.payload.clone())
    }

    fn on_acknowledge(&mut self, packet: &Packet, ack: &Acknowledgement) -> Result<(), IbcError> {
        self.acknowledged.push((packet.clone(), ack.clone()));
        Ok(())
    }

    fn on_timeout(&mut self, packet: &Packet) -> Result<(), IbcError> {
        self.timed_out.push(packet.clone());
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
