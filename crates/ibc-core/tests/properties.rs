//! Property-based tests of the IBC core.

use ibc_core::channel::{Acknowledgement, Packet, Timeout};
use ibc_core::ics20::FungibleTokenPacketData;
use ibc_core::types::{ChannelId, PortId};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        1u64..1_000_000,
        0u64..50,
        0u64..50,
        proptest::collection::vec(any::<u8>(), 0..256),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(sequence, src, dst, payload, th, tt)| Packet {
            sequence,
            source_port: PortId::transfer(),
            source_channel: ChannelId::new(src),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::new(dst),
            payload,
            timeout: Timeout { height: th, timestamp_ms: tt },
        })
}

proptest! {
    /// Packets survive their wire encoding.
    #[test]
    fn packet_round_trip(packet in arb_packet()) {
        prop_assert_eq!(Packet::decode(&packet.encode()).unwrap(), packet);
    }

    /// Any difference in any field changes the commitment.
    #[test]
    fn commitment_binds_fields(a in arb_packet(), b in arb_packet()) {
        if a != b {
            prop_assert_ne!(a.commitment(), b.commitment());
        } else {
            prop_assert_eq!(a.commitment(), b.commitment());
        }
    }

    /// Timeout expiry is monotone: once expired, later views stay expired.
    #[test]
    fn timeout_monotone(
        height in 0u64..1_000,
        time in 0u64..1_000_000,
        dh in 0u64..1_000,
        dt in 0u64..1_000_000,
        ah in 0u64..100,
        at in 0u64..100_000,
    ) {
        let timeout = Timeout { height, timestamp_ms: time };
        if timeout.has_expired(dh, dt) {
            prop_assert!(timeout.has_expired(dh + ah, dt + at));
        }
    }

    /// Acknowledgements round-trip and success/error commitments differ.
    #[test]
    fn ack_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..64), err in ".{0,40}") {
        let success = Acknowledgement::Success(payload);
        prop_assert_eq!(
            Acknowledgement::decode(&success.encode()).unwrap(), success.clone()
        );
        let error = Acknowledgement::Error(err);
        prop_assert_eq!(Acknowledgement::decode(&error.encode()).unwrap(), error.clone());
        prop_assert_ne!(success.commitment(), error.commitment());
    }

    /// ICS-20 packet data round-trips, including memos with tricky content.
    #[test]
    fn ics20_data_round_trip(
        denom in "[a-z/0-9-]{1,40}",
        amount in any::<u128>(),
        sender in ".{0,30}",
        receiver in ".{0,30}",
        memo in ".{0,100}",
    ) {
        let data = FungibleTokenPacketData { denom, amount, sender, receiver, memo };
        prop_assert_eq!(FungibleTokenPacketData::decode(&data.encode()).unwrap(), data);
    }
}

mod ics20_ledger {
    use super::*;
    use ibc_core::ics20::TransferModule;
    use ibc_core::Module;

    proptest! {
        /// Total supply of a voucher denomination is conserved across any
        /// sequence of recv packets (mint) and error acks (refund).
        #[test]
        fn recv_then_refund_is_identity(
            amount in 1u128..1_000_000,
            balance in 0u128..1_000_000,
        ) {
            let mut module = TransferModule::new();
            module.mint("alice", "sol", balance + amount);

            // Outbound debit (escrow), then a timeout refund.
            let data = FungibleTokenPacketData {
                denom: "sol".into(),
                amount,
                sender: "alice".into(),
                receiver: "bob".into(),
                memo: String::new(),
            };
            let packet = Packet {
                sequence: 1,
                source_port: PortId::transfer(),
                source_channel: ChannelId::new(0),
                destination_port: PortId::transfer(),
                destination_channel: ChannelId::new(1),
                payload: data.encode(),
                timeout: Timeout::NEVER,
            };
            // Simulate the send-side debit through the public API:
            // a send_transfer would do this; here we replicate via burn+mint.
            module.transfer_internal("alice", "escrow:channel-0", "sol", amount).unwrap();
            prop_assert_eq!(module.balance("alice", "sol"), balance);
            module.on_timeout(&packet).unwrap();
            prop_assert_eq!(module.balance("alice", "sol"), balance + amount);
            prop_assert_eq!(module.balance("escrow:channel-0", "sol"), 0);
        }
    }
}
