//! End-to-end IBC between two in-process chains.
//!
//! Plays the role of a relayer by hand: syncs each chain's root into the
//! other's (mock) light client, runs the connection and channel handshakes,
//! then exercises the packet life cycle — delivery, acknowledgement,
//! duplicate rejection, and timeout — plus an ICS-20 token round trip.

use ibc_core::channel::{Ordering, Timeout};
use ibc_core::client::{MockClient, MockHeader};
use ibc_core::handler::{HostTime, IbcHandler, ProofData};
use ibc_core::ics20::{self, TransferModule};
use ibc_core::router::EchoModule;
use ibc_core::types::{ChannelId, ClientId, IbcError, PortId};
use ibc_core::{IbcEvent, ProvableStore};
use sealable_trie::Trie;

/// A pair of chains with mock clients of each other.
struct Net {
    a: IbcHandler<Trie>,
    b: IbcHandler<Trie>,
    client_of_b_on_a: ClientId,
    client_of_a_on_b: ClientId,
    height_a: u64,
    height_b: u64,
}

impl Net {
    fn new() -> Self {
        let mut a = IbcHandler::new(Trie::new());
        let mut b = IbcHandler::new(Trie::new());
        let client_of_b_on_a = a.create_client(Box::new(MockClient::new()));
        let client_of_a_on_b = b.create_client(Box::new(MockClient::new()));
        Self { a, b, client_of_b_on_a, client_of_a_on_b, height_a: 0, height_b: 0 }
    }

    /// "Produce a block" on A and update B's client of A.
    fn sync_a_to_b(&mut self) -> u64 {
        self.height_a += 1;
        let header = serde_json::to_vec(&MockHeader {
            height: self.height_a,
            root: self.a.root(),
            timestamp_ms: self.height_a * 1_000,
        })
        .unwrap();
        self.b.update_client(&self.client_of_a_on_b, &header).unwrap();
        self.height_a
    }

    /// "Produce a block" on B and update A's client of B.
    fn sync_b_to_a(&mut self) -> u64 {
        self.height_b += 1;
        let header = serde_json::to_vec(&MockHeader {
            height: self.height_b,
            root: self.b.root(),
            timestamp_ms: self.height_b * 1_000,
        })
        .unwrap();
        self.a.update_client(&self.client_of_b_on_a, &header).unwrap();
        self.height_b
    }

    fn proof_a(&self, height: u64, key: &[u8]) -> ProofData {
        ProofData { height, bytes: ProvableStore::prove(self.a.store(), key).unwrap() }
    }

    fn proof_b(&self, height: u64, key: &[u8]) -> ProofData {
        ProofData { height, bytes: ProvableStore::prove(self.b.store(), key).unwrap() }
    }

    /// Runs the full connection handshake; returns (conn on A, conn on B).
    fn connect(&mut self) -> (ibc_core::ConnectionId, ibc_core::ConnectionId) {
        let conn_a = self
            .a
            .conn_open_init(self.client_of_b_on_a.clone(), self.client_of_a_on_b.clone())
            .unwrap();
        let h = self.sync_a_to_b();
        let proof_init = self.proof_a(h, &ibc_core::path::connection(&conn_a));
        let conn_b = self
            .b
            .conn_open_try(
                self.client_of_a_on_b.clone(),
                self.client_of_b_on_a.clone(),
                conn_a.clone(),
                proof_init,
                None,
            )
            .unwrap();
        let h = self.sync_b_to_a();
        let proof_try = self.proof_b(h, &ibc_core::path::connection(&conn_b));
        self.a.conn_open_ack(&conn_a, conn_b.clone(), proof_try, None).unwrap();
        let h = self.sync_a_to_b();
        let proof_ack = self.proof_a(h, &ibc_core::path::connection(&conn_a));
        self.b.conn_open_confirm(&conn_b, proof_ack).unwrap();
        (conn_a, conn_b)
    }

    /// Opens a channel over existing connections; returns channel ids.
    fn open_channel(
        &mut self,
        conn_a: &ibc_core::ConnectionId,
        conn_b: &ibc_core::ConnectionId,
        port: &PortId,
        ordering: Ordering,
    ) -> (ChannelId, ChannelId) {
        let chan_a = self
            .a
            .chan_open_init(port.clone(), conn_a.clone(), port.clone(), ordering, "ics20-1")
            .unwrap();
        let h = self.sync_a_to_b();
        let proof_init = self.proof_a(h, &ibc_core::path::channel(port, &chan_a));
        let chan_b = self
            .b
            .chan_open_try(
                port.clone(),
                conn_b.clone(),
                port.clone(),
                chan_a.clone(),
                ordering,
                "ics20-1",
                proof_init,
            )
            .unwrap();
        let h = self.sync_b_to_a();
        let proof_try = self.proof_b(h, &ibc_core::path::channel(port, &chan_b));
        self.a.chan_open_ack(port, &chan_a, chan_b.clone(), proof_try).unwrap();
        let h = self.sync_a_to_b();
        let proof_ack = self.proof_a(h, &ibc_core::path::channel(port, &chan_a));
        self.b.chan_open_confirm(port, &chan_b, proof_ack).unwrap();
        (chan_a, chan_b)
    }
}

fn echo_net() -> (Net, PortId, ChannelId, ChannelId) {
    let mut net = Net::new();
    let port = PortId::named("echo");
    net.a.bind_port(port.clone(), Box::new(EchoModule::default()));
    net.b.bind_port(port.clone(), Box::new(EchoModule::default()));
    let (conn_a, conn_b) = net.connect();
    let (chan_a, chan_b) = net.open_channel(&conn_a, &conn_b, &port, Ordering::Unordered);
    (net, port, chan_a, chan_b)
}

#[test]
fn connection_and_channel_handshake_complete() {
    let (net, port, chan_a, chan_b) = echo_net();
    assert!(net.a.channel(&port, &chan_a).unwrap().is_open());
    assert!(net.b.channel(&port, &chan_b).unwrap().is_open());
}

#[test]
fn handshake_with_forged_proof_fails() {
    let mut net = Net::new();
    let conn_a =
        net.a.conn_open_init(net.client_of_b_on_a.clone(), net.client_of_a_on_b.clone()).unwrap();
    let h = net.sync_a_to_b();
    // Claiming a connection id that A never created: the (valid) proof for
    // the real path cannot vouch for the forged one.
    let real_proof = net.proof_a(h, &ibc_core::path::connection(&conn_a));
    let err = net
        .b
        .conn_open_try(
            net.client_of_a_on_b.clone(),
            net.client_of_b_on_a.clone(),
            ibc_core::ConnectionId::new(99),
            real_proof,
            None,
        )
        .unwrap_err();
    assert!(matches!(err, IbcError::InvalidProof(_)), "{err:?}");

    // Tampered proof bytes are rejected outright.
    let mut bad = net.proof_a(h, &ibc_core::path::connection(&conn_a));
    bad.bytes[10] ^= 0xff;
    let err = net
        .b
        .conn_open_try(
            net.client_of_a_on_b.clone(),
            net.client_of_b_on_a.clone(),
            conn_a,
            bad,
            None,
        )
        .unwrap_err();
    assert!(matches!(err, IbcError::InvalidProof(_)), "{err:?}");
}

#[test]
fn packet_roundtrip_with_ack() {
    let (mut net, port, chan_a, _chan_b) = echo_net();

    let packet = net.a.send_packet(&port, &chan_a, b"hello ibc".to_vec(), Timeout::NEVER).unwrap();
    assert_eq!(packet.sequence, 1);

    // Relay A → B.
    let h = net.sync_a_to_b();
    let commitment_key = ibc_core::path::packet_commitment(&port, &chan_a, packet.sequence);
    let proof = net.proof_a(h, &commitment_key);
    let ack =
        net.b.recv_packet(&packet, proof, HostTime { height: 1, timestamp_ms: 1_000 }).unwrap();
    assert!(ack.is_success());

    // Relay the ack B → A.
    let h = net.sync_b_to_a();
    let ack_key = ibc_core::path::packet_ack(
        &packet.destination_port,
        &packet.destination_channel,
        packet.sequence,
    );
    let ack_proof = net.proof_b(h, &ack_key);
    net.a.acknowledge_packet(&packet, &ack, ack_proof).unwrap();

    // The commitment is cleared: double-acking fails.
    let h2 = net.sync_b_to_a();
    let ack_proof2 = net.proof_b(h2, &ack_key);
    assert_eq!(net.a.acknowledge_packet(&packet, &ack, ack_proof2), Err(IbcError::DuplicatePacket));

    // Events were emitted on both sides.
    let events_a = net.a.drain_events();
    assert!(events_a.iter().any(|e| matches!(e, IbcEvent::SendPacket { .. })));
    assert!(events_a.iter().any(|e| matches!(e, IbcEvent::AcknowledgePacket { .. })));
    let events_b = net.b.drain_events();
    assert!(events_b.iter().any(|e| matches!(e, IbcEvent::RecvPacket { .. })));
    assert!(events_b.iter().any(|e| matches!(e, IbcEvent::WriteAcknowledgement { .. })));
}

#[test]
fn duplicate_delivery_rejected_via_sealed_receipt() {
    let (mut net, port, chan_a, _) = echo_net();
    let packet = net.a.send_packet(&port, &chan_a, b"once only".to_vec(), Timeout::NEVER).unwrap();
    let h = net.sync_a_to_b();
    let key = ibc_core::path::packet_commitment(&port, &chan_a, packet.sequence);
    let now = HostTime { height: 1, timestamp_ms: 1_000 };

    net.b.recv_packet(&packet, net.proof_a(h, &key), now).unwrap();
    // Second delivery with a perfectly valid proof still fails.
    assert_eq!(
        net.b.recv_packet(&packet, net.proof_a(h, &key), now),
        Err(IbcError::DuplicatePacket)
    );
}

#[test]
fn forged_packet_rejected() {
    let (mut net, port, chan_a, _) = echo_net();
    let packet = net.a.send_packet(&port, &chan_a, b"real".to_vec(), Timeout::NEVER).unwrap();
    let h = net.sync_a_to_b();
    let key = ibc_core::path::packet_commitment(&port, &chan_a, packet.sequence);
    let proof = net.proof_a(h, &key);
    let mut forged = packet.clone();
    forged.payload = b"forged".to_vec();
    let err =
        net.b.recv_packet(&forged, proof, HostTime { height: 1, timestamp_ms: 1_000 }).unwrap_err();
    assert!(matches!(err, IbcError::InvalidProof(_)));
}

#[test]
fn expired_packet_rejected_on_recv_and_timed_out_at_source() {
    let (mut net, port, chan_a, _) = echo_net();
    let packet =
        net.a.send_packet(&port, &chan_a, b"slow".to_vec(), Timeout::at_time(5_000)).unwrap();
    let h = net.sync_a_to_b();
    let key = ibc_core::path::packet_commitment(&port, &chan_a, packet.sequence);

    // Destination clock has passed the timeout: delivery is refused.
    let err = net
        .b
        .recv_packet(&packet, net.proof_a(h, &key), HostTime { height: 10, timestamp_ms: 6_000 })
        .unwrap_err();
    assert!(matches!(err, IbcError::Timeout(_)));

    // The source can now prove non-receipt and reclaim the packet. The
    // mock header timestamps are height×1000, so height 6 ⇒ 6000 ms ≥ 5000.
    while net.height_b < 6 {
        net.sync_b_to_a();
    }
    let receipt_key = ibc_core::path::packet_receipt(
        &packet.destination_port,
        &packet.destination_channel,
        packet.sequence,
    );
    let proof_unreceived = net.proof_b(6, &receipt_key);
    net.a.timeout_packet(&packet, proof_unreceived).unwrap();

    // Premature/double timeout fails.
    let proof_again = net.proof_b(6, &receipt_key);
    assert_eq!(
        net.a.timeout_packet(&packet, proof_again),
        Err(IbcError::DuplicatePacket),
        "commitment already cleared"
    );
}

#[test]
fn premature_timeout_rejected() {
    let (mut net, port, chan_a, _) = echo_net();
    let packet = net
        .a
        .send_packet(&port, &chan_a, b"patience".to_vec(), Timeout::at_time(1_000_000))
        .unwrap();
    let h = net.sync_b_to_a();
    let receipt_key = ibc_core::path::packet_receipt(
        &packet.destination_port,
        &packet.destination_channel,
        packet.sequence,
    );
    let proof = net.proof_b(h, &receipt_key);
    let err = net.a.timeout_packet(&packet, proof).unwrap_err();
    assert!(matches!(err, IbcError::Timeout(_)));
}

#[test]
fn ordered_channel_enforces_sequence() {
    let mut net = Net::new();
    let port = PortId::named("echo");
    net.a.bind_port(port.clone(), Box::new(EchoModule::default()));
    net.b.bind_port(port.clone(), Box::new(EchoModule::default()));
    let (conn_a, conn_b) = net.connect();
    let (chan_a, _chan_b) = net.open_channel(&conn_a, &conn_b, &port, Ordering::Ordered);

    let p1 = net.a.send_packet(&port, &chan_a, b"first".to_vec(), Timeout::NEVER).unwrap();
    let p2 = net.a.send_packet(&port, &chan_a, b"second".to_vec(), Timeout::NEVER).unwrap();
    let h = net.sync_a_to_b();
    let now = HostTime { height: 1, timestamp_ms: 1_000 };

    // Delivering #2 before #1 fails on an ordered channel.
    let key2 = ibc_core::path::packet_commitment(&port, &chan_a, p2.sequence);
    let err = net.b.recv_packet(&p2, net.proof_a(h, &key2), now).unwrap_err();
    assert!(matches!(err, IbcError::InvalidState(_)));

    let key1 = ibc_core::path::packet_commitment(&port, &chan_a, p1.sequence);
    net.b.recv_packet(&p1, net.proof_a(h, &key1), now).unwrap();
    net.b.recv_packet(&p2, net.proof_a(h, &key2), now).unwrap();
}

#[test]
fn ics20_token_round_trip() {
    let mut net = Net::new();
    let port = PortId::transfer();
    let mut bank_a = TransferModule::new();
    bank_a.mint("alice", "sol", 1_000);
    net.a.bind_port(port.clone(), Box::new(bank_a));
    net.b.bind_port(port.clone(), Box::new(TransferModule::new()));
    let (conn_a, conn_b) = net.connect();
    let (chan_a, chan_b) = net.open_channel(&conn_a, &conn_b, &port, Ordering::Unordered);

    // A → B: alice sends 250 sol to bob.
    let packet = ics20::send_transfer(
        &mut net.a,
        &port,
        &chan_a,
        "sol",
        250,
        "alice",
        "bob",
        "",
        Timeout::NEVER,
    )
    .unwrap();
    let h = net.sync_a_to_b();
    let key = ibc_core::path::packet_commitment(&port, &chan_a, packet.sequence);
    let ack = net
        .b
        .recv_packet(&packet, net.proof_a(h, &key), HostTime { height: 1, timestamp_ms: 1 })
        .unwrap();
    assert!(ack.is_success(), "{ack:?}");

    let voucher = format!("transfer/{chan_b}/sol");
    {
        let bank_b =
            net.b.module_mut(&port).unwrap().as_any_mut().downcast_mut::<TransferModule>().unwrap();
        assert_eq!(bank_b.balance("bob", &voucher), 250);
    }

    // B → A: bob returns 100 back to alice.
    let back = ics20::send_transfer(
        &mut net.b,
        &port,
        &chan_b,
        &voucher,
        100,
        "bob",
        "alice",
        "",
        Timeout::NEVER,
    )
    .unwrap();
    let h = net.sync_b_to_a();
    let key = ibc_core::path::packet_commitment(&port, &chan_b, back.sequence);
    let ack = net
        .a
        .recv_packet(&back, net.proof_b(h, &key), HostTime { height: 1, timestamp_ms: 1 })
        .unwrap();
    assert!(ack.is_success(), "{ack:?}");

    let bank_a =
        net.a.module_mut(&port).unwrap().as_any_mut().downcast_mut::<TransferModule>().unwrap();
    // 1000 − 250 sent + 100 returned.
    assert_eq!(bank_a.balance("alice", "sol"), 850);
    assert_eq!(bank_a.balance(&format!("escrow:{chan_a}"), "sol"), 150);
}

#[test]
fn ics20_timeout_refunds_sender() {
    let mut net = Net::new();
    let port = PortId::transfer();
    let mut bank_a = TransferModule::new();
    bank_a.mint("alice", "sol", 500);
    net.a.bind_port(port.clone(), Box::new(bank_a));
    net.b.bind_port(port.clone(), Box::new(TransferModule::new()));
    let (conn_a, conn_b) = net.connect();
    let (chan_a, _chan_b) = net.open_channel(&conn_a, &conn_b, &port, Ordering::Unordered);

    let packet = ics20::send_transfer(
        &mut net.a,
        &port,
        &chan_a,
        "sol",
        200,
        "alice",
        "bob",
        "",
        Timeout::at_time(2_000),
    )
    .unwrap();
    // Funds are escrowed while in flight.
    {
        let bank =
            net.a.module_mut(&port).unwrap().as_any_mut().downcast_mut::<TransferModule>().unwrap();
        assert_eq!(bank.balance("alice", "sol"), 300);
    }

    // Never delivered; B's clock passes the timeout (height 3 ⇒ 3000 ms).
    while net.height_b < 3 {
        net.sync_b_to_a();
    }
    let receipt_key = ibc_core::path::packet_receipt(
        &packet.destination_port,
        &packet.destination_channel,
        packet.sequence,
    );
    let proof = net.proof_b(3, &receipt_key);
    net.a.timeout_packet(&packet, proof).unwrap();

    let bank =
        net.a.module_mut(&port).unwrap().as_any_mut().downcast_mut::<TransferModule>().unwrap();
    assert_eq!(bank.balance("alice", "sol"), 500, "escrow refunded");
}

mod self_validation {
    use super::*;
    use ibc_core::client::ConsensusState;
    use ibc_core::handler::{SelfConsensusProof, SelfHistory};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;

    /// A's record of its own past consensus (what the guest contract's
    /// block history provides).
    #[derive(Clone, Default)]
    struct History {
        states: Rc<RefCell<HashMap<u64, ConsensusState>>>,
    }

    impl SelfHistory for History {
        fn self_consensus_at(&self, height: u64) -> Option<ConsensusState> {
            self.states.borrow().get(&height).copied()
        }
    }

    /// Runs Init on A and Try on B, then has A verify — with a real proof —
    /// that B's client of A holds a consensus state matching A's own
    /// history (the `validate_self_client` step NEAR leaves blank, §I).
    #[test]
    fn handshake_self_client_validation() {
        let mut net = Net::new();
        let history = History::default();
        net.a.set_self_history(Box::new(history.clone()));

        let conn_a = net
            .a
            .conn_open_init(net.client_of_b_on_a.clone(), net.client_of_a_on_b.clone())
            .unwrap();
        let h = net.sync_a_to_b();
        // Record what A's consensus actually was at that height.
        history
            .states
            .borrow_mut()
            .insert(h, ConsensusState { root: net.a.root(), timestamp_ms: h * 1_000 });
        let proof_init = net.proof_a(h, &ibc_core::path::connection(&conn_a));
        let conn_b = net
            .b
            .conn_open_try(
                net.client_of_a_on_b.clone(),
                net.client_of_b_on_a.clone(),
                conn_a.clone(),
                proof_init,
                None,
            )
            .unwrap();

        // B's update_client recorded A's consensus state in B's provable
        // store; prove it back to A.
        let hb = net.sync_b_to_a();
        let consensus_key = ibc_core::path::consensus_state(&net.client_of_a_on_b, h);
        let consensus = history.states.borrow()[&h];
        let honest = SelfConsensusProof {
            self_height: h,
            consensus,
            proof: net.proof_b(hb, &consensus_key),
        };
        let proof_try = net.proof_b(hb, &ibc_core::path::connection(&conn_b));
        net.a.conn_open_ack(&conn_a, conn_b.clone(), proof_try, Some(honest)).unwrap();
        assert!(net.a.connection(&conn_a).unwrap().is_open());

        // A fork claim — a consensus state that differs from A's history —
        // is rejected even with a valid membership proof of *something*.
        let mut net2 = Net::new();
        let history2 = History::default();
        net2.a.set_self_history(Box::new(history2.clone()));
        let conn_a2 = net2
            .a
            .conn_open_init(net2.client_of_b_on_a.clone(), net2.client_of_a_on_b.clone())
            .unwrap();
        let h2 = net2.sync_a_to_b();
        history2
            .states
            .borrow_mut()
            .insert(h2, ConsensusState { root: net2.a.root(), timestamp_ms: h2 * 1_000 });
        let proof_init2 = net2.proof_a(h2, &ibc_core::path::connection(&conn_a2));
        let conn_b2 = net2
            .b
            .conn_open_try(
                net2.client_of_a_on_b.clone(),
                net2.client_of_b_on_a.clone(),
                conn_a2.clone(),
                proof_init2,
                None,
            )
            .unwrap();
        let hb2 = net2.sync_b_to_a();
        // Claim the consensus B stored but at a height A never had.
        let stored = net2.b.client(&net2.client_of_a_on_b).unwrap().consensus_state(h2).unwrap();
        let forged = SelfConsensusProof {
            self_height: h2 + 77, // A has no record of this height
            consensus: stored,
            proof: net2.proof_b(hb2, &ibc_core::path::consensus_state(&net2.client_of_a_on_b, h2)),
        };
        let proof_try2 = net2.proof_b(hb2, &ibc_core::path::connection(&conn_b2));
        let err = net2.a.conn_open_ack(&conn_a2, conn_b2, proof_try2, Some(forged)).unwrap_err();
        assert!(
            matches!(err, IbcError::InvalidProof(_) | IbcError::ClientVerification(_)),
            "{err:?}"
        );
    }
}

#[test]
fn channel_close_handshake_and_post_close_rejections() {
    let (mut net, port, chan_a, chan_b) = echo_net();

    // A packet committed before the close can still be received…
    let packet = net.a.send_packet(&port, &chan_a, b"in flight".to_vec(), Timeout::NEVER).unwrap();

    // A closes its end.
    net.a.chan_close_init(&port, &chan_a).unwrap();
    assert_eq!(net.a.channel(&port, &chan_a).unwrap().state, ibc_core::ChannelState::Closed);
    // Sends on a closed channel fail.
    let err = net.a.send_packet(&port, &chan_a, b"too late".to_vec(), Timeout::NEVER).unwrap_err();
    assert!(matches!(err, IbcError::InvalidState(_)));
    // Closing twice fails.
    assert!(net.a.chan_close_init(&port, &chan_a).is_err());

    // B cannot confirm without a proof of A's closed end…
    let h = net.sync_a_to_b();
    let wrong = net.proof_a(h, b"not/the/channel");
    assert!(net.b.chan_close_confirm(&port, &chan_b, wrong).is_err());
    // …and succeeds with one.
    let proof = net.proof_a(h, &ibc_core::path::channel(&port, &chan_a));
    net.b.chan_close_confirm(&port, &chan_b, proof).unwrap();
    assert_eq!(net.b.channel(&port, &chan_b).unwrap().state, ibc_core::ChannelState::Closed);

    // The in-flight packet is refused after the close (B's end is closed).
    let key = ibc_core::path::packet_commitment(&port, &chan_a, packet.sequence);
    let proof = net.proof_a(h, &key);
    let err =
        net.b.recv_packet(&packet, proof, HostTime { height: 1, timestamp_ms: 1 }).unwrap_err();
    assert!(matches!(err, IbcError::InvalidState(_)));
}

mod state_machine_errors {
    use super::*;

    /// Every handshake message is rejected outside its expected state.
    #[test]
    fn handshake_messages_rejected_in_wrong_states() {
        let (mut net, port, chan_a, chan_b) = echo_net();

        // Connection already Open: Ack and Confirm are stale.
        let conn_a = net.a.channel(&port, &chan_a).unwrap().connection_id.clone();
        let conn_b = net.b.channel(&port, &chan_b).unwrap().connection_id.clone();
        let h = net.sync_b_to_a();
        let proof = net.proof_b(h, &ibc_core::path::connection(&conn_b));
        let err = net.a.conn_open_ack(&conn_a, conn_b.clone(), proof, None).unwrap_err();
        assert!(matches!(err, IbcError::InvalidState(_)), "{err:?}");
        let h = net.sync_a_to_b();
        let proof = net.proof_a(h, &ibc_core::path::connection(&conn_a));
        let err = net.b.conn_open_confirm(&conn_b, proof).unwrap_err();
        assert!(matches!(err, IbcError::InvalidState(_)), "{err:?}");

        // Channel already Open: Ack and Confirm are stale too.
        let h = net.sync_b_to_a();
        let proof = net.proof_b(h, &ibc_core::path::channel(&port, &chan_b));
        let err = net.a.chan_open_ack(&port, &chan_a, chan_b.clone(), proof).unwrap_err();
        assert!(matches!(err, IbcError::InvalidState(_)), "{err:?}");
        let h = net.sync_a_to_b();
        let proof = net.proof_a(h, &ibc_core::path::channel(&port, &chan_a));
        let err = net.b.chan_open_confirm(&port, &chan_b, proof).unwrap_err();
        assert!(matches!(err, IbcError::InvalidState(_)), "{err:?}");
    }

    /// Unknown identifiers give precise errors, not panics.
    #[test]
    fn unknown_identifiers_error_cleanly() {
        let net = Net::new();
        assert!(matches!(
            net.a.connection(&ibc_core::ConnectionId::new(9)),
            Err(IbcError::UnknownConnection(_))
        ));
        assert!(matches!(
            net.a.channel(&PortId::transfer(), &ChannelId::new(9)),
            Err(IbcError::UnknownChannel(..))
        ));
        assert!(matches!(
            net.a.client(&ibc_core::ClientId::new(9)),
            Err(IbcError::UnknownClient(_))
        ));
    }

    /// A channel cannot open over a connection that is not Open, and a
    /// port without a module cannot host channels.
    #[test]
    fn channel_prerequisites_enforced() {
        let mut net = Net::new();
        let port = PortId::named("echo");
        net.a.bind_port(port.clone(), Box::new(EchoModule::default()));
        // Connection exists but is only Init.
        let conn_a = net
            .a
            .conn_open_init(net.client_of_b_on_a.clone(), net.client_of_a_on_b.clone())
            .unwrap();
        let err = net
            .a
            .chan_open_init(port.clone(), conn_a.clone(), port.clone(), Ordering::Unordered, "v1")
            .unwrap_err();
        assert!(matches!(err, IbcError::InvalidState(_)), "{err:?}");

        // Unbound port.
        let err = net
            .a
            .chan_open_init(PortId::named("nobody-home"), conn_a, port, Ordering::Unordered, "v1")
            .unwrap_err();
        assert!(matches!(err, IbcError::UnboundPort(_)), "{err:?}");
    }

    /// Receiving on a port with no module is impossible even with valid
    /// proofs (channels require a bound module at open time).
    #[test]
    fn acks_with_wrong_commitment_rejected() {
        let (mut net, port, chan_a, _) = echo_net();
        let packet =
            net.a.send_packet(&port, &chan_a, b"payload".to_vec(), Timeout::NEVER).unwrap();
        let h = net.sync_a_to_b();
        let key = ibc_core::path::packet_commitment(&port, &chan_a, packet.sequence);
        let now = HostTime { height: 1, timestamp_ms: 1 };
        let ack = net.b.recv_packet(&packet, net.proof_a(h, &key), now).unwrap();

        // Tamper with the packet before acknowledging: the stored
        // commitment no longer matches.
        let mut tampered = packet.clone();
        tampered.payload = b"tampered".to_vec();
        let h = net.sync_b_to_a();
        let ack_key = ibc_core::path::packet_ack(
            &packet.destination_port,
            &packet.destination_channel,
            packet.sequence,
        );
        let err = net.a.acknowledge_packet(&tampered, &ack, net.proof_b(h, &ack_key)).unwrap_err();
        assert!(matches!(err, IbcError::InvalidProof(_)), "{err:?}");
    }
}
