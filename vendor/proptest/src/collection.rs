//! Collection strategies: `vec` and `btree_map`.

use core::ops::{Range, RangeInclusive};
use std::collections::BTreeMap;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.next_below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange { min: range.start, max: range.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange { min: *range.start(), max: *range.end() }
    }
}

/// A `Vec` strategy with element strategy and size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates `Vec`s whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// A `BTreeMap` strategy.
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys shrink the map; retry a bounded number of times so
        // the requested minimum size is reached in practice.
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 10 {
            map.insert(self.keys.sample(rng), self.values.sample(rng));
            attempts += 1;
        }
        map
    }
}

/// Generates `BTreeMap`s whose size falls in `size`.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size: size.into() }
}
