//! Deterministic RNG, configuration, and failure plumbing.

use core::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (returned by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives a stable 64-bit seed from a property name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64: small, fast, and deterministic across platforms.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// A uniform index below `bound` (which must be nonzero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
