//! Regex-like string strategies: `"pattern"` as a `Strategy<Value = String>`.
//!
//! Supports the subset of regex syntax the workspace's tests use: literal
//! characters, `.`, character classes `[...]` with ranges, and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

enum Atom {
    /// A fixed character.
    Literal(char),
    /// `.`: any printable ASCII character.
    AnyChar,
    /// `[...]`: one of an explicit character set.
    Class(Vec<char>),
}

fn printable(rng: &mut TestRng) -> char {
    (0x20u8 + rng.next_below(0x5f) as u8) as char
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut pos = 0;
    while pos < chars.len() {
        let atom = match chars[pos] {
            '.' => {
                pos += 1;
                Atom::AnyChar
            }
            '[' => {
                pos += 1;
                let mut set = Vec::new();
                while pos < chars.len() && chars[pos] != ']' {
                    if pos + 2 < chars.len() && chars[pos + 1] == '-' && chars[pos + 2] != ']' {
                        let (lo, hi) = (chars[pos], chars[pos + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        pos += 3;
                    } else {
                        set.push(chars[pos]);
                        pos += 1;
                    }
                }
                pos += 1; // closing ']'
                assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
                Atom::Class(set)
            }
            '\\' => {
                pos += 1;
                let c = chars.get(pos).copied().expect("dangling escape in pattern");
                pos += 1;
                Atom::Literal(c)
            }
            c => {
                pos += 1;
                Atom::Literal(c)
            }
        };

        // Quantifier, if any.
        let (min, max) = match chars.get(pos) {
            Some('?') => {
                pos += 1;
                (0, 1)
            }
            Some('*') => {
                pos += 1;
                (0, 8)
            }
            Some('+') => {
                pos += 1;
                (1, 8)
            }
            Some('{') => {
                let close =
                    chars[pos..].iter().position(|&c| c == '}').expect("unterminated quantifier");
                let body: String = chars[pos + 1..pos + close].iter().collect();
                pos += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("bad quantifier"),
                        hi.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };

        let count = min + rng.next_below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::AnyChar => out.push(printable(rng)),
                Atom::Class(set) => {
                    out.push(set[rng.next_below(set.len() as u64) as usize]);
                }
            }
        }
    }
    out
}
