//! `prop::sample`: index selection.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection whose size is not known until use.
#[derive(Clone, Copy, Debug)]
pub struct Index(u64);

impl Index {
    /// Projects onto a concrete collection size (must be nonzero).
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        (self.0 % size as u64) as usize
    }

    /// Selects an element of a nonempty slice.
    pub fn get<'a, T>(&self, from: &'a [T]) -> &'a T {
        &from[self.index(from.len())]
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
