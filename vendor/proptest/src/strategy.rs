//! The [`Strategy`] trait and core combinators.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of a given type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply samples a value from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, mapper: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, mapper }
    }

    /// Discards generated values failing the predicate (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { strategy: self, reason, predicate }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    mapper: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.mapper)(self.strategy.sample(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    strategy: S,
    reason: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.strategy.sample(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// A weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(weight, _)| *weight as u64).sum();
        let mut pick = rng.next_below(total.max(1));
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.sample(rng);
            }
            pick -= *weight as u64;
        }
        self.arms.last().expect("arms nonempty").1.sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.next_u128() % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = rng.next_u128() % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
