//! `any::<T>()` and the [`Arbitrary`] trait.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u128() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text JSON- and log-friendly.
        (0x20u8 + rng.next_below(0x5f) as u8) as char
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
