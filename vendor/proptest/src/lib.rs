//! Offline vendored mini-proptest.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! deterministic property-testing harness exposing the subset of the
//! proptest API its tests use: the [`proptest!`] macro, `prop_assert*`
//! macros, [`prop_oneof!`], range/tuple/collection/regex-string strategies,
//! `any::<T>()`, and `prop::sample::Index`.
//!
//! Differences from real proptest: sampling is seeded from the test name
//! (fully deterministic across runs) and failing cases are not shrunk.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Defines deterministic property tests.
///
/// Mirrors proptest's macro: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test]` functions whose arguments are drawn from
/// strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@inner ($config) $($rest)*);
    };
    (@inner ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_seed(
                $crate::test_runner::seed_from_name(stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)*
                let __outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__err) = __outcome {
                    ::core::panic!(
                        "property '{}' failed on case {}: {}",
                        stringify!($name),
                        __case,
                        __err
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@inner ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: {:?} == {:?}",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(*__left == *__right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: {:?} != {:?}",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(*__left != *__right, $($fmt)+);
    }};
}

/// Picks among several strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}
