//! Deserialization half of the vendored mini-serde.

use core::fmt;
use std::collections::{BTreeMap, HashMap};

use crate::value::{from_value, Number, Value};

/// Error trait every deserializer error implements (mirrors
/// `serde::de::Error`).
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data source (mirrors `serde::Deserializer`).
///
/// The vendored model is fully owned: a deserializer simply surrenders the
/// [`Value`] tree it wraps and typed impls pattern-match on it.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Surrenders the owned [`Value`] tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be deserialized (mirrors `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input (mirrors
/// `serde::de::DeserializeOwned`). Every type in the owned model qualifies.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn number_from<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Number, D::Error> {
    match deserializer.into_value()? {
        Value::Number(number) => Ok(number),
        other => Err(D::Error::custom(format!("expected number, got {}", other.kind()))),
    }
}

macro_rules! impl_deserialize_uint {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match number_from(deserializer)? {
                    Number::PosInt(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("{v} out of range for {}", stringify!($ty)))),
                    Number::NegInt(v) => {
                        Err(D::Error::custom(format!("{v} is negative, expected {}", stringify!($ty))))
                    }
                    Number::Float(v) => Err(D::Error::custom(format!("expected integer, got float {v}"))),
                }
            }
        }
    )*};
}

macro_rules! impl_deserialize_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match number_from(deserializer)? {
                    Number::PosInt(v) => i128::try_from(v)
                        .ok()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| D::Error::custom(format!("{v} out of range for {}", stringify!($ty)))),
                    Number::NegInt(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("{v} out of range for {}", stringify!($ty)))),
                    Number::Float(v) => Err(D::Error::custom(format!("expected integer, got float {v}"))),
                }
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, u128, usize);
impl_deserialize_int!(i8, i16, i32, i64, i128, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match number_from(deserializer)? {
            Number::PosInt(v) => Ok(v as f64),
            Number::NegInt(v) => Ok(v as f64),
            Number::Float(v) => Ok(v),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(v) => Ok(v),
            other => Err(D::Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::String(v) => Ok(v),
            other => Err(D::Error::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        let mut chars = text.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(()),
            other => Err(D::Error::custom(format!("expected null, got {}", other.kind()))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            value => from_value(value).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

fn array_from<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Vec<Value>, D::Error> {
    match deserializer.into_value()? {
        Value::Array(items) => Ok(items),
        other => Err(D::Error::custom(format!("expected array, got {}", other.kind()))),
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        array_from(deserializer)?
            .into_iter()
            .map(|item| from_value(item).map_err(D::Error::custom))
            .collect()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Into::into)
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|items| items.into_iter().collect())
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

/// Reparses a stringified map key back into the key type: string keys pass
/// through, numeric keys are parsed (the inverse of serialization).
fn key_from_string<K: DeserializeOwned, E: Error>(text: String) -> Result<K, E> {
    let as_string = from_value(Value::String(text.clone()));
    match as_string {
        Ok(key) => Ok(key),
        Err(_) => {
            let number = if let Some(stripped) = text.strip_prefix('-') {
                stripped.parse::<u128>().ok().map(|v| Number::NegInt(-(v as i128)))
            } else {
                text.parse::<u128>().ok().map(Number::PosInt)
            };
            let number = number.ok_or_else(|| E::custom(format!("bad map key {text:?}")))?;
            from_value(Value::Number(number)).map_err(E::custom)
        }
    }
}

fn object_from<'de, D: Deserializer<'de>>(
    deserializer: D,
) -> Result<Vec<(String, Value)>, D::Error> {
    match deserializer.into_value()? {
        Value::Object(entries) => Ok(entries),
        other => Err(D::Error::custom(format!("expected object, got {}", other.kind()))),
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        object_from(deserializer)?
            .into_iter()
            .map(|(key, value)| {
                Ok((key_from_string(key)?, from_value(value).map_err(D::Error::custom)?))
            })
            .collect()
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: DeserializeOwned + Eq + std::hash::Hash,
    V: DeserializeOwned,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        object_from(deserializer)?
            .into_iter()
            .map(|(key, value)| {
                Ok((key_from_string(key)?, from_value(value).map_err(D::Error::custom)?))
            })
            .collect()
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                let mut items = array_from(deserializer)?.into_iter();
                let expected = 0usize $(+ { let _ = stringify!($name); 1 })+;
                let provided = items.len();
                if provided != expected {
                    return Err(__D::Error::custom(format!(
                        "expected tuple of length {expected}, got {provided}"
                    )));
                }
                Ok(($(
                    from_value::<$name>(items.next().expect("length checked"))
                        .map_err(__D::Error::custom)?,
                )+))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.into_value()
    }
}
