//! Offline vendored mini-serde.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde-compatible facade: the same trait names and signatures the
//! real crate exposes, backed by a simple owned JSON-like [`value::Value`]
//! data model instead of serde's zero-copy visitor machinery. Only the API
//! surface this workspace actually uses is implemented.

pub mod de;
pub mod ser;
pub mod value;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::{from_value, to_value, Number, Value, ValueError};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
