//! The owned data model backing the vendored mini-serde.
//!
//! Every serialization produces a [`Value`] tree and every deserialization
//! consumes one. `serde_json` renders and parses this tree as JSON text.

use core::fmt;

/// A JSON-like owned value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so that
/// serialized output is deterministic — the testnet harness relies on
/// byte-identical metrics JSON across same-seed runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: non-negative integer, negative integer, or float.
///
/// 128-bit integer payloads are kept intact (ICS-20 token amounts are
/// `u128`), matching real serde_json's arbitrary-precision-free behaviour
/// closely enough for this workspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u128),
    /// A negative integer.
    NegInt(i128),
    /// A floating-point number (always finite when produced by serialization).
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/Infinity; mirror serde_json and emit null.
                    f.write_str("null")
                } else {
                    let text = format!("{v}");
                    if text.contains(['.', 'e', 'E']) {
                        f.write_str(&text)
                    } else {
                        // Mark integral floats as floats so they round-trip
                        // back into the Float variant.
                        write!(f, "{text}.0")
                    }
                }
            }
        }
    }
}

/// Error produced when converting between [`Value`] and Rust types.
#[derive(Clone, Debug)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl crate::ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl crate::de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// The serializer that turns any [`Serialize`](crate::Serialize) type into a
/// [`Value`].
pub struct ValueSerializer;

impl crate::ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// The deserializer that rebuilds any
/// [`Deserialize`](crate::Deserialize) type from a [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> crate::de::Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn into_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serializes `value` into the owned [`Value`] data model.
pub fn to_value<T: crate::Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes a `T` out of an owned [`Value`].
pub fn from_value<T: crate::DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

impl Value {
    /// Human-readable name of the JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
