//! Helpers called by `serde_derive`-generated code. Not public API.

use crate::de::{DeserializeOwned, Error as DeError};
use crate::ser::{Error as SerError, Serialize};
use crate::value::{from_value, to_value, Value};

/// Serializes one field, converting the value-model error into the caller's
/// serializer error type.
pub fn ser_field<T: Serialize + ?Sized, E: SerError>(field: &T) -> Result<Value, E> {
    to_value(field).map_err(E::custom)
}

/// Unwraps an object value, reporting the expected type name on mismatch.
pub fn expect_object<E: DeError>(value: Value, ty: &str) -> Result<Vec<(String, Value)>, E> {
    match value {
        Value::Object(entries) => Ok(entries),
        other => Err(E::custom(format!("expected object for {ty}, got {}", other.kind()))),
    }
}

/// Unwraps an array value, reporting the expected type name on mismatch.
pub fn expect_array<E: DeError>(value: Value, ty: &str) -> Result<Vec<Value>, E> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(E::custom(format!("expected array for {ty}, got {}", other.kind()))),
    }
}

/// Removes and deserializes a named field; missing fields are an error.
pub fn take_field<T: DeserializeOwned, E: DeError>(
    entries: &mut Vec<(String, Value)>,
    ty: &str,
    name: &str,
) -> Result<T, E> {
    match entries.iter().position(|(key, _)| key == name) {
        Some(index) => {
            let (_, value) = entries.remove(index);
            from_value(value).map_err(|e| E::custom(format!("{ty}.{name}: {e}")))
        }
        None => Err(E::custom(format!("missing field {ty}.{name}"))),
    }
}

/// Removes and deserializes a `#[serde(default)]` field; missing fields fall
/// back to `Default::default()`.
pub fn take_field_default<T: DeserializeOwned + Default, E: DeError>(
    entries: &mut Vec<(String, Value)>,
    ty: &str,
    name: &str,
) -> Result<T, E> {
    match entries.iter().position(|(key, _)| key == name) {
        Some(index) => {
            let (_, value) = entries.remove(index);
            from_value(value).map_err(|e| E::custom(format!("{ty}.{name}: {e}")))
        }
        None => Ok(T::default()),
    }
}

/// Deserializes the next element of a tuple (struct or variant).
pub fn next_elem<T: DeserializeOwned, E: DeError>(
    items: &mut std::vec::IntoIter<Value>,
    ty: &str,
) -> Result<T, E> {
    match items.next() {
        Some(value) => from_value(value).map_err(|e| E::custom(format!("{ty}: {e}"))),
        None => Err(E::custom(format!("not enough elements for {ty}"))),
    }
}

/// Wraps a value in the externally-tagged enum representation:
/// `{"VariantName": value}`.
pub fn tag(name: &str, value: Value) -> Value {
    Value::Object(vec![(name.to_string(), value)])
}

/// Deserializes a whole value into a field position (newtype structs,
/// newtype variants).
pub fn de_value<T: DeserializeOwned, E: DeError>(value: Value, ty: &str) -> Result<T, E> {
    from_value(value).map_err(|e| E::custom(format!("{ty}: {e}")))
}
