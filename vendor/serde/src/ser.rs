//! Serialization half of the vendored mini-serde.

use core::fmt;
use std::collections::{BTreeMap, HashMap};

use crate::value::{to_value, Number, Value};

/// Error trait every serializer error implements (mirrors `serde::ser::Error`).
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data sink (mirrors `serde::Serializer`).
///
/// Unlike real serde's 30-method visitor interface, the vendored model funnels
/// everything through [`Serializer::serialize_value`]; the typed helpers exist
/// so that handwritten impls in the workspace (e.g. `Hash`'s hex form) keep
/// their upstream-compatible shape.
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes an owned [`Value`] tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::String(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::PosInt(v as u128)))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        let value = if v < 0 {
            Value::Number(Number::NegInt(v as i128))
        } else {
            Value::Number(Number::PosInt(v as u128))
        };
        self.serialize_value(value)
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::Float(v)))
    }

    /// Serializes a unit value as `null`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A type that can be serialized (mirrors `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! impl_serialize_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Number(Number::PosInt(*self as u128)))
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i128;
                let value = if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u128))
                };
                serializer.serialize_value(value)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, u128, usize);
impl_serialize_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(inner) => inner.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

fn seq_to_value<T: Serialize, E: Error>(items: impl Iterator<Item = T>) -> Result<Value, E> {
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(&item).map_err(E::custom)?);
    }
    Ok(Value::Array(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = seq_to_value::<_, S::Error>(self.iter())?;
        serializer.serialize_value(value)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = seq_to_value::<_, S::Error>(self.iter())?;
        serializer.serialize_value(value)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = seq_to_value::<_, S::Error>(self.iter())?;
        serializer.serialize_value(value)
    }
}

/// Renders a map key: JSON object keys must be strings, so string keys pass
/// through and integer keys are stringified (matching real serde_json).
fn key_to_string<K: Serialize, E: Error>(key: &K) -> Result<String, E> {
    match to_value(key).map_err(E::custom)? {
        Value::String(text) => Ok(text),
        Value::Number(number) => Ok(number.to_string()),
        other => Err(E::custom(format!("map key must be a string, got {}", other.kind()))),
    }
}

fn map_to_value<'a, K, V, E>(entries: impl Iterator<Item = (&'a K, &'a V)>) -> Result<Value, E>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    E: Error,
{
    let mut out = Vec::new();
    for (key, value) in entries {
        out.push((key_to_string::<_, E>(key)?, to_value(value).map_err(E::custom)?));
    }
    // Deterministic output regardless of the source map's iteration order.
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Value::Object(out))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = map_to_value::<_, _, S::Error>(self.iter())?;
        serializer.serialize_value(value)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = map_to_value::<_, _, S::Error>(self.iter())?;
        serializer.serialize_value(value)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$idx).map_err(S::Error::custom)?),+];
                serializer.serialize_value(Value::Array(items))
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}
