//! Hand-rolled item parser: extracts just enough structure from a
//! `struct`/`enum` definition to generate serde impls, without syn.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// A parsed derive input item.
pub struct Input {
    /// Type name.
    pub name: String,
    /// Generic parameters, in declaration order.
    pub params: Vec<Param>,
    /// `where ...` clause text (empty when absent).
    pub where_clause: String,
    /// Struct or enum shape.
    pub kind: Kind,
}

/// One generic parameter.
pub struct Param {
    /// `'a`, `S`, or the `N` of `const N: usize`.
    pub name: String,
    /// Full declaration with bounds, default stripped (e.g. `S: NodeStore`).
    pub decl: String,
    /// Whether this is a type parameter (gets the serde bound added).
    pub is_type: bool,
}

/// Struct or enum.
pub enum Kind {
    /// A struct with the given fields.
    Struct(Fields),
    /// An enum with the given variants.
    Enum(Vec<Variant>),
}

/// Field shape of a struct or enum variant.
pub enum Fields {
    /// Named fields in declaration order.
    Named(Vec<Field>),
    /// Tuple fields (count only; types are recovered by inference).
    Tuple(usize),
    /// No fields.
    Unit,
}

/// A named field.
pub struct Field {
    /// Field identifier.
    pub name: String,
    /// Whether `#[serde(default)]` was present.
    pub default: bool,
}

/// One enum variant.
pub struct Variant {
    /// Variant identifier.
    pub name: String,
    /// Variant field shape.
    pub fields: Fields,
}

impl Input {
    /// Renders `(impl_generics, ty_generics, where_clause)` for an impl
    /// block, adding `extra_bound` to every type parameter and optionally a
    /// leading lifetime (the `'de` of `Deserialize<'de>`).
    pub fn split_generics(
        &self,
        extra_bound: &str,
        extra_lifetime: Option<&str>,
    ) -> (String, String, String) {
        let mut impl_params: Vec<String> = Vec::new();
        if let Some(lifetime) = extra_lifetime {
            impl_params.push(lifetime.to_string());
        }
        for param in &self.params {
            if param.is_type {
                if param.decl.contains(':') {
                    impl_params.push(format!("{} + {extra_bound}", param.decl));
                } else {
                    impl_params.push(format!("{}: {extra_bound}", param.decl));
                }
            } else {
                impl_params.push(param.decl.clone());
            }
        }
        let impl_generics = if impl_params.is_empty() {
            String::new()
        } else {
            format!("<{}>", impl_params.join(", "))
        };
        let ty_generics = if self.params.is_empty() {
            String::new()
        } else {
            let names: Vec<&str> = self.params.iter().map(|p| p.name.as_str()).collect();
            format!("<{}>", names.join(", "))
        };
        (impl_generics, ty_generics, self.where_clause.clone())
    }
}

/// Renders a token slice back to source text via `TokenStream`'s `Display`.
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Skips attributes and visibility modifiers; reports whether a
/// `#[serde(default)]` attribute was among them.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(group)) = tokens.get(*pos + 1) {
                    if attr_is_serde_default(group) {
                        has_default = true;
                    }
                }
                *pos += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1;
                    }
                }
            }
            _ => return has_default,
        }
    }
}

/// True for the bracket group of a `#[serde(default)]` attribute.
fn attr_is_serde_default(group: &Group) -> bool {
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|tree| matches!(tree, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Parses a derive input item.
pub fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let is_enum = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("derive input must be a struct or enum, found {other:?}"),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    pos += 1;

    let params = if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        pos += 1;
        parse_generics(&tokens, &mut pos)
    } else {
        Vec::new()
    };

    let mut where_clause = String::new();
    if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        pos += 1;
        let start = pos;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => pos += 1,
            }
        }
        where_clause = format!("where {}", tokens_to_string(&tokens[start..pos]));
    }

    let kind = if is_enum {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            None => Kind::Struct(Fields::Unit),
            other => panic!("expected struct body, found {other:?}"),
        }
    };

    Input { name, params, where_clause, kind }
}

/// Parses generic parameters after the opening `<` up to the matching `>`.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<Param> {
    let mut collected: Vec<TokenTree> = Vec::new();
    let mut depth = 1usize;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                collected.push(tokens[*pos].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *pos += 1;
                    break;
                }
                collected.push(tokens[*pos].clone());
            }
            tree => collected.push(tree.clone()),
        }
        *pos += 1;
    }

    split_top_level(&collected, ',')
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| parse_param(&part))
        .collect()
}

/// Splits a token list on a separator punct at angle-bracket depth zero.
/// Groups are atomic trees, so only `<`/`>` puncts affect depth.
fn split_top_level(tokens: &[TokenTree], separator: char) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0usize;
    for tree in tokens {
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                c if c == separator && depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("parts never empty").push(tree.clone());
    }
    parts
}

/// Parses one generic parameter, stripping any `= Default` suffix.
fn parse_param(tokens: &[TokenTree]) -> Param {
    let without_default = match split_top_level(tokens, '=').into_iter().next() {
        Some(head) => head,
        None => tokens.to_vec(),
    };
    match without_default.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            let lifetime_name = match without_default.get(1) {
                Some(TokenTree::Ident(id)) => format!("'{id}"),
                other => panic!("expected lifetime name, found {other:?}"),
            };
            Param { name: lifetime_name, decl: tokens_to_string(&without_default), is_type: false }
        }
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            let const_name = match without_default.get(1) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected const parameter name, found {other:?}"),
            };
            Param { name: const_name, decl: tokens_to_string(&without_default), is_type: false }
        }
        Some(TokenTree::Ident(id)) => {
            Param { name: id.to_string(), decl: tokens_to_string(&without_default), is_type: true }
        }
        other => panic!("unsupported generic parameter starting with {other:?}"),
    }
}

/// Parses the named fields of a brace-delimited struct body or variant.
fn parse_named_fields(group: &Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else {
            break;
        };
        let name = id.to_string();
        pos += 1;
        // Skip the `:` and the type, up to a top-level comma.
        let mut depth = 0usize;
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body.
fn count_tuple_fields(group: &Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut count = 0usize;
    let mut depth = 0usize;
    let mut pending = false;
    for tree in &tokens {
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    if pending {
                        count += 1;
                    }
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(group: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else {
            break;
        };
        let name = id.to_string();
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional `= discriminant` expression.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            let mut depth = 0usize;
            while pos < tokens.len() {
                if let TokenTree::Punct(p) = &tokens[pos] {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth = depth.saturating_sub(1),
                        ',' if depth == 0 => break,
                        _ => {}
                    }
                }
                pos += 1;
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    variants
}
