//! Offline vendored `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the vendored mini-serde.
//!
//! The build environment has no crates.io access, so there is no syn/quote;
//! the input item is parsed with a small hand-rolled walker over
//! [`proc_macro::TokenTree`]s and the generated impls are assembled as source
//! text. Supports the shapes this workspace uses: named/tuple/unit structs,
//! enums with unit/tuple/struct variants, type generics with bounds and
//! defaults, and the `#[serde(default)]` field attribute.

use proc_macro::TokenStream;

mod parse;

use parse::{Fields, Input, Kind};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    let body = serialize_body(&item);
    let (impl_generics, ty_generics, where_clause) =
        item.split_generics("::serde::ser::Serialize", None);
    let name = &item.name;
    let code = format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::ser::Serialize for {name}{ty_generics} {where_clause} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    let body = deserialize_body(&item);
    let (impl_generics, ty_generics, where_clause) =
        item.split_generics("::serde::de::DeserializeOwned", Some("'de"));
    let name = &item.name;
    let code = format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::de::Deserialize<'de> for {name}{ty_generics} {where_clause} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    code.parse().expect("generated Deserialize impl parses")
}

fn serialize_body(item: &Input) -> String {
    match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let mut out = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::value::Value)> = ::std::vec::Vec::new();\n",
            );
            for field in fields {
                let fname = &field.name;
                out.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{fname}\"), \
                     ::serde::__private::ser_field::<_, __S::Error>(&self.{fname})?));\n"
                ));
            }
            out.push_str("__serializer.serialize_value(::serde::value::Value::Object(__fields))");
            out
        }
        Kind::Struct(Fields::Tuple(1)) => "__serializer.serialize_value(\
             ::serde::__private::ser_field::<_, __S::Error>(&self.0)?)"
            .to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|i| format!("::serde::__private::ser_field::<_, __S::Error>(&self.{i})?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "__serializer.serialize_value(\
                 ::serde::value::Value::Array(::std::vec![{items}]))"
            )
        }
        Kind::Struct(Fields::Unit) => {
            "__serializer.serialize_value(::serde::value::Value::Null)".to_string()
        }
        Kind::Enum(variants) => {
            let name = &item.name;
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_value(\
                         ::serde::value::Value::String(\
                         ::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\n\
                         let __inner = ::serde::__private::ser_field::<_, __S::Error>(__f0)?;\n\
                         __serializer.serialize_value(\
                         ::serde::__private::tag(\"{vname}\", __inner))\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds =
                            (0..*n).map(|i| format!("__f{i}")).collect::<Vec<_>>().join(", ");
                        let items = (0..*n)
                            .map(|i| {
                                format!("::serde::__private::ser_field::<_, __S::Error>(__f{i})?")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let __inner = ::serde::value::Value::Array(::std::vec![{items}]);\n\
                             __serializer.serialize_value(\
                             ::serde::__private::tag(\"{vname}\", __inner))\n}}\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds =
                            fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>().join(", ");
                        let mut pushes = String::new();
                        for field in fields {
                            let fname = &field.name;
                            pushes.push_str(&format!(
                                "__inner.push((::std::string::String::from(\"{fname}\"), \
                                 ::serde::__private::ser_field::<_, __S::Error>({fname})?));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut __inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             __serializer.serialize_value(::serde::__private::tag(\
                             \"{vname}\", ::serde::value::Value::Object(__inner)))\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

fn deserialize_body(item: &Input) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let mut out = format!(
                "let __value = __deserializer.into_value()?;\n\
                 let mut __entries = \
                 ::serde::__private::expect_object::<__D::Error>(__value, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for field in fields {
                let fname = &field.name;
                let helper = if field.default { "take_field_default" } else { "take_field" };
                out.push_str(&format!(
                    "{fname}: ::serde::__private::{helper}::<_, __D::Error>(\
                     &mut __entries, \"{name}\", \"{fname}\")?,\n"
                ));
            }
            out.push_str("})");
            out
        }
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::core::result::Result::Ok({name}(\
             ::serde::__private::de_value::<_, __D::Error>(\
             __deserializer.into_value()?, \"{name}\")?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let elems = (0..*n)
                .map(|_| {
                    format!(
                        "::serde::__private::next_elem::<_, __D::Error>(\
                         &mut __items, \"{name}\")?"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let mut __items = ::serde::__private::expect_array::<__D::Error>(\
                 __deserializer.into_value()?, \"{name}\")?.into_iter();\n\
                 ::core::result::Result::Ok({name}({elems}))"
            )
        }
        Kind::Struct(Fields::Unit) => {
            format!("let _ = __deserializer.into_value()?;\n::core::result::Result::Ok({name})")
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::__private::de_value::<_, __D::Error>(\
                         __inner, \"{name}::{vname}\")?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems = (0..*n)
                            .map(|_| {
                                format!(
                                    "::serde::__private::next_elem::<_, __D::Error>(\
                                     &mut __items, \"{name}::{vname}\")?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __items = \
                             ::serde::__private::expect_array::<__D::Error>(\
                             __inner, \"{name}::{vname}\")?.into_iter();\n\
                             ::core::result::Result::Ok({name}::{vname}({elems}))\n}}\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut field_inits = String::new();
                        for field in fields {
                            let fname = &field.name;
                            let helper =
                                if field.default { "take_field_default" } else { "take_field" };
                            field_inits.push_str(&format!(
                                "{fname}: ::serde::__private::{helper}::<_, __D::Error>(\
                                 &mut __ventries, \"{name}::{vname}\", \"{fname}\")?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __ventries = \
                             ::serde::__private::expect_object::<__D::Error>(\
                             __inner, \"{name}::{vname}\")?;\n\
                             ::core::result::Result::Ok({name}::{vname} {{\n{field_inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "let __value = __deserializer.into_value()?;\n\
                 match __value {{\n\
                 ::serde::value::Value::String(__tag) => match __tag.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown unit variant {{__other}} of {name}\"))),\n\
                 }},\n\
                 ::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = __entries.into_iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    }
}
