//! Offline vendored mini-criterion.
//!
//! Implements the slice of the criterion API the workspace's benches use
//! (`bench_function`, `benchmark_group`, `iter`, `iter_batched`,
//! `criterion_group!`, `criterion_main!`) with straightforward wall-clock
//! timing: a short warmup, then timed batches, reporting the mean per
//! iteration. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Hint for how expensive `iter_batched` setup values are. All variants
/// behave identically here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&name.into());
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name.into()));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times a routine, calling it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup and per-call cost estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~2ms per sample, bounded to keep total runtime small.
        let per_sample =
            (Duration::from_millis(2).as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as usize;
        for _ in 0..self.sample_size.min(40) {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    /// Times a routine over fresh inputs built by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size.min(40) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("nonempty");
        let max = self.samples.iter().max().expect("nonempty");
        println!("{name:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
