//! Recursive-descent JSON parser.

use serde::value::{Number, Value};

use crate::Error;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        use serde::de::Error as _;
        Error::custom(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {keyword}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            let c = char::from_u32(scalar)
                                .ok_or_else(|| self.error("invalid unicode escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            let value = text.parse::<f64>().map_err(|_| self.error("invalid float"))?;
            Ok(Value::Number(Number::Float(value)))
        } else if negative {
            let value = text.parse::<i128>().map_err(|_| self.error("integer out of range"))?;
            Ok(Value::Number(Number::NegInt(value)))
        } else {
            let value = text.parse::<u128>().map_err(|_| self.error("integer out of range"))?;
            Ok(Value::Number(Number::PosInt(value)))
        }
    }
}
