//! Offline vendored mini-serde_json.
//!
//! Renders and parses JSON text over the vendored serde crate's owned
//! [`Value`] data model. Implements the functions this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`to_vec_pretty`],
//! [`from_str`], [`from_slice`].

use core::fmt;

pub use serde::value::{Number, Value};

mod read;
mod write;

/// Error serializing or deserializing JSON.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write::write_compact(&tree, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write::write_pretty(&tree, &mut out, 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` as pretty-printed JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::DeserializeOwned>(text: &str) -> Result<T> {
    let tree = read::parse(text)?;
    serde::from_value(tree).map_err(|e| Error(e.to_string()))
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: serde::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    serde::to_value(value).map_err(|e| Error(e.to_string()))
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T> {
    serde::from_value(value).map_err(|e| Error(e.to_string()))
}
