//! JSON text rendering.

use serde::value::Value;

/// Appends `value` as compact JSON (no whitespace).
pub fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(number) => out.push_str(&number.to_string()),
        Value::String(text) => write_escaped(text, out),
        Value::Array(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (index, (key, item)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Appends `value` as pretty-printed JSON with two-space indentation.
pub fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (index, (key, item)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Appends a JSON string literal with the required escapes.
fn write_escaped(text: &str, out: &mut String) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
