//! Offline vendored `rand` placeholder.
//!
//! The workspace declares `rand` as a dev-dependency but all simulation
//! randomness flows through `sim_crypto::rng`'s deterministic generators.
//! This crate exists only so dependency resolution succeeds offline; a tiny
//! seedable generator is provided for ad-hoc use.

/// A minimal xorshift64* generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a nonzero seed (zero is mapped to a fixed
    /// constant).
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}
