//! # Be My Guest — umbrella crate
//!
//! Re-exports the whole guest-blockchain reproduction (DSN 2025) behind one
//! dependency. See the individual crates for details:
//!
//! * [`guest_chain`] — the guest blockchain itself (the paper's §III),
//! * [`sealable_trie`] — provable storage with sealing (§III-A),
//! * [`host_sim`] — the Solana-like host chain,
//! * [`ibc_core`] — the IBC protocol stack,
//! * [`apps`] — stacked IBC applications and middleware (ICS-20/27/721, fees),
//! * [`counterparty_sim`] — the Picasso-like counterparty chain,
//! * [`relayer`] — packet relaying and light-client updates (Alg. 2),
//! * [`chaos`] — deterministic fault injection and invariant checking,
//! * [`telemetry`] — deterministic tracing, metrics and run reports,
//! * [`profiler`] — wall-clock self-profiling with phase attribution,
//! * [`testnet`] — the discrete-event simulation harness,
//! * [`mesh`] — multi-chain topologies and multi-hop packet routing,
//! * [`workload`] — the heavy-traffic workload engine,
//! * [`sim_crypto`] — hashing and signatures.
//!
//! Runnable walk-throughs live in `examples/`; start with
//! `cargo run --example quickstart`.

pub use apps;
pub use chaos;
pub use counterparty_sim;
pub use guest_chain;
pub use host_sim;
pub use ibc_core;
pub use mesh;
pub use profiler;
pub use relayer;
pub use sealable_trie;
pub use sim_crypto;
pub use telemetry;
pub use testnet;
pub use workload;
