//! Incident-response walkthrough: the three operational hazards the paper
//! discusses, replayed against a live deployment —
//!
//! 1. §V-C: the quorum-dominant validator goes down; the chain stalls and
//!    recovers when it returns (the Fig. 2 stragglers).
//! 2. §III-C: a rogue validator equivocates; a fisherman reports it and
//!    the contract slashes.
//! 3. §VI-A: the chain is abandoned; self-destruction releases the stakes
//!    so the last validators are not trapped.
//!
//! ```text
//! cargo run --release --example incident_response
//! ```

use be_my_guest::guest_chain::{GuestInstruction, GuestOp};
use be_my_guest::host_sim::{FeePolicy, Instruction, Pubkey, Transaction};
use be_my_guest::sim_crypto::schnorr::Keypair;
use be_my_guest::testnet::config::RogueConfig;
use be_my_guest::testnet::{Testnet, TestnetConfig, ValidatorProfile};

fn submit(net: &mut Testnet, payer: Pubkey, op: GuestOp) {
    let tx = Transaction::build(
        payer,
        1,
        vec![Instruction::new(
            Pubkey::from_label("guest-program"),
            vec![Pubkey::from_label("guest-state")],
            GuestInstruction::Inline { op }.encode(),
        )],
        FeePolicy::BaseOnly,
    )
    .unwrap();
    net.host.submit(tx);
}

fn main() {
    // ------------------------------------------------------------------
    // Incident 1: the dominant validator's outage (§V-C)
    // ------------------------------------------------------------------
    println!("incident 1 — dominant validator outage");
    let mut config = TestnetConfig::small(7001);
    config.validators = vec![
        ValidatorProfile {
            stake: 1_000,
            outage: Some((60_000, 6 * 60_000)), // down minutes 1–6
            ..ValidatorProfile::reliable(1_000)
        },
        ValidatorProfile::reliable(100),
        ValidatorProfile::reliable(100),
    ];
    config.workload.outbound_mean_gap_ms = 45_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    net.run_for(10 * 60_000);

    let latencies: Vec<u64> =
        net.send_records.iter().filter_map(|r| r.finalised_ms.map(|f| f - r.sent_ms)).collect();
    let worst = latencies.iter().max().copied().unwrap_or(0);
    let typical = latencies.iter().min().copied().unwrap_or(0);
    println!("  transfers: {} completed", latencies.len());
    println!(
        "  typical finalisation {:.1} s; worst (stalled through the outage) {:.0} s",
        typical as f64 / 1_000.0,
        worst as f64 / 1_000.0
    );
    println!("  chain recovered: head finalised = {}\n", {
        let c = net.contract.borrow();
        c.is_finalised(c.head_height())
    });

    // ------------------------------------------------------------------
    // Incident 2: equivocation caught by a fisherman (§III-C)
    // ------------------------------------------------------------------
    println!("incident 2 — rogue validator vs. fisherman");
    let mut config = TestnetConfig::small(7002);
    config.guest.slashing_enabled = true;
    config.rogue = Some(RogueConfig { validator: 3, equivocate_probability: 0.6 });
    config.workload.outbound_mean_gap_ms = 40_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    let rogue = Keypair::from_seed(0xA11CE + 3).public();
    let stake_before = net.contract.borrow().staking().stake_of(&rogue);
    net.run_for(6 * 60_000);
    println!("  fisherman reports submitted: {}", net.fisherman_reports);
    println!(
        "  rogue stake: {stake_before} → {} (slashed on-chain)",
        net.contract.borrow().staking().stake_of(&rogue)
    );
    println!("  chain still finalising: {}\n", {
        let c = net.contract.borrow();
        c.is_finalised(c.head_height())
    });

    // ------------------------------------------------------------------
    // Incident 3: abandonment and self-destruction (§VI-A)
    // ------------------------------------------------------------------
    println!("incident 3 — abandonment and self-destruction");
    let mut config = TestnetConfig::small(7003);
    config.guest.abandonment_timeout_ms = 90_000;
    config.guest.delta_ms = u64::MAX / 4; // no empty blocks: true silence
    config.workload.outbound_mean_gap_ms = u64::MAX / 4;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    let liquidator = Pubkey::from_label("liquidator");
    net.host.bank_mut().airdrop(liquidator, 10_000_000_000);

    let stake_total = net.contract.borrow().staking().total_stake();
    submit(&mut net, liquidator, GuestOp::SelfDestruct);
    net.step();
    println!(
        "  early self-destruct rejected (chain alive): destroyed = {}",
        net.contract.borrow().is_destroyed()
    );
    net.run_for(100_000); // silence past the abandonment timeout
    submit(&mut net, liquidator, GuestOp::SelfDestruct);
    net.step();
    println!(
        "  after 100 s of silence: destroyed = {}, {} stake released to the caller",
        net.contract.borrow().is_destroyed(),
        stake_total
    );
}
