//! Trace explorer: boot a small deployment, let a few transfers flow, and
//! pretty-print one packet's complete lifecycle as telemetry saw it —
//! `send_packet`, the chunked light-client update spans that carried its
//! finality proof, delivery on the counterparty, and the acknowledgement.
//! Then boot a three-chain mesh and render a multi-hop route the same way:
//! one linked lifecycle spanning every leg.
//!
//! With `--alerts`, a mid-run validator outage is injected and the online
//! monitor's firing/resolved alert transitions are woven inline into the
//! affected packet's timeline.
//!
//! With `--busiest N`, the N highest-latency packet lifecycles are listed
//! as a table before the detailed walk — the quick way to find where a
//! heavy-traffic run spent its time. With `--sample N` the run keeps only
//! 1-in-N packet traces (anomalies always kept), and the table carries a
//! note qualifying what the ranking covers.
//!
//! With `--profile <BENCH_profile.json>`, the explorer instead loads a
//! [`ProfileReport`] written by `cargo run -p bench --bin profile` and
//! renders its hot-path table and phase tree: where the *simulator's own
//! wall clock* went, as opposed to where the simulated packets' time went.
//!
//! With `--apps`, a second mesh runs with the full application stacks
//! engaged — ICS-29 fees on the transfer stack, an NFT route across all
//! three chains — and the explorer renders the NFT route's linked
//! lifecycle plus each chain's per-application stack counters and the
//! mesh-wide fee flow.
//!
//! With `--attribution`, the run's completed lifecycles are stitched
//! into causal graphs and the critical-path latency attribution tables
//! are rendered (per-stage, per-link, per-app), plus the slowest
//! packet's causal graph with its critical path marked.
//!
//! With `--postmortem`, a post-mortem bundle is collected from the run —
//! one trigger per invariant violation or firing alert, each with the
//! implicated packets' causal graphs, the journal tail and the relevant
//! metric families. Pair it with `--alerts` to have something to
//! collect; a healthy run reports zero triggers.
//!
//! ```text
//! cargo run --release --example trace_explorer -- \
//!     [--seed N] [--days N] [--alerts] [--busiest N] [--sample N] \
//!     [--apps] [--attribution] [--postmortem] \
//!     [--profile <BENCH_profile.json>]
//! ```

use be_my_guest::apps::PacketFee;
use be_my_guest::ibc_core::types::PortId;
use be_my_guest::mesh::{ica_port, nft_port, Mesh, MeshConfig, PathPolicy};
use be_my_guest::profiler::ProfileReport;
use be_my_guest::telemetry::{
    render_packet_trace_with_alerts, render_route_trace_with_alerts, AttributionReport,
    CausalGraph, PostmortemBundle, POSTMORTEM_TAIL,
};
use be_my_guest::testnet::{ChaosPlan, Fault, TelemetryMode, Testnet, TestnetConfig};

const HOUR_MS: u64 = 60 * 60 * 1_000;
const DAY_MS: u64 = 24 * HOUR_MS;

fn main() {
    let mut seed = 2026u64;
    let mut days = 1u64;
    let mut with_alerts = false;
    let mut busiest = 0usize;
    let mut sample: Option<u64> = None;
    let mut with_apps = false;
    let mut with_attribution = false;
    let mut with_postmortem = false;
    let mut profile_path: Option<String> = None;
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--profile" => profile_path = iter.next().cloned(),
            "--seed" => {
                if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            "--days" => {
                if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                    days = v;
                }
            }
            "--alerts" => with_alerts = true,
            "--busiest" => {
                if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                    busiest = v;
                }
            }
            "--sample" => sample = iter.next().and_then(|v| v.parse().ok()),
            "--apps" => with_apps = true,
            "--attribution" => with_attribution = true,
            "--postmortem" => with_postmortem = true,
            _ => {}
        }
    }
    let days = days.clamp(1, 30);

    // Profile mode: instead of running a deployment, explain where the
    // simulator's own wall clock went in a report the `profile` bench
    // wrote (`cargo run --release -p bench --bin profile -- \
    //   --profile-json BENCH_profile.json`).
    if let Some(path) = profile_path {
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            eprintln!("could not read {path}: {err}");
            std::process::exit(1);
        });
        let report = ProfileReport::from_json(&raw).unwrap_or_else(|err| {
            eprintln!("{path} is not a profile report: {err}");
            std::process::exit(1);
        });
        println!(
            "self-profile from {path}: {:.1} s profiled wall across {} phase(s)",
            report.total_ms / 1_000.0,
            report.entries.len(),
        );
        println!("\nhot paths (self time, top 15):");
        println!("{}", report.render_table(15));
        println!("phase tree:");
        println!("{}", report.render_tree());
        return;
    }

    // Light traffic so individual packets are easy to follow.
    let mut config = TestnetConfig::small(seed);
    config.workload.outbound_mean_gap_ms = 3 * 60 * 1_000;
    config.workload.inbound_mean_gap_ms = 5 * 60 * 1_000;
    if let Some(keep_one_in) = sample {
        config.telemetry = TelemetryMode::Sampled { keep_one_in: keep_one_in.max(1) };
    }
    if with_alerts {
        // Crash two of the four equal-stake validators for four hours:
        // quorum drops below 2/3, guest finality halts, and the monitor's
        // staleness and stuck-packet detectors walk their alert lifecycle
        // while packets wait out the outage.
        let outage = (4 * HOUR_MS, 8 * HOUR_MS);
        config.chaos = ChaosPlan::new(seed)
            .with(outage.0, outage.1, Fault::ValidatorCrash { validator: 0 })
            .with(outage.0, outage.1, Fault::ValidatorCrash { validator: 1 });
    }
    let mut net = Testnet::build(config);
    net.run_for(days * DAY_MS);

    let report = net.run_report("trace-explorer");
    println!("{}", report.render_text());

    // Critical-path attribution: where the simulated packets' time went,
    // stitched from the causal graphs of every completed lifecycle.
    if with_attribution {
        let attribution = AttributionReport::from_report(&report);
        println!("{}", attribution.render_text());
        if let Some(packet) = report.slowest_packet() {
            println!("slowest packet's causal graph (critical path marked *):");
            println!("{}", CausalGraph::from_packet(packet).render_text());
        }
    }

    // Post-mortem bundles: one per invariant violation or firing alert,
    // with the implicated causal graphs, journal tail and metric families.
    if with_postmortem {
        let bundle =
            PostmortemBundle::collect(&report, &net.telemetry().journal_jsonl(), POSTMORTEM_TAIL);
        println!("{}", bundle.render_text());
        if bundle.triggers.is_empty() && !with_alerts {
            println!("(healthy run, nothing to collect — try --postmortem with --alerts)");
        }
    }

    // The N packets that spent the longest between their first and last
    // recorded event — where a heavy run's latency actually lives.
    if busiest > 0 {
        let mut ranked: Vec<_> = report.packets.iter().collect();
        ranked.sort_by_key(|p| (std::cmp::Reverse(p.last_ms - p.first_ms), p.trace));
        println!("busiest {} packet(s) by lifecycle latency:", busiest.min(ranked.len()));
        if let Some(sampling) = &report.meta.sampling {
            println!(
                "  (note: traces head-sampled 1-in-{} — ranking covers the {} kept \
                 plus {} always-kept anomalous lifecycles, not the {} dropped)",
                sampling.keep_one_in, sampling.kept, sampling.escalated, sampling.dropped,
            );
        }
        println!(
            "  {:<6} {:>24} {:>12} {:>12} {:>11} {:>9}",
            "trace", "packet", "first ms", "last ms", "latency ms", "complete"
        );
        for packet in ranked.into_iter().take(busiest) {
            println!(
                "  {:<6} {:>24} {:>12} {:>12} {:>11} {:>9}",
                packet.trace,
                format!("{}/{}#{}", packet.origin, packet.channel, packet.sequence),
                packet.first_ms,
                packet.last_ms,
                packet.last_ms - packet.first_ms,
                if packet.completed { "yes" } else { "no" },
            );
        }
        println!();
    }

    // Walk one packet's lifecycle end to end: every event the journal
    // recorded for it plus every relayer job span linked to it. With
    // --alerts, prefer a packet implicated by a firing alert — the one the
    // outage actually stalled — and weave the transitions into its
    // timeline; otherwise take the slowest.
    let implicated = report
        .alerts
        .iter()
        .filter(|a| a.state == "firing")
        .flat_map(|a| a.linked_traces.iter())
        .find_map(|t| report.packets.iter().find(|p| p.trace == *t));
    let Some(packet) = implicated.or_else(|| report.slowest_packet()) else {
        eprintln!("no packets completed — run longer or lower the workload gaps");
        std::process::exit(1);
    };
    if implicated.is_some() {
        println!("packet implicated by a firing alert, end to end:");
    } else {
        println!("slowest packet, end to end:");
    }
    println!("{}", render_packet_trace_with_alerts(packet, &report.alerts));

    // The same trace is addressable by (origin, channel, sequence) — the
    // identity a packet keeps across both chains and the relayer.
    let by_key = report
        .packet(&packet.origin, &packet.channel, packet.sequence)
        .expect("the chosen packet is indexed by origin, channel and sequence");
    assert_eq!(by_key.trace, packet.trace);
    println!(
        "(looked up again as {}/{}#{} → trace {})",
        by_key.origin, by_key.channel, by_key.sequence, by_key.trace
    );

    // Now the multi-hop view: a chain-a → chain-b → chain-c transfer over
    // a 3-chain line mesh. The route trace links every leg's packet trace,
    // so the rendering shows one timeline across all three chains.
    let mut mesh = Mesh::build(MeshConfig::line(3, seed)).expect("3-chain line builds");
    mesh.mint("chain-a", "alice", "tok-a", 1_000).expect("chain-a exists");
    let route = mesh
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            250,
            &PathPolicy::FewestHops,
        )
        .expect("the 2-hop route resolves");
    mesh.run_until_settled(route, 60 * 60 * 1_000);
    mesh.run_for(10 * 60 * 1_000); // drain the ack tail

    let mesh_report = mesh.run_report("trace-explorer-mesh");
    let label = &mesh.routes()[route].label;
    let summary = mesh_report.routes.iter().find(|r| &r.label == label).expect("route trace");
    println!("\nmulti-hop route, end to end:");
    println!("{}", render_route_trace_with_alerts(summary, &mesh_report.alerts));

    // The stacked-application view: the same 3-chain line, but with the
    // fee middleware charging every transfer hop and an ICS-721 NFT
    // riding a 2-hop route through its own application stack.
    if with_apps {
        let mut config = MeshConfig::line(3, seed);
        config.packet_fee = Some(PacketFee::flat(5, 3, 2));
        let mut anet = Mesh::build(config).expect("3-chain line builds");
        anet.mint("chain-a", "alice", "tok-a", 1_000).expect("chain-a exists");
        anet.mint_nft("chain-a", "art", "mona-lisa", "alice").expect("chain-a exists");
        anet.ica_register_on("chain-a", "chain-b", "alice").expect("direct ica link");
        let fungible = anet
            .send_along_route(
                "chain-a",
                "chain-c",
                "alice",
                "carol",
                "tok-a",
                250,
                &PathPolicy::FewestHops,
            )
            .expect("the 2-hop transfer resolves");
        let tokens = vec!["mona-lisa".to_string()];
        let nft_route = anet
            .send_nft_along_route(
                "chain-a",
                "chain-c",
                "alice",
                "carol",
                "art",
                &tokens,
                &PathPolicy::FewestHops,
            )
            .expect("the 2-hop NFT route resolves");
        anet.run_until_settled(fungible, 60 * 60 * 1_000);
        anet.run_until_settled(nft_route, 60 * 60 * 1_000);
        anet.run_for(10 * 60 * 1_000); // drain the ack tail

        let apps_report = anet.run_report("trace-explorer-apps");
        let label = &anet.routes()[nft_route].label;
        let summary = apps_report.routes.iter().find(|r| &r.label == label).expect("route trace");
        println!("\nNFT route through the stacked applications, end to end:");
        println!("{}", render_route_trace_with_alerts(summary, &apps_report.alerts));

        println!("per-application stack counters (received/errors/acked/timed out):");
        let ports: [(&str, PortId); 3] =
            [("transfer", PortId::transfer()), ("nft", nft_port()), ("ica", ica_port())];
        for node in anet.nodes() {
            for (app, port) in &ports {
                let stack = node.stack_on(port);
                let c = stack.counters();
                println!(
                    "  {:<9} {:<9} [{}] {:>3} recv {:>3} err {:>3} ack {:>3} timeout",
                    node.name,
                    app,
                    stack.layer_names().join(" > "),
                    c.received,
                    c.recv_errors,
                    c.acked,
                    c.timed_out,
                );
            }
        }

        let totals = anet.fee_totals();
        println!(
            "\nICS-29 fee flow: {} escrowed = {} paid + {} refunded + {} pending (imbalance {})",
            totals.escrowed,
            totals.paid,
            totals.refunded,
            totals.pending,
            anet.fee_imbalance(),
        );
        assert_eq!(anet.fee_imbalance(), 0);
        assert_eq!(anet.nft_supply_drift(), 0);
        println!("NFT supply drift: {} (every voucher is escrow-backed)", anet.nft_supply_drift());
    }
}
