//! Trace explorer: boot a small deployment, let a few transfers flow, and
//! pretty-print one packet's complete lifecycle as telemetry saw it —
//! `send_packet`, the chunked light-client update spans that carried its
//! finality proof, delivery on the counterparty, and the acknowledgement.
//!
//! ```text
//! cargo run --release --example trace_explorer
//! ```

use be_my_guest::telemetry::render_packet_trace;
use be_my_guest::testnet::{Testnet, TestnetConfig};

fn main() {
    // Light traffic so individual packets are easy to follow.
    let mut config = TestnetConfig::small(2026);
    config.workload.outbound_mean_gap_ms = 3 * 60 * 1_000;
    config.workload.inbound_mean_gap_ms = 5 * 60 * 1_000;
    let mut net = Testnet::build(config);
    net.run_for(30 * 60 * 1_000); // half a simulated hour

    let report = net.run_report("trace-explorer");
    println!("{}", report.render_text());

    // Walk the slowest packet's lifecycle end to end: every event the
    // journal recorded for it plus every relayer job span linked to it.
    let Some(packet) = report.slowest_packet() else {
        eprintln!("no packets completed — run longer or lower the workload gaps");
        std::process::exit(1);
    };
    println!("slowest packet, end to end:");
    println!("{}", render_packet_trace(packet));

    // The same trace is addressable by (origin, channel, sequence) — the
    // identity a packet keeps across both chains and the relayer.
    let by_key = report
        .packet(&packet.origin, &packet.channel, packet.sequence)
        .expect("the slowest packet is indexed by origin, channel and sequence");
    assert_eq!(by_key.trace, packet.trace);
    println!(
        "(looked up again as {}/{}#{} → trace {})",
        by_key.origin, by_key.channel, by_key.sequence, by_key.trace
    );
}
