//! Fee-strategy ablation (§VI-B): run the same deployment with the relayer
//! paying base fees, fixed priority fees, or congestion-adaptive dynamic
//! fees, and compare light-client-update latency and cost.
//!
//! ```text
//! cargo run --release --example relayer_fees
//! ```

use be_my_guest::host_sim::lamports_to_cents;
use be_my_guest::relayer::{FeeStrategy, JobKind};
use be_my_guest::testnet::{Summary, Testnet, TestnetConfig};

fn run_with(strategy: FeeStrategy) -> (Summary, Summary) {
    let mut config = TestnetConfig::small(11);
    // Busy network and paper-sized counterparty commits (~105 signatures →
    // ~38-transaction updates) so the strategies actually differ.
    config.congestion = be_my_guest::host_sim::CongestionModel::default();
    config.counterparty.num_validators = 124;
    config.relayer.fee_strategy = strategy;
    config.workload.inbound_mean_gap_ms = 150_000;
    config.workload.outbound_mean_gap_ms = 10_000_000;
    let mut net = Testnet::build(config);
    net.run_for(35 * 60 * 1_000);

    let updates: Vec<_> =
        net.relayer.records().iter().filter(|r| r.kind == JobKind::ClientUpdate).collect();
    let latencies: Vec<f64> = updates.iter().map(|r| r.span_ms() as f64 / 1_000.0).collect();
    let costs: Vec<f64> = updates.iter().map(|r| lamports_to_cents(r.fee_lamports)).collect();
    (Summary::of(&latencies), Summary::of(&costs))
}

fn main() {
    println!("§VI-B ablation — relayer fee strategies under congestion");
    println!("========================================================");
    println!(
        "  {:<34} {:>4} {:>12} {:>12} {:>12}",
        "strategy", "n", "p50 latency", "max latency", "mean cost"
    );
    let strategies: [(&str, FeeStrategy); 3] = [
        ("Base (deployment default)", FeeStrategy::Base),
        (
            "FixedPriority (always pays up)",
            FeeStrategy::FixedPriority { micro_lamports_per_cu: 5_000_000 },
        ),
        (
            "Dynamic (pays only when busy)",
            FeeStrategy::Dynamic { high_micro_lamports_per_cu: 5_000_000, threshold: 0.6 },
        ),
    ];
    for (name, strategy) in strategies {
        let (latency, cost) = run_with(strategy);
        println!(
            "  {:<34} {:>4} {:>10.1} s {:>10.1} s {:>10.2} ¢",
            name, latency.count, latency.median, latency.max, cost.mean
        );
    }
    println!();
    println!("  the paper's observation: fixed strategies either overpay during");
    println!("  calm periods or suffer tail latency during busy ones; the dynamic");
    println!("  strategy (future work §VI-B) pays only when the market demands it.");
}
