//! Validator lifecycle: staking, epoch rotation, fisherman evidence and
//! slashing, and the exit hold period (§III-B, §III-C, §VI-A).
//!
//! ```text
//! cargo run --release --example validator_lifecycle
//! ```

use be_my_guest::guest_chain::{GuestBlock, GuestConfig, GuestContract, SignedVote};
use be_my_guest::sim_crypto::schnorr::Keypair;
use be_my_guest::sim_crypto::sha256;

fn finalise(contract: &mut GuestContract, block: &GuestBlock, keypairs: &[Keypair]) {
    for kp in keypairs {
        if !contract.current_epoch().contains(&kp.public()) {
            continue;
        }
        if contract.sign(block.height, kp.public(), kp.sign(&block.signing_bytes())).unwrap() {
            break;
        }
    }
    assert!(contract.is_finalised(block.height));
}

fn main() {
    // Genesis: four validators with 100 staked each; slashing enabled
    // (the full design — the paper's deployment ran with it disabled).
    let keypairs: Vec<Keypair> = (0..6).map(Keypair::from_seed).collect();
    let genesis: Vec<_> = keypairs[..4].iter().map(|kp| (kp.public(), 100)).collect();
    let mut config = GuestConfig::fast();
    config.slashing_enabled = true;
    let mut contract = GuestContract::new(config, genesis, 0, 0);
    println!(
        "epoch 0: {} validators, quorum {} of {} stake",
        contract.current_epoch().len(),
        contract.current_epoch().quorum_stake(),
        contract.current_epoch().total_stake()
    );

    // --- A whale stakes and outbids everyone at the next epoch ----------
    let whale = &keypairs[4];
    contract.stake(whale.public(), 1_000).unwrap();
    println!("\nwhale staked 1000; candidates now hold {}", contract.staking().total_stake());

    // Rotation happens in the first block past the minimum epoch length
    // (100 host blocks in the fast config).
    let block = contract.generate_block(15_000, 150).unwrap();
    assert!(block.is_last_in_epoch(), "boundary block announces the next epoch");
    finalise(&mut contract, &block, &keypairs);
    println!(
        "epoch rotated: {} validators, whale included: {}",
        contract.current_epoch().len(),
        contract.current_epoch().contains(&whale.public())
    );

    // --- A fisherman catches an equivocating validator -------------------
    // Validator 0 signs a block that does not exist on the chain (a fork).
    let rogue = &keypairs[0];
    let fork_hash = sha256(b"rogue fork at height 1");
    let vote = SignedVote {
        height: 1,
        block_hash: fork_hash,
        pubkey: rogue.public(),
        signature: rogue.sign(&GuestBlock::signing_bytes_for(1, &fork_hash)),
    };
    let before = contract.staking().stake_of(&rogue.public());
    let burned = contract.report_misbehaviour(&vote).unwrap();
    println!(
        "\nfisherman evidence accepted: validator slashed {burned} (stake {before} → {})",
        contract.staking().stake_of(&rogue.public())
    );

    // Honest evidence is rejected — signing the canonical block is fine.
    let honest_block = contract.block_at(1).unwrap();
    let honest = &keypairs[1];
    let honest_vote = SignedVote {
        height: 1,
        block_hash: honest_block.hash(),
        pubkey: honest.public(),
        signature: honest.sign(&honest_block.signing_bytes()),
    };
    println!(
        "honest vote as 'evidence': {:?}",
        contract.report_misbehaviour(&honest_vote).unwrap_err()
    );

    // --- Exit with the hold period (§VI-A's discussion) ------------------
    let exiting = &keypairs[2];
    contract.request_unstake(&exiting.public(), 20_000).unwrap();
    println!("\nvalidator requested exit at t=20 s; stake held for 60 s (fast config)");
    match contract.claim_unstaked(&exiting.public(), 50_000) {
        Err(err) => println!("  claim at t=50 s: {err}"),
        Ok(_) => unreachable!("hold period must be enforced"),
    }
    let amount = contract.claim_unstaked(&exiting.public(), 81_000).unwrap();
    println!("  claim at t=81 s: released {amount}");

    // The exited validator drops out at the next rotation.
    if let Ok(block) = contract.generate_block(90_000, 300) {
        finalise(&mut contract, &block, &keypairs);
    }
    println!(
        "\nfinal epoch has {} validators; exited validator still present: {}",
        contract.current_epoch().len(),
        contract.current_epoch().contains(&exiting.public())
    );
}
