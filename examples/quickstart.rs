//! Quickstart: boot a complete guest-blockchain deployment and watch a
//! cross-chain token transfer complete.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use be_my_guest::testnet::{Testnet, TestnetConfig, CP_USER, GUEST_DENOM};

fn main() {
    // A small deployment: 4 validators, fast Δ, light Poisson traffic in
    // both directions. `TestnetConfig::paper()` is the full 24-validator
    // main-net configuration used by the experiment binaries.
    let mut net = Testnet::build(TestnetConfig::small(42));
    println!("deployment up:");
    println!("  guest channel: {}", net.endpoints().guest_channel);
    println!("  counterparty channel: {}", net.endpoints().cp_channel);

    // Run ten simulated minutes. The harness drives everything: clients
    // submit SendPacket transactions, the relayer generates guest blocks,
    // validators sign them, and packets flow to the counterparty.
    net.run_for(10 * 60 * 1_000);

    let head = net.contract.borrow().head_height();
    println!("\nafter 10 simulated minutes:");
    println!("  guest blocks produced: {head}");
    println!("  host slots elapsed:    {}", net.host.slot());
    println!("  transfers sent:        {}", net.send_records.len());
    let finalised = net.send_records.iter().filter(|r| r.finalised_ms.is_some()).count();
    println!("  …in finalised blocks:  {finalised}");

    // The receiver's voucher balance on the counterparty.
    let voucher = format!("transfer/{}/{}", net.endpoints().cp_channel, GUEST_DENOM);
    let port = net.endpoints().port.clone();
    let received =
        net.cp.ibc_mut().module_mut(&port).unwrap().ics20_mut().unwrap().balance(CP_USER, &voucher);
    println!("  tokens delivered to the counterparty: {received} {voucher}");

    // Every transfer that completed, with its end-to-end latency and cost.
    println!("\nper-transfer view (Fig. 2 / Fig. 3 metrics):");
    for record in &net.send_records {
        let latency = record
            .finalised_ms
            .map(|f| format!("{:.1} s", (f - record.sent_ms) as f64 / 1_000.0))
            .unwrap_or_else(|| "in flight".into());
        println!(
            "  seq {:>3}  finalised in {:>9}  fee {:>5.2} USD  ({})",
            record.sequence,
            latency,
            be_my_guest::host_sim::lamports_to_usd(record.fee_lamports),
            if record.used_bundle { "bundle" } else { "priority" },
        );
    }
}
