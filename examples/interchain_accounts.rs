//! Interchain accounts (ICS-27) walk-through: a controller chain drives
//! an account it owns on a host chain, entirely over IBC packets.
//!
//! The script registers an account, watches the host airdrop spending
//! money into it, executes a cross-chain payment batch, and then shows
//! the atomicity guarantee: a batch that fails half-way leaves the host
//! bank untouched and surfaces the rejection controller-side.
//!
//! ```text
//! cargo run --release --example interchain_accounts
//! ```

use be_my_guest::apps::{ica_account, IcaOp, IcaOutcome};
use be_my_guest::mesh::{Mesh, MeshConfig, ICA_AIRDROP};

const MINUTE_MS: u64 = 60 * 1_000;
const CONTROLLER: &str = "chain-a";
const HOST: &str = "chain-b";
const HOST_DENOM: &str = "tok-b";
const OWNER: &str = "alice";

fn host_balance(net: &Mesh, account: &str) -> u128 {
    net.node(HOST).unwrap().ica().bank().balance(account, HOST_DENOM)
}

fn main() {
    println!("ICS-27 interchain accounts — {CONTROLLER} drives an account on {HOST}");
    println!("=====================================================================");

    // Two chains, one direct link. The mesh binds every chain with an
    // IcaApp stack on the ica port; the host airdrops ICA_AIRDROP of its
    // native denom into each newly registered account.
    let mut net = Mesh::build(MeshConfig::line(2, 27)).unwrap();

    // 1. Register: a controller-side packet asks the host to open an
    //    account owned by `alice` (idempotent — re-registering is a no-op).
    net.ica_register_on(CONTROLLER, HOST, OWNER).unwrap();
    net.run_for(2 * MINUTE_MS);

    let account = ica_account(OWNER);
    let host_ica = net.node(HOST).unwrap().ica();
    println!("\nafter registration ({} account(s) on the host):", host_ica.registered());
    println!("  {OWNER} -> {:?}", host_ica.account_of(OWNER));
    println!("  airdropped balance: {} {HOST_DENOM}", host_balance(&net, &account));
    assert_eq!(host_balance(&net, &account), ICA_AIRDROP);

    // 2. Execute: a batch of host-side sends, committed atomically by the
    //    host and acknowledged back to the controller.
    let batch = vec![
        IcaOp::Send { denom: HOST_DENOM.into(), amount: 25_000, to: "bob".into() },
        IcaOp::Send { denom: HOST_DENOM.into(), amount: 10_000, to: "carol".into() },
        IcaOp::Noop,
    ];
    net.ica_execute_on(CONTROLLER, HOST, OWNER, batch).unwrap();
    net.run_for(2 * MINUTE_MS);

    println!("\nafter the payment batch:");
    println!("  {account}: {} {HOST_DENOM}", host_balance(&net, &account));
    println!("  bob:       {} {HOST_DENOM}", host_balance(&net, "bob"));
    println!("  carol:     {} {HOST_DENOM}", host_balance(&net, "carol"));
    assert_eq!(host_balance(&net, &account), ICA_AIRDROP - 35_000);

    // 3. Atomicity: the first send alone would succeed, but the second
    //    overspends — the host rolls the whole batch back, so dave never
    //    sees a unit, and the controller reads the rejection reason.
    let doomed = vec![
        IcaOp::Send { denom: HOST_DENOM.into(), amount: 900_000, to: "dave".into() },
        IcaOp::Send { denom: HOST_DENOM.into(), amount: 200_000, to: "erin".into() },
    ];
    net.ica_execute_on(CONTROLLER, HOST, OWNER, doomed).unwrap();
    net.run_for(2 * MINUTE_MS);

    println!("\nafter the overspending batch (rolled back atomically):");
    println!("  {account}: {} {HOST_DENOM}", host_balance(&net, &account));
    println!("  dave:      {} {HOST_DENOM}", host_balance(&net, "dave"));
    assert_eq!(host_balance(&net, &account), ICA_AIRDROP - 35_000);
    assert_eq!(host_balance(&net, "dave"), 0);

    // 4. The controller-side ledger of outcomes, one per sent packet.
    println!("\ncontroller-side outcomes:");
    let controller_ica = net.node(CONTROLLER).unwrap().ica();
    for ((channel, sequence), outcome) in controller_ica.outcomes() {
        match outcome {
            IcaOutcome::Executed(n) => println!("  {channel}#{sequence}: executed {n} op(s)"),
            IcaOutcome::Rejected(reason) => println!("  {channel}#{sequence}: rejected — {reason}"),
            IcaOutcome::TimedOut => println!("  {channel}#{sequence}: timed out"),
        }
    }
    let rejected =
        controller_ica.outcomes().filter(|(_, o)| matches!(o, IcaOutcome::Rejected(_))).count();
    assert_eq!(rejected, 1, "exactly the doomed batch is rejected");

    println!("\nthe host executed batches against its own bank; the controller never");
    println!("held {HOST_DENOM} — it only ever signed IBC packets. That is ICS-27.");
}
