//! A hand-driven ICS-20 token round trip through the library API — no
//! simulation harness, every protocol step explicit.
//!
//! Shows exactly what happens between Alg. 1's procedures: the guest
//! contract commits a packet, validators finalise the block, the
//! counterparty verifies the state proof, and the acknowledgement travels
//! back.
//!
//! ```text
//! cargo run --release --example token_transfer
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use be_my_guest::counterparty_sim::{CounterpartyChain, CounterpartyConfig};
use be_my_guest::guest_chain::{GuestConfig, GuestContract};
use be_my_guest::ibc_core::channel::Timeout;
use be_my_guest::ibc_core::handler::ProofData;
use be_my_guest::ibc_core::ProvableStore;
use be_my_guest::relayer::{connect_chains, finalise_guest_block};
use be_my_guest::sim_crypto::schnorr::Keypair;

fn balance(
    chain_module: &mut dyn be_my_guest::ibc_core::Module,
    account: &str,
    denom: &str,
) -> u128 {
    chain_module.ics20_mut().expect("ICS-20 ledger behind the stack").balance(account, denom)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Deployment -----------------------------------------------------
    let keypairs: Vec<Keypair> = (0..4).map(Keypair::from_seed).collect();
    let validators = keypairs.iter().map(|kp| (kp.public(), 100)).collect();
    let contract = Rc::new(RefCell::new(GuestContract::new(GuestConfig::fast(), validators, 0, 0)));
    let mut cp = CounterpartyChain::new(CounterpartyConfig::default(), 7);

    // Clients, connection and transfer channel (the one-time handshake).
    let mut clock = 0u64;
    let mut host_height = 0u64;
    let endpoints = connect_chains(&contract, &mut cp, &keypairs, &mut clock, &mut host_height)?;
    println!("handshake complete: {} ↔ {}", endpoints.guest_channel, endpoints.cp_channel);

    // Give alice 1000 wSOL on the guest ledger.
    {
        let mut guard = contract.borrow_mut();
        let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap();
        module.ics20_mut().unwrap().mint("alice", "wsol", 1_000);
    }

    // --- Alice sends 400 wSOL to bob on the counterparty ----------------
    clock += 1_000;
    host_height += 2;
    let fee = contract.borrow().config().send_fee_lamports;
    let packet = contract.borrow_mut().send_transfer(
        &endpoints.port,
        &endpoints.guest_channel,
        "wsol",
        400,
        "alice",
        "bob",
        "invoice-0042",
        Timeout::at_time(clock + 3_600_000),
        fee,
    )?;
    println!("\nSendPacket committed: sequence {}", packet.sequence);
    {
        let mut guard = contract.borrow_mut();
        let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap();
        println!("  alice on guest: {} wsol (400 escrowed)", balance(module, "alice", "wsol"));
    }

    // A guest block must carry the commitment, and a validator quorum must
    // finalise it before the counterparty will believe anything.
    clock += 1_000;
    host_height += 2;
    let block = finalise_guest_block(
        &contract,
        &mut cp,
        &endpoints.guest_client_on_cp,
        &keypairs,
        clock,
        host_height,
    )?;
    println!("guest block {} finalised (root {})", block.height, block.state_root.short());

    // Relay: prove the commitment under that block's root and deliver.
    let commitment_key = be_my_guest::ibc_core::path::packet_commitment(
        &endpoints.port,
        &endpoints.guest_channel,
        packet.sequence,
    );
    let proof = ProvableStore::prove(contract.borrow().ibc().store(), &commitment_key)?;
    let now = cp.host_time();
    let ack =
        cp.ibc_mut().recv_packet(&packet, ProofData { height: block.height, bytes: proof }, now)?;
    println!("counterparty accepted the packet: {ack:?}");
    {
        let module = cp.ibc_mut().module_mut(&endpoints.port).unwrap();
        let voucher = format!("transfer/{}/wsol", endpoints.cp_channel);
        println!("  bob on counterparty: {} {voucher}", balance(module, "bob", &voucher));
    }

    // Redelivery of the same packet is impossible — the receipt exists.
    let replay_proof = ProvableStore::prove(contract.borrow().ibc().store(), &commitment_key)?;
    let now = cp.host_time();
    let replay = cp.ibc_mut().recv_packet(
        &packet,
        ProofData { height: block.height, bytes: replay_proof },
        now,
    );
    println!("replaying the packet: {replay:?} (duplicate rejected)");

    // --- The acknowledgement travels back --------------------------------
    clock += 1_000;
    let header = cp.produce_block(clock).clone();
    contract.borrow_mut().update_counterparty_client(
        &endpoints.cp_client_on_guest,
        &header.encode(),
        clock,
    )?;
    let ack_key = be_my_guest::ibc_core::path::packet_ack(
        &packet.destination_port,
        &packet.destination_channel,
        packet.sequence,
    );
    let ack_proof = ProvableStore::prove(cp.ibc().store(), &ack_key)?;
    contract.borrow_mut().acknowledge_packet(
        &packet,
        &ack,
        ProofData { height: header.height, bytes: ack_proof },
    )?;
    println!("acknowledgement processed on the guest — transfer complete");

    // The commitment has been cleared; the escrow stays (tokens live on
    // the counterparty now).
    let cleared = ProvableStore::get(contract.borrow().ibc().store(), &commitment_key)?;
    assert!(cleared.is_none(), "commitment cleared after ack");
    println!("\nfinal state:");
    {
        let mut guard = contract.borrow_mut();
        let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap();
        println!("  alice: {} wsol", balance(module, "alice", "wsol"));
        let escrow = format!("escrow:{}", endpoints.guest_channel);
        println!("  guest escrow: {} wsol", balance(module, &escrow, "wsol"));
    }
    Ok(())
}
