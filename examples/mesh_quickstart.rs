//! Mesh quickstart: three chains, two IBC links, one multi-hop transfer.
//!
//! Builds a `chain-a — chain-b — chain-c` line topology, routes a token
//! from A to C through B (each hop escrows and mints with a stacked
//! voucher prefix), then sends it home again and checks the round trip
//! unwound to the base denomination with zero net supply change.
//!
//! ```text
//! cargo run --release --example mesh_quickstart
//! ```

use be_my_guest::ibc_core::ics20::voucher_prefix;
use be_my_guest::ibc_core::types::PortId;
use be_my_guest::mesh::{Mesh, MeshConfig, PathPolicy};

const HOUR_MS: u64 = 60 * 60 * 1_000;

fn main() {
    // Three chains on one shared clock, a relayer per link. `line` wires
    // a<>b and b<>c; `ring`/`full` or a hand-built `MeshConfig` give
    // richer topologies.
    let mut net = Mesh::build(MeshConfig::line(3, 2026)).expect("config validates");
    net.mint("chain-a", "alice", "tok-a", 1_000).expect("chain-a exists");
    println!("topology: chain-a <-> chain-b <-> chain-c  (2 links, 2 relayers)");

    // One call routes the whole journey: the routing table picks the path
    // (here the only one: via chain-b) and the hop list rides in the
    // packet memo for the forward middleware on each intermediate chain.
    let out = net
        .send_along_route(
            "chain-a",
            "chain-c",
            "alice",
            "carol",
            "tok-a",
            400,
            &PathPolicy::FewestHops,
        )
        .expect("a route exists");
    let delivered = net.run_until_settled(out, HOUR_MS);
    println!("outbound A→B→C delivered: {delivered}");

    // On chain-c the token is a voucher with BOTH hop prefixes stacked —
    // the on-chain record of the path it travelled.
    let port = PortId::transfer();
    let stacked = format!(
        "{}{}tok-a",
        voucher_prefix(&port, &net.links()[1].b_channel),
        voucher_prefix(&port, &net.links()[0].b_channel),
    );
    println!("carol holds {} of `{stacked}`", net.balance("chain-c", "carol", &stacked));

    // Send it home. Each hop recognises its own prefix and unwinds it:
    // burn on chain-c, burn on chain-b, release from escrow on chain-a.
    let back = net
        .send_along_route(
            "chain-c",
            "chain-a",
            "carol",
            "alice",
            &stacked,
            400,
            &PathPolicy::FewestHops,
        )
        .expect("the return route exists");
    let returned = net.run_until_settled(back, HOUR_MS);
    net.run_for(10 * 60 * 1_000); // drain the ack tail
    println!("return C→B→A delivered: {returned}");

    // The audit: sender made whole, base supply unchanged, no vouchers
    // left anywhere, nothing still in flight.
    assert_eq!(net.balance("chain-a", "alice", "tok-a"), 1_000);
    assert_eq!(net.node("chain-a").expect("chain-a").transfers().total_supply("tok-a"), 1_000);
    for chain in ["chain-a", "chain-b", "chain-c"] {
        assert_eq!(net.voucher_outstanding(chain), 0, "{chain} must hold no vouchers");
    }
    assert_eq!(net.total_in_flight(), 0);
    println!("round trip audited: supply conserved on all three chains");

    // The run report ties it together: one route trace per transfer,
    // linking every per-hop packet trace.
    let report = net.run_report("mesh-quickstart");
    for route in &report.routes {
        println!(
            "route {} — {} legs, {:.1} s end-to-end, delivered={}",
            route.label,
            route.legs,
            route.latency_ms() as f64 / 1_000.0,
            route.delivered,
        );
    }
}
