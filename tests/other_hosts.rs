//! §VI-D end-to-end: the same guest deployment running on NEAR-like and
//! TRON-like hosts. Everything works identically at the protocol level —
//! only the transaction counts and timings change.

use be_my_guest::host_sim::HostProfile;
use be_my_guest::relayer::JobKind;
use be_my_guest::testnet::{Testnet, TestnetConfig};

fn run_on(profile: HostProfile, seed: u64) -> Testnet {
    run_on_with_validators(profile, seed, 12)
}

fn run_on_with_validators(profile: HostProfile, seed: u64, cp_validators: usize) -> Testnet {
    let mut config = TestnetConfig::small(seed);
    config.host_profile = profile;
    config.counterparty.num_validators = cp_validators;
    config.workload.inbound_mean_gap_ms = 60_000;
    config.workload.outbound_mean_gap_ms = 90_000;
    let mut net = Testnet::build(config);
    net.run_for(15 * 60 * 1_000);
    net
}

#[test]
fn guest_runs_end_to_end_on_a_near_like_host() {
    let net = run_on(HostProfile::NEAR_LIKE, 81);

    // Transfers flow both ways.
    assert!(net.send_records.iter().any(|r| r.finalised_ms.is_some()));
    let updates: Vec<usize> = net
        .relayer
        .records()
        .iter()
        .filter(|r| r.kind == JobKind::ClientUpdate)
        .map(|r| r.tx_count)
        .collect();
    assert!(!updates.is_empty());
    // The whole light-client update fits a couple of transactions here —
    // the §VI-D contrast with Solana's ~36.
    let max = updates.iter().copied().max().unwrap();
    assert!(max <= 3, "NEAR-like updates are near-atomic, got {max} txs");
    assert_eq!(net.relayer.failed_jobs(), 0);
}

#[test]
fn guest_runs_end_to_end_on_a_tron_like_host() {
    let net = run_on(HostProfile::TRON_LIKE, 82);
    assert!(net.send_records.iter().any(|r| r.finalised_ms.is_some()));
    let updates: Vec<usize> = net
        .relayer
        .records()
        .iter()
        .filter(|r| r.kind == JobKind::ClientUpdate)
        .map(|r| r.tx_count)
        .collect();
    assert!(!updates.is_empty());
    // One chunk (1 MiB fits everything) + a few signature-verification
    // transactions under the tighter energy budget.
    let mean = updates.iter().sum::<usize>() as f64 / updates.len() as f64;
    assert!(
        mean > 1.5 && mean < 10.0,
        "TRON-like updates sit between NEAR and Solana, got mean {mean}"
    );
    assert_eq!(net.relayer.failed_jobs(), 0);
}

#[test]
fn solana_remains_the_expensive_host() {
    // A quick three-way comparison on identical workloads.
    let count_mean = |net: &Testnet| {
        let v: Vec<usize> = net
            .relayer
            .records()
            .iter()
            .filter(|r| r.kind == JobKind::ClientUpdate)
            .map(|r| r.tx_count)
            .collect();
        v.iter().sum::<usize>() as f64 / v.len().max(1) as f64
    };
    // A realistic counterparty (124 validators, ~105-signature commits).
    let solana = count_mean(&run_on_with_validators(HostProfile::SOLANA, 83, 124));
    let near = count_mean(&run_on_with_validators(HostProfile::NEAR_LIKE, 83, 124));
    assert!(solana > 5.0 * near, "Solana updates ({solana}) dwarf NEAR-like ({near})");
    assert!(solana > 30.0, "paper-scale Solana updates, got {solana}");
}
