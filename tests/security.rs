//! Adversarial scenarios across the full stack: forged headers, replayed
//! packets, equivocation, frozen clients.

use std::cell::RefCell;
use std::rc::Rc;

use be_my_guest::counterparty_sim::{CounterpartyChain, CounterpartyConfig};
use be_my_guest::guest_chain::{GuestConfig, GuestContract, GuestHeader, GuestMisbehaviour};
use be_my_guest::ibc_core::channel::Timeout;
use be_my_guest::ibc_core::handler::ProofData;
use be_my_guest::ibc_core::types::IbcError;
use be_my_guest::ibc_core::ProvableStore;
use be_my_guest::relayer::{connect_chains, finalise_guest_block, Endpoints};
use be_my_guest::sim_crypto::schnorr::Keypair;
use be_my_guest::sim_crypto::sha256;

struct World {
    contract: Rc<RefCell<GuestContract>>,
    cp: CounterpartyChain,
    keypairs: Vec<Keypair>,
    endpoints: Endpoints,
    clock: u64,
    host_height: u64,
}

fn world() -> World {
    let keypairs: Vec<Keypair> = (0..4).map(Keypair::from_seed).collect();
    let validators = keypairs.iter().map(|kp| (kp.public(), 100)).collect();
    let contract = Rc::new(RefCell::new(GuestContract::new(GuestConfig::fast(), validators, 0, 0)));
    let mut cp = CounterpartyChain::new(CounterpartyConfig::default(), 99);
    let mut clock = 0;
    let mut host_height = 0;
    let endpoints =
        connect_chains(&contract, &mut cp, &keypairs, &mut clock, &mut host_height).unwrap();
    {
        let mut guard = contract.borrow_mut();
        let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap();
        module.ics20_mut().unwrap().mint("alice", "wsol", 10_000);
    }
    World { contract, cp, keypairs, endpoints, clock, host_height }
}

impl World {
    fn send(&mut self) -> be_my_guest::ibc_core::Packet {
        self.clock += 1_000;
        let fee = self.contract.borrow().config().send_fee_lamports;
        self.contract
            .borrow_mut()
            .send_transfer(
                &self.endpoints.port,
                &self.endpoints.guest_channel,
                "wsol",
                10,
                "alice",
                "bob",
                "",
                Timeout::at_time(self.clock + 3_600_000),
                fee,
            )
            .unwrap()
    }

    fn finalise(&mut self) -> be_my_guest::guest_chain::GuestBlock {
        self.clock += 1_000;
        self.host_height += 2;
        finalise_guest_block(
            &self.contract,
            &mut self.cp,
            &self.endpoints.guest_client_on_cp,
            &self.keypairs,
            self.clock,
            self.host_height,
        )
        .unwrap()
    }

    fn commitment_proof(&self, height: u64, sequence: u64) -> ProofData {
        let key = be_my_guest::ibc_core::path::packet_commitment(
            &self.endpoints.port,
            &self.endpoints.guest_channel,
            sequence,
        );
        ProofData {
            height,
            bytes: ProvableStore::prove(self.contract.borrow().ibc().store(), &key).unwrap(),
        }
    }
}

/// An attacker cannot push a guest header the validators never signed —
/// even with only one signature missing from quorum.
#[test]
fn forged_guest_header_rejected_by_counterparty() {
    let mut world = world();
    let _ = world.send();
    let block = world.finalise();

    // Forge: tamper with the state root, re-sign with ONE validator only.
    let mut forged_block = block.clone();
    forged_block.height += 1;
    forged_block.state_root = sha256(b"attacker root");
    let signing = forged_block.signing_bytes();
    let forged = GuestHeader {
        block: forged_block,
        signatures: vec![(world.keypairs[0].public(), world.keypairs[0].sign(&signing))],
    };
    let err = world
        .cp
        .ibc_mut()
        .update_client(&world.endpoints.guest_client_on_cp, &forged.encode())
        .unwrap_err();
    assert!(matches!(err, IbcError::ClientVerification(_)), "{err:?}");
}

/// A validator's signature over block A cannot be replayed onto block B.
#[test]
fn signature_replay_across_blocks_fails() {
    let mut world = world();
    let _ = world.send();
    let block = world.finalise();
    let stolen = world.contract.borrow().signatures_at(block.height)[0];

    let _ = world.send();
    world.clock += 1_000;
    world.host_height += 2;
    let next = world.contract.borrow_mut().generate_block(world.clock, world.host_height).unwrap();
    let err = world.contract.borrow_mut().sign(next.height, stolen.0, stolen.1).unwrap_err();
    assert_eq!(err, be_my_guest::guest_chain::GuestError::BadSignature);
}

/// The same packet cannot be delivered twice even with a fresh, valid
/// proof (Alg. 1 line 37 via the sealed receipt).
#[test]
fn packet_replay_rejected_end_to_end() {
    let mut world = world();
    let packet = world.send();
    let block = world.finalise();

    let now = world.cp.host_time();
    let proof = world.commitment_proof(block.height, packet.sequence);
    world.cp.ibc_mut().recv_packet(&packet, proof, now).unwrap();

    let proof = world.commitment_proof(block.height, packet.sequence);
    let err = world.cp.ibc_mut().recv_packet(&packet, proof, now).unwrap_err();
    assert_eq!(err, IbcError::DuplicatePacket);
}

/// A quorum that signs two different blocks at one height is provable
/// misbehaviour; the counterparty freezes its guest client and refuses
/// everything afterwards.
#[test]
fn equivocation_freezes_the_light_client() {
    let mut world = world();
    let _ = world.send();
    let block = world.finalise();

    // Build two conflicting quorum-signed headers at the next height.
    let make = |root: &[u8], world: &World| {
        let forged = be_my_guest::guest_chain::GuestBlock {
            height: block.height + 1,
            prev_hash: block.hash(),
            state_root: sha256(root),
            timestamp_ms: world.clock + 5_000,
            host_height: world.host_height + 1,
            epoch_id: world.contract.borrow().current_epoch().id(),
            next_epoch: None,
        };
        let signing = forged.signing_bytes();
        GuestHeader {
            block: forged,
            signatures: world.keypairs.iter().map(|kp| (kp.public(), kp.sign(&signing))).collect(),
        }
    };
    let evidence =
        GuestMisbehaviour { header_a: make(b"fork-a", &world), header_b: make(b"fork-b", &world) };
    let frozen = world
        .cp
        .ibc_mut()
        .submit_misbehaviour(&world.endpoints.guest_client_on_cp, &evidence.encode())
        .unwrap();
    assert!(frozen, "valid fork evidence freezes the client");

    // All further guest traffic is refused.
    let packet = world.send();
    world.clock += 1_000;
    world.host_height += 2;
    let block = world.contract.borrow_mut().generate_block(world.clock, world.host_height).unwrap();
    for kp in &world.keypairs {
        let _ = world.contract.borrow_mut().sign(
            block.height,
            kp.public(),
            kp.sign(&block.signing_bytes()),
        );
    }
    let header = GuestHeader {
        block: block.clone(),
        signatures: world.contract.borrow().signatures_at(block.height),
    };
    let err = world
        .cp
        .ibc_mut()
        .update_client(&world.endpoints.guest_client_on_cp, &header.encode())
        .unwrap_err();
    assert!(matches!(err, IbcError::FrozenClient(_)));

    let now = world.cp.host_time();
    let proof = world.commitment_proof(block.height, packet.sequence);
    let err = world.cp.ibc_mut().recv_packet(&packet, proof, now).unwrap_err();
    assert!(matches!(err, IbcError::FrozenClient(_)), "{err:?}");
}

/// Benign "evidence" (the same finalised header twice) does not freeze.
#[test]
fn benign_evidence_does_not_freeze() {
    let mut world = world();
    let _ = world.send();
    let block = world.finalise();
    let header = GuestHeader {
        block: block.clone(),
        signatures: world.contract.borrow().signatures_at(block.height),
    };
    let evidence = GuestMisbehaviour { header_a: header.clone(), header_b: header };
    let frozen = world
        .cp
        .ibc_mut()
        .submit_misbehaviour(&world.endpoints.guest_client_on_cp, &evidence.encode())
        .unwrap();
    assert!(!frozen);
}

/// A packet whose proof was taken against a different (newer) state than
/// the verified block is rejected — proofs must match the exact root.
#[test]
fn stale_proof_rejected() {
    let mut world = world();
    let first = world.send();
    let block_one = world.finalise();

    // More sends mutate the trie after block 1.
    let _ = world.send();
    let _ = world.send();

    // Proof taken NOW (three packets in the trie) against block 1's root.
    let now = world.cp.host_time();
    let stale = world.commitment_proof(block_one.height, first.sequence);
    let err = world.cp.ibc_mut().recv_packet(&first, stale, now).unwrap_err();
    assert!(matches!(err, IbcError::InvalidProof(_)), "{err:?}");
}
