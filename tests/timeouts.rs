//! The full timeout path through the deployment: a transfer expires before
//! delivery, the relayer proves non-receipt on the counterparty, and the
//! guest refunds the escrow.

use be_my_guest::relayer::JobKind;
use be_my_guest::testnet::{Testnet, TestnetConfig, GUEST_DENOM, GUEST_USER};

#[test]
fn expired_transfer_is_refunded_through_the_relayer() {
    let mut config = TestnetConfig::small(31);
    // No background traffic; we drive one doomed transfer by hand.
    config.workload.outbound_mean_gap_ms = u64::MAX / 4;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);

    let port = net.endpoints().port.clone();
    let guest_channel = net.endpoints().guest_channel.clone();
    let balance_of = |net: &mut Testnet, account: &str| {
        let contract = net.contract.clone();
        let mut guard = contract.borrow_mut();
        guard
            .ibc_mut()
            .module_mut(&port)
            .unwrap()
            .ics20_mut()
            .unwrap()
            .balance(account, GUEST_DENOM)
    };
    let initial = balance_of(&mut net, GUEST_USER);

    // Expires almost immediately: the guest block + counterparty clock will
    // be far past it by the time the relayer can try to deliver.
    let timeout_at = net.host.now_ms() + 1_500;
    net.inject_outbound_transfer(777, timeout_at);

    // Run long enough for: send → block → finalise → delivery attempt
    // (rejected as expired) → non-receipt proof → TimeoutPacket job.
    net.run_for(4 * 60 * 1_000);

    let timeouts =
        net.relayer.records().iter().filter(|r| r.kind == JobKind::TimeoutPacket).count();
    assert_eq!(timeouts, 1, "the relayer ran exactly one timeout job");

    // Escrow refunded: sender balance restored, escrow empty.
    assert_eq!(balance_of(&mut net, GUEST_USER), initial);
    assert_eq!(balance_of(&mut net, &format!("escrow:{guest_channel}")), 0);

    // The commitment was cleared by the timeout.
    let key = be_my_guest::ibc_core::path::packet_commitment(
        &net.endpoints().port,
        &net.endpoints().guest_channel,
        1,
    );
    let contract = net.contract.borrow();
    assert!(matches!(
        be_my_guest::ibc_core::ProvableStore::get(contract.ibc().store(), &key),
        Ok(None)
    ));
}

#[test]
fn live_transfers_are_not_timed_out() {
    let mut config = TestnetConfig::small(32);
    config.workload.outbound_mean_gap_ms = 60_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    net.run_for(10 * 60 * 1_000);

    let timeouts =
        net.relayer.records().iter().filter(|r| r.kind == JobKind::TimeoutPacket).count();
    assert_eq!(timeouts, 0, "healthy transfers never time out");
    assert!(net.send_records.iter().any(|r| r.finalised_ms.is_some()));
}
