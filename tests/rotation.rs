//! Counterparty validator-set rotations under live traffic: the relayer
//! must deliver rotation headers in order or the guest's light client
//! would be unable to verify anything signed by the new set.

use be_my_guest::relayer::JobKind;
use be_my_guest::testnet::{Testnet, TestnetConfig};

#[test]
fn transfers_survive_aggressive_counterparty_rotations() {
    let mut config = TestnetConfig::small(71);
    // Rotate the counterparty set every 4 blocks — far more often than any
    // real chain — while inbound traffic flows.
    config.counterparty.rotation_interval_blocks = 4;
    config.workload.inbound_mean_gap_ms = 40_000;
    config.workload.outbound_mean_gap_ms = 10_000_000;
    let mut net = Testnet::build(config);
    net.run_for(20 * 60 * 1_000);

    // Deliveries kept working across rotations.
    let recvs = net.relayer.records().iter().filter(|r| r.kind == JobKind::RecvPacket).count();
    assert!(recvs >= 5, "packets delivered across rotations, got {recvs}");
    assert_eq!(net.relayer.failed_jobs(), 0, "no update was rejected");

    // The guest's client followed several validator-set changes: its latest
    // verified height lies beyond multiple rotation boundaries.
    let endpoints = net.endpoints().clone();
    let contract = net.contract.borrow();
    let client_height =
        contract.ibc().client(&endpoints.cp_client_on_guest).unwrap().latest_height();
    assert!(client_height >= 8, "client passed at least two rotations (height {client_height})");
}
