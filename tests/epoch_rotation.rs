//! Live validator-set changes (§III-B): a new candidate stakes through a
//! host transaction mid-run, the next epoch boundary includes it, and the
//! counterparty's light client follows the handover — while transfers keep
//! completing.

use be_my_guest::guest_chain::{GuestInstruction, GuestOp};
use be_my_guest::host_sim::{FeePolicy, Instruction, Pubkey, Transaction};
use be_my_guest::sim_crypto::schnorr::Keypair;
use be_my_guest::testnet::{Testnet, TestnetConfig};

#[test]
fn staking_through_transactions_joins_the_next_epoch() {
    let mut config = TestnetConfig::small(91);
    config.workload.outbound_mean_gap_ms = 60_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);

    // A whale stakes 1000 (genesis validators hold 100 each) via a tx.
    let whale = Keypair::from_seed(0xFEE1);
    let staker_payer = Pubkey::from_label("whale-payer");
    net.host.bank_mut().airdrop(staker_payer, 100_000_000_000);
    let tx = Transaction::build(
        staker_payer,
        1,
        vec![Instruction::new(
            Pubkey::from_label("guest-program"),
            vec![Pubkey::from_label("guest-state")],
            GuestInstruction::Inline {
                op: GuestOp::Stake { pubkey: whale.public(), amount: 1_000 },
            }
            .encode(),
        )],
        FeePolicy::BaseOnly,
    )
    .unwrap();
    net.host.submit(tx);

    // The fast config rotates epochs every 100 host slots; run well past
    // several boundaries. NOTE: the whale never signs (it runs no
    // validator actor), so the chain must stay live without it — the old
    // validators' 400 stake of the new 1400 total is NOT a quorum…
    net.run_for(3 * 60 * 1_000);

    // …which means the chain stalls after the rotation: exactly the §VI-A
    // hazard of a dominant validator that does not participate. Verify the
    // whale is in the epoch and the head is stuck.
    let contract = net.contract.borrow();
    assert!(
        contract.current_epoch().contains(&whale.public()),
        "the whale joined at an epoch boundary"
    );
    let head = contract.head_height();
    let stalled = !contract.is_finalised(head);
    drop(contract);

    if stalled {
        // The whale comes online after all: signing the pending head
        // unblocks the chain (stake 1000 of 1400 > quorum 934).
        let contract = net.contract.clone();
        let head_block = contract.borrow().head();
        let done = contract
            .borrow_mut()
            .sign(head_block.height, whale.public(), whale.sign(&head_block.signing_bytes()))
            .unwrap();
        assert!(done, "the whale's stake alone finalises");
    }
    // Either way the chain is consistent again.
    let contract = net.contract.borrow();
    assert!(contract.is_finalised(contract.head_height()));
}

#[test]
fn balanced_staking_keeps_the_chain_live_across_rotations() {
    let mut config = TestnetConfig::small(92);
    config.workload.outbound_mean_gap_ms = 50_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);

    // A small top-up for an EXISTING validator (keypair 1) — the sets
    // rotate but the active validators keep the quorum.
    let validator1 = Keypair::from_seed(0xA11CE + 1);
    let payer = Pubkey::from_label("topup-payer");
    net.host.bank_mut().airdrop(payer, 100_000_000_000);
    let tx = Transaction::build(
        payer,
        1,
        vec![Instruction::new(
            Pubkey::from_label("guest-program"),
            vec![Pubkey::from_label("guest-state")],
            GuestInstruction::Inline {
                op: GuestOp::Stake { pubkey: validator1.public(), amount: 50 },
            }
            .encode(),
        )],
        FeePolicy::BaseOnly,
    )
    .unwrap();
    net.host.submit(tx);

    net.run_for(10 * 60 * 1_000);

    let contract = net.contract.borrow();
    assert_eq!(
        contract.current_epoch().stake_of(&validator1.public()),
        Some(150),
        "the top-up took effect at a boundary"
    );
    // The head block may have been produced moments before the run ended,
    // with its signatures still in flight; liveness means finalisation
    // tracks the head within normal signing lag, not that the very last
    // block is already sealed at the sampling instant.
    let head = contract.head_height();
    let finalised = (0..=head).rev().find(|h| contract.is_finalised(*h)).unwrap_or(0);
    assert!(head - finalised <= 2, "liveness held (head {head}, finalised {finalised})");
    drop(contract);
    // Transfers kept completing across the epoch handovers, which also
    // means the counterparty's light client followed every `next_epoch`.
    assert!(net.send_records.iter().filter(|r| r.finalised_ms.is_some()).count() >= 3);
}
