//! Governance and incident scenarios through on-chain transactions: the
//! fisherman path, self-destruction after abandonment, and the dominant
//! validator's outage stalling and recovering the chain.

use be_my_guest::guest_chain::{GuestBlock, GuestInstruction, GuestOp, SignedVote};
use be_my_guest::host_sim::{FeePolicy, Instruction, Pubkey, Transaction};
use be_my_guest::sim_crypto::schnorr::Keypair;
use be_my_guest::sim_crypto::sha256;
use be_my_guest::testnet::config::RogueConfig;
use be_my_guest::testnet::{paper_validators, Testnet, TestnetConfig, ValidatorProfile, DAY_MS};

fn submit_op(net: &mut Testnet, payer: Pubkey, op: GuestOp) -> u64 {
    let tx = Transaction::build(
        payer,
        1,
        vec![Instruction::new(
            Pubkey::from_label("guest-program"),
            vec![Pubkey::from_label("guest-state")],
            GuestInstruction::Inline { op }.encode(),
        )],
        FeePolicy::BaseOnly,
    )
    .unwrap();
    net.host.submit(tx)
}

/// A fisherman submits equivocation evidence as a host transaction; with
/// slashing enabled the rogue validator loses its stake.
#[test]
fn fisherman_slashes_through_a_host_transaction() {
    let mut config = TestnetConfig::small(41);
    config.guest.slashing_enabled = true;
    config.workload.outbound_mean_gap_ms = u64::MAX / 4;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    let fisherman = Pubkey::from_label("fisherman");
    net.host.bank_mut().airdrop(fisherman, 10_000_000_000);

    // The rogue is validator seed 0xA11CE (harness keypair 0); it signs a
    // block hash that is not on the chain.
    let rogue = Keypair::from_seed(0xA11CE);
    let fork = sha256(b"not the canonical block");
    let vote = SignedVote {
        height: 1,
        block_hash: fork,
        pubkey: rogue.public(),
        signature: rogue.sign(&GuestBlock::signing_bytes_for(1, &fork)),
    };
    let before = net.contract.borrow().staking().stake_of(&rogue.public());
    assert!(before > 0);

    let id = submit_op(&mut net, fisherman, GuestOp::ReportMisbehaviour { vote });
    for _ in 0..5 {
        net.step();
    }
    let _ = id;
    assert_eq!(
        net.contract.borrow().staking().stake_of(&rogue.public()),
        0,
        "stake slashed on-chain"
    );
}

/// Self-destruction through a transaction: rejected while the chain is
/// alive, accepted after abandonment, and the vault pays out.
#[test]
fn self_destruct_via_transaction_after_abandonment() {
    let mut config = TestnetConfig::small(42);
    config.guest.abandonment_timeout_ms = 60_000;
    // Stop all block production: no traffic, and Δ so large the relayer
    // never generates an empty block.
    config.guest.delta_ms = u64::MAX / 4;
    config.workload.outbound_mean_gap_ms = u64::MAX / 4;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    let caller = Pubkey::from_label("liquidator");
    net.host.bank_mut().airdrop(caller, 10_000_000_000);

    // Too early: the contract refuses.
    let id = submit_op(&mut net, caller, GuestOp::SelfDestruct);
    net.step();
    let outcome_failed = {
        let block = net.host.latest_block().unwrap();
        !block.outcome_of(id).unwrap().is_ok()
    };
    assert!(outcome_failed, "self-destruct rejected while alive");
    assert!(!net.contract.borrow().is_destroyed());

    // After a minute of silence the chain counts as abandoned.
    net.run_for(70_000);
    let total_stake = net.contract.borrow().staking().total_stake();
    assert!(total_stake > 0);
    let before = net.host.bank().balance(&caller);
    submit_op(&mut net, caller, GuestOp::SelfDestruct);
    net.step();
    assert!(net.contract.borrow().is_destroyed());
    assert_eq!(net.contract.borrow().staking().total_stake(), 0);
    // The caller received the released stake (minus its transaction fee).
    assert!(net.host.bank().balance(&caller) + 10_000 >= before + total_stake);
}

/// The §V-C incident: while the quorum-dominant validator is down, blocks
/// stall; when it returns, the chain recovers and the pending block
/// finalises with a latency in the tens of minutes.
#[test]
fn dominant_validator_outage_stalls_and_recovers() {
    let mut config = TestnetConfig::small(43);
    // Three validators; #0 dominant (its vote alone is quorum) with an
    // outage between minutes 2 and 22.
    config.validators = vec![
        ValidatorProfile {
            stake: 1_000,
            outage: Some((2 * 60 * 1_000, 22 * 60 * 1_000)),
            ..ValidatorProfile::reliable(1_000)
        },
        ValidatorProfile::reliable(100),
        ValidatorProfile::reliable(100),
    ];
    config.workload.outbound_mean_gap_ms = 90_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    net.run_for(30 * 60 * 1_000);

    // Some send finished only after the outage ended: latency ≥ ~10 min.
    let worst = net
        .send_records
        .iter()
        .filter_map(|r| r.finalised_ms.map(|f| f - r.sent_ms))
        .max()
        .expect("sends completed");
    assert!(worst > 8 * 60 * 1_000, "the stall shows up as a straggler ({worst} ms)");
    // But the chain recovered: finalisation tracks the head again (the
    // very last block may still have its signatures in flight).
    let contract = net.contract.borrow();
    let head = contract.head_height();
    let finalised = (0..=head).rev().find(|h| contract.is_finalised(*h)).unwrap_or(0);
    assert!(head - finalised <= 2, "chain recovered (head {head}, finalised {finalised})");
}

/// The complete §III-C loop inside the running deployment: a rogue
/// validator gossips conflicting votes, the fisherman actor detects and
/// reports them on-chain, the contract slashes — and the chain keeps
/// finalising with the remaining quorum.
#[test]
fn fisherman_catches_a_live_rogue_validator() {
    let mut config = TestnetConfig::small(44);
    config.guest.slashing_enabled = true;
    // Validator 3 equivocates on roughly every other block. Validators
    // 0..=2 alone still hold a quorum (300 of 400 stake = 3/4 > 2/3).
    config.rogue = Some(RogueConfig { validator: 3, equivocate_probability: 0.5 });
    config.workload.outbound_mean_gap_ms = 45_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);

    let rogue_key = Keypair::from_seed(0xA11CE + 3).public();
    let before = net.contract.borrow().staking().stake_of(&rogue_key);
    assert_eq!(before, 100);

    net.run_for(10 * 60 * 1_000);

    assert!(net.fisherman_reports >= 1, "the fisherman reported the rogue");
    assert_eq!(
        net.contract.borrow().staking().stake_of(&rogue_key),
        0,
        "the rogue was slashed on-chain"
    );
    // Liveness: the chain kept finalising after the slash.
    let contract = net.contract.borrow();
    assert!(contract.head_height() > 3);
    assert!(contract.is_finalised(contract.head_height()));
    drop(contract);
    assert!(net.send_records.iter().any(|r| r.finalised_ms.is_some()));
}

/// Sanity: the paper validator table keeps its structural properties even
/// after config evolution.
#[test]
fn paper_validator_profiles_stay_consistent() {
    let profiles = paper_validators();
    assert_eq!(profiles.len(), 24);
    let total: u64 = profiles.iter().map(|p| p.stake).sum();
    let quorum = total * 2 / 3 + 1;
    assert!(profiles[0].stake >= quorum, "validator #1 alone reaches quorum");
    // The §V-C outage moved from the profile into the paper chaos plan.
    assert!(profiles.iter().all(|p| p.outage.is_none()));
    let plan = TestnetConfig::paper().chaos;
    let crash = plan
        .events
        .iter()
        .find(|e| matches!(e.fault, testnet::Fault::ValidatorCrash { validator: 0 }))
        .expect("paper plan crashes validator #1");
    assert!(crash.from_ms < 28 * DAY_MS, "outage inside the run");
    assert_eq!(crash.until_ms - crash.from_ms, 35_940_000, "a 9h59m outage");
}

/// Validator rewards through host transactions: fees accumulate as sends
/// flow, signers earn pro-rata shares, and a claim pays out of the vault.
#[test]
fn validator_rewards_flow_through_the_vault() {
    let mut config = TestnetConfig::small(45);
    config.guest.reward_share_percent = 80;
    config.workload.outbound_mean_gap_ms = 45_000;
    config.workload.inbound_mean_gap_ms = u64::MAX / 4;
    let mut net = Testnet::build(config);
    net.run_for(8 * 60 * 1_000);

    // Every validator signed (reliable profiles); all earned something.
    let validator = Keypair::from_seed(0xA11CE).public();
    let earned = net.contract.borrow().reward_balance(&validator);
    assert!(earned > 0, "signers earn fee shares");

    // Claim via a transaction: lamports leave the vault to the claimer.
    let claimer = Pubkey::from_label("validator-payout");
    net.host.bank_mut().airdrop(claimer, 1_000_000_000);
    let before = net.host.bank().balance(&claimer);
    submit_op(&mut net, claimer, GuestOp::ClaimRewards { pubkey: validator });
    net.step();
    assert_eq!(
        net.host.bank().balance(&claimer),
        before + earned - 5_000, // minus the claim transaction's fee
    );
    assert_eq!(net.contract.borrow().reward_balance(&validator), 0);

    // Accounting closes: fees = rewards (credited) + treasury + pot still
    // accruing for the next block.
    let contract = net.contract.borrow();
    assert!(contract.treasury() > 0);
    assert!(contract.fees_collected() >= contract.treasury());
}
