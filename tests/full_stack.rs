//! Cross-crate invariants on a live simulated deployment.

use be_my_guest::ibc_core::ProvableStore;
use be_my_guest::testnet::{Testnet, TestnetConfig, CP_DENOM, CP_USER, GUEST_DENOM, GUEST_USER};

fn run(seed: u64, minutes: u64) -> Testnet {
    let mut config = TestnetConfig::small(seed);
    config.workload.outbound_mean_gap_ms = 50_000;
    config.workload.inbound_mean_gap_ms = 70_000;
    let mut net = Testnet::build(config);
    net.run_for(minutes * 60 * 1_000);
    net
}

/// Every wSOL voucher minted on the counterparty is backed 1:1 by escrow
/// on the guest, and vice versa — no token is ever created from nothing.
#[test]
fn token_supply_is_conserved_across_chains() {
    let net = run(21, 25);
    let port = net.endpoints().port.clone();
    let guest_channel = net.endpoints().guest_channel.clone();
    let cp_channel = net.endpoints().cp_channel.clone();

    // Both sides bind `ModuleStack`s, so the ledgers are reached through
    // the typed `Module::ics20()` accessor rather than a downcast.
    let contract = net.contract.borrow();
    let guest_bank = contract
        .ibc()
        .module(&port)
        .and_then(|m| m.ics20())
        .expect("the guest transfer stack fronts an ICS-20 ledger");
    let cp_bank = net
        .cp
        .ibc()
        .module(&port)
        .and_then(|m| m.ics20())
        .expect("the counterparty transfer stack fronts an ICS-20 ledger");

    // Outbound direction: guest escrow ≥ counterparty vouchers in
    // circulation (strictly greater only for packets still in flight).
    let voucher_on_cp = format!("transfer/{cp_channel}/{GUEST_DENOM}");
    let minted_on_cp = cp_bank.balance(CP_USER, &voucher_on_cp);
    let escrowed = guest_bank.balance(&format!("escrow:{guest_channel}"), GUEST_DENOM);
    assert!(escrowed >= minted_on_cp, "escrow {escrowed} < vouchers {minted_on_cp}");
    assert!(minted_on_cp > 0, "some transfers completed");

    // Inbound direction likewise.
    let voucher_on_guest = format!("transfer/{guest_channel}/{CP_DENOM}");
    let minted_on_guest = guest_bank.balance(GUEST_USER, &voucher_on_guest);
    let escrow_on_cp = cp_bank.balance(&format!("escrow:{cp_channel}"), CP_DENOM);
    assert!(escrow_on_cp >= minted_on_guest);
}

/// Delivered inbound packets leave *sealed* receipts: the data is gone,
/// the commitment root still covers them, and redelivery stays impossible.
#[test]
fn receipts_are_sealed_and_bounded() {
    let net = run(22, 25);
    let delivered = net
        .relayer
        .records()
        .iter()
        .filter(|r| r.kind == be_my_guest::relayer::JobKind::RecvPacket)
        .count();
    assert!(delivered > 0, "packets were delivered");

    let contract = net.contract.borrow();
    let stats = contract.storage_stats();
    assert!(
        stats.sealed_reclaimed > 0 || delivered < 16,
        "sealing reclaimed storage ({delivered} deliveries, {} reclaimed)",
        stats.sealed_reclaimed
    );
    // Each delivered packet's receipt is sealed (reads error, not None).
    let endpoints = net.relayer.endpoints();
    let key =
        be_my_guest::ibc_core::path::packet_receipt(&endpoints.port, &endpoints.guest_channel, 1);
    assert!(
        ProvableStore::get(contract.ibc().store(), &key).is_err(),
        "first delivered receipt must be sealed"
    );
}

/// Acknowledged outbound packets have their commitments cleared — the
/// provable store does not accumulate completed transfers.
#[test]
fn acked_commitments_are_cleared() {
    let net = run(23, 30);
    let acked = net
        .relayer
        .records()
        .iter()
        .filter(|r| r.kind == be_my_guest::relayer::JobKind::AckPacket)
        .count();
    assert!(acked > 0, "acks flowed back");

    let contract = net.contract.borrow();
    let endpoints = net.relayer.endpoints();
    let mut cleared = 0;
    for sequence in 1..=acked as u64 {
        let key = be_my_guest::ibc_core::path::packet_commitment(
            &endpoints.port,
            &endpoints.guest_channel,
            sequence,
        );
        if matches!(ProvableStore::get(contract.ibc().store(), &key), Ok(None)) {
            cleared += 1;
        }
    }
    assert!(cleared > 0, "at least the earliest acked commitments are gone");
}

/// The relayer completes every job it starts on a healthy network.
#[test]
fn no_relayer_jobs_fail_on_a_healthy_network() {
    let net = run(24, 25);
    assert_eq!(net.relayer.failed_jobs(), 0);
    assert!(!net.relayer.records().is_empty());
}

/// The guest contract's own view and the counterparty's light client view
/// of the guest chain agree at every verified height.
#[test]
fn light_client_view_matches_chain_state() {
    let net = run(25, 20);
    let endpoints = net.relayer.endpoints();
    let contract = net.contract.borrow();
    let client = net.cp.ibc().client(&endpoints.guest_client_on_cp).unwrap();
    let verified = client.latest_height();
    assert!(verified > 0, "counterparty verified guest blocks");
    for height in 1..=verified {
        if let Some(consensus) = client.consensus_state(height) {
            let block = contract.block_at(height).expect("verified height exists");
            assert_eq!(consensus.root, block.state_root, "height {height}");
            assert_eq!(consensus.timestamp_ms, block.timestamp_ms, "height {height}");
        }
    }
}

/// Fees flow: every send paid the contract's packet fee into the vault and
/// the contract accounted for it.
#[test]
fn packet_fees_are_collected() {
    let net = run(26, 20);
    let sends = net.send_records.len() as u64;
    assert!(sends > 0);
    let collected = net.contract.borrow().fees_collected();
    let fee = net.contract.borrow().config().send_fee_lamports;
    assert_eq!(collected, sends * fee, "every send paid exactly the configured fee");
}
