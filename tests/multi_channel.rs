//! IBC multiplexes independent packet streams over one connection (§III-A:
//! "Each stream, called a channel, is identified by a ⟨name, port⟩ pair").
//! Two transfer channels between the same two chains must keep independent
//! sequence numbers, escrows and voucher denominations.

use std::cell::RefCell;
use std::rc::Rc;

use be_my_guest::counterparty_sim::{CounterpartyChain, CounterpartyConfig};
use be_my_guest::guest_chain::{GuestConfig, GuestContract};
use be_my_guest::ibc_core::channel::Timeout;
use be_my_guest::ibc_core::handler::ProofData;
use be_my_guest::ibc_core::types::ChannelId;
use be_my_guest::ibc_core::{Ordering, ProvableStore};
use be_my_guest::relayer::{connect_chains, finalise_guest_block};
use be_my_guest::sim_crypto::schnorr::Keypair;

#[test]
fn two_channels_multiplex_independently() {
    let keypairs: Vec<Keypair> = (0..4).map(Keypair::from_seed).collect();
    let validators = keypairs.iter().map(|kp| (kp.public(), 100)).collect();
    let contract = Rc::new(RefCell::new(GuestContract::new(GuestConfig::fast(), validators, 0, 0)));
    let mut cp = CounterpartyChain::new(CounterpartyConfig::default(), 61);
    let mut clock = 0u64;
    let mut height = 0u64;
    let endpoints = connect_chains(&contract, &mut cp, &keypairs, &mut clock, &mut height).unwrap();

    // Open a SECOND channel over the same connection, by hand.
    let guest_chan2 = contract
        .borrow_mut()
        .chan_open_init(
            endpoints.port.clone(),
            endpoints.guest_connection.clone(),
            endpoints.port.clone(),
            Ordering::Unordered,
            "ics20-1",
        )
        .unwrap();
    clock += 1_000;
    height += 2;
    let block = finalise_guest_block(
        &contract,
        &mut cp,
        &endpoints.guest_client_on_cp,
        &keypairs,
        clock,
        height,
    )
    .unwrap();
    let chan_key = be_my_guest::ibc_core::path::channel(&endpoints.port, &guest_chan2);
    let proof_init = ProofData {
        height: block.height,
        bytes: ProvableStore::prove(contract.borrow().ibc().store(), &chan_key).unwrap(),
    };
    let cp_chan2 = cp
        .ibc_mut()
        .chan_open_try(
            endpoints.port.clone(),
            endpoints.cp_connection.clone(),
            endpoints.port.clone(),
            guest_chan2.clone(),
            Ordering::Unordered,
            "ics20-1",
            proof_init,
        )
        .unwrap();
    clock += 1_000;
    let header = cp.produce_block(clock).clone();
    contract
        .borrow_mut()
        .update_counterparty_client(&endpoints.cp_client_on_guest, &header.encode(), clock)
        .unwrap();
    let chan2_key = be_my_guest::ibc_core::path::channel(&endpoints.port, &cp_chan2);
    let proof_try = ProofData {
        height: header.height,
        bytes: ProvableStore::prove(cp.ibc().store(), &chan2_key).unwrap(),
    };
    contract
        .borrow_mut()
        .ibc_mut()
        .chan_open_ack(&endpoints.port, &guest_chan2, cp_chan2.clone(), proof_try)
        .unwrap();
    clock += 1_000;
    height += 2;
    let block = finalise_guest_block(
        &contract,
        &mut cp,
        &endpoints.guest_client_on_cp,
        &keypairs,
        clock,
        height,
    )
    .unwrap();
    let proof_ack = ProofData {
        height: block.height,
        bytes: ProvableStore::prove(contract.borrow().ibc().store(), &chan_key).unwrap(),
    };
    cp.ibc_mut().chan_open_confirm(&endpoints.port, &cp_chan2, proof_ack).unwrap();
    assert_ne!(guest_chan2, endpoints.guest_channel);
    assert_eq!(guest_chan2, ChannelId::new(1));

    // Fund and send over BOTH channels.
    {
        let mut guard = contract.borrow_mut();
        let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap();
        module.ics20_mut().unwrap().mint("alice", "wsol", 1_000);
    }
    let fee = contract.borrow().config().send_fee_lamports;
    let p1 = contract
        .borrow_mut()
        .send_transfer(
            &endpoints.port,
            &endpoints.guest_channel,
            "wsol",
            100,
            "alice",
            "bob",
            "",
            Timeout::NEVER,
            fee,
        )
        .unwrap();
    let p2 = contract
        .borrow_mut()
        .send_transfer(
            &endpoints.port,
            &guest_chan2,
            "wsol",
            200,
            "alice",
            "bob",
            "",
            Timeout::NEVER,
            fee,
        )
        .unwrap();

    // Sequences are tracked per channel: both start at 1.
    assert_eq!(p1.sequence, 1);
    assert_eq!(p2.sequence, 1);
    assert_eq!(p1.source_channel, endpoints.guest_channel);
    assert_eq!(p2.source_channel, guest_chan2);

    // Escrows are per channel.
    {
        let mut guard = contract.borrow_mut();
        let module = guard.ibc_mut().module_mut(&endpoints.port).unwrap().ics20_mut().unwrap();
        assert_eq!(module.balance(&format!("escrow:{}", endpoints.guest_channel), "wsol"), 100);
        assert_eq!(module.balance(&format!("escrow:{guest_chan2}"), "wsol"), 200);
    }

    // Deliver both; the vouchers carry per-channel denominations.
    clock += 1_000;
    height += 2;
    let block = finalise_guest_block(
        &contract,
        &mut cp,
        &endpoints.guest_client_on_cp,
        &keypairs,
        clock,
        height,
    )
    .unwrap();
    for packet in [&p1, &p2] {
        let key = be_my_guest::ibc_core::path::packet_commitment(
            &packet.source_port,
            &packet.source_channel,
            packet.sequence,
        );
        let proof = ProofData {
            height: block.height,
            bytes: ProvableStore::prove(contract.borrow().ibc().store(), &key).unwrap(),
        };
        let now = cp.host_time();
        cp.ibc_mut().recv_packet(packet, proof, now).unwrap();
    }
    let module = cp.ibc_mut().module_mut(&endpoints.port).unwrap().ics20_mut().unwrap();
    assert_eq!(module.balance("bob", &format!("transfer/{}/wsol", endpoints.cp_channel)), 100);
    assert_eq!(module.balance("bob", &format!("transfer/{cp_chan2}/wsol")), 200);
}
