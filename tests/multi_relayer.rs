//! §III-C: "Relayers … are permissionless and can be run by anyone." Two
//! independent relayers serve the same link; safety must hold — every
//! packet delivered exactly once, no corrupted staging, the loser of each
//! race fails gracefully. The second relayer is first-class harness
//! support: `Testnet::add_relayer` gives it a funded payer and ticks it
//! inside `net.step()`.

use be_my_guest::relayer::JobKind;
use be_my_guest::testnet::{Testnet, TestnetConfig, CP_DENOM, GUEST_USER};

#[test]
fn two_relayers_race_without_violating_safety() {
    let mut config = TestnetConfig::small(51);
    config.workload.inbound_mean_gap_ms = 50_000;
    config.workload.outbound_mean_gap_ms = 80_000;
    let mut net = Testnet::build(config);

    // A second, independent relayer with its own fee payer, ticked by the
    // harness right after the primary. It sees the same host blocks (and
    // therefore the same guest events); counterparty events are drained by
    // whichever relayer polls first.
    let second = net.add_relayer();
    assert_eq!(second, 0, "first extra relayer");
    assert_eq!(net.extra_relayers.len(), 1);

    net.run_for(20 * 60 * 1000);

    // Work happened, split across both relayers.
    let first_jobs = net.relayer.records().len();
    let second_jobs = net.extra_relayers.relayers()[second].records().len();
    assert!(first_jobs + second_jobs > 0, "the link is being served");

    // Deliveries happened exactly once each: the guest's voucher balance
    // equals the counterparty escrow (conservation under racing).
    let port = net.endpoints().port.clone();
    let guest_channel = net.endpoints().guest_channel.clone();
    let cp_channel = net.endpoints().cp_channel.clone();
    let voucher = format!("transfer/{guest_channel}/{CP_DENOM}");
    let contract = net.contract.clone();
    let minted = {
        let mut guard = contract.borrow_mut();
        guard
            .ibc_mut()
            .module_mut(&port)
            .unwrap()
            .ics20_mut()
            .unwrap()
            .balance(GUEST_USER, &voucher)
    };
    let escrowed = net
        .cp
        .ibc_mut()
        .module_mut(&port)
        .unwrap()
        .ics20_mut()
        .unwrap()
        .balance(&format!("escrow:{cp_channel}"), CP_DENOM);
    assert!(minted > 0, "inbound transfers delivered");
    assert!(escrowed >= minted, "no double-mint from racing relayers");

    // Both relayers made at least some client updates (both watch the
    // host event stream), and any lost races are visible as failed jobs —
    // never as corrupted state.
    let updates: usize = [net.relayer.records(), net.extra_relayers.relayers()[second].records()]
        .iter()
        .map(|r| r.iter().filter(|j| j.kind == JobKind::ClientUpdate).count())
        .sum();
    assert!(updates > 0);
}
