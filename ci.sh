#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format.
#
# The workspace vendors every external dependency under vendor/, so all
# steps run with --offline and never touch a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> trace explorer (telemetry smoke test)"
cargo run --release --offline --example trace_explorer > /dev/null

echo "==> 1-day paper run with telemetry run report"
cargo run --release --offline -p testnet --example paper_timing -- 1 \
    --run-report BENCH_run_report.json
python3 - <<'PY'
import json, sys

with open("BENCH_run_report.json") as f:
    report = json.load(f)

missing = [key for key in ("meta", "metrics", "packets", "violations", "journal_len")
           if key not in report]
if missing:
    sys.exit(f"BENCH_run_report.json missing sections: {missing}")
if not report["packets"]:
    sys.exit("BENCH_run_report.json records no packet traces")
metrics = report["metrics"]
for kind in ("counters", "gauges", "histograms"):
    if kind not in metrics:
        sys.exit(f"BENCH_run_report.json metrics missing {kind}")
if not metrics["counters"]:
    sys.exit("BENCH_run_report.json records no counters")
if report["journal_len"] <= 0:
    sys.exit("BENCH_run_report.json journal is empty")
completed = sum(1 for p in report["packets"] if p["completed"])
print(f"run report OK: {len(report['packets'])} packet traces "
      f"({completed} completed), {report['journal_len']} journal records")
PY

echo "==> mesh scaling smoke run (multi-hop routing)"
cargo run --release --offline -p bench --bin mesh_scaling -- \
    --chains 3 --hops 2 --days 1 --quiet \
    --json BENCH_mesh_scaling.json --run-report BENCH_mesh_run_report.json
python3 - <<'PY'
import json, sys

with open("BENCH_mesh_scaling.json") as f:
    bench = json.load(f)
values = {k: v for s in bench["sections"] for k, v in s["values"].items()}
for key in ("round_trip_delivered", "round_trip_conserved"):
    if values.get(key) != 1:
        sys.exit(f"mesh_scaling: {key} != 1 ({values.get(key)}) — "
                 "A->B->C round trip must deliver with conserved supply")

with open("BENCH_mesh_run_report.json") as f:
    report = json.load(f)
routes = report.get("routes", [])
if not routes:
    sys.exit("BENCH_mesh_run_report.json records no route traces")
multi_hop = [r for r in routes
             if sum(1 for e in r["events"] if e["name"] == "packet.send") >= 2]
if not multi_hop:
    sys.exit("no route trace links >= 2 packet.send events — "
             "multi-hop legs are not being tied to one route")
if not any(r["delivered"] for r in multi_hop):
    sys.exit("no multi-hop route delivered")
print(f"mesh run report OK: {len(routes)} route traces, "
      f"{len(multi_hop)} multi-hop, all invariants hold")
PY

echo "==> apps mix (stacked application/middleware framework under mixed traffic)"
cargo run --release --offline -p bench --bin apps_mix -- \
    --users 96 --hours 2 --seed 2026 \
    --quiet --json BENCH_apps.json
cargo run --release --offline -p bench --bin apps_mix -- \
    --users 96 --hours 2 --seed 2026 \
    --quiet --json BENCH_apps.rerun.json
cmp BENCH_apps.json BENCH_apps.rerun.json \
    || { echo "apps_mix: same-seed reruns differ — the app stacks are not deterministic"; exit 1; }
rm BENCH_apps.rerun.json
python3 - <<'PY'
import json, sys

with open("BENCH_apps.json") as f:
    bench = json.load(f)
values = {k: v for s in bench["sections"] for k, v in s["values"].items()}

for app in ("transfer", "nft", "ica"):
    if values.get(f"apps_{app}_received", 0) < 1:
        sys.exit(f"apps_mix: the {app} app received no packets under the "
                 "airdrop storm — its stack is not wired into the mesh")
if values.get("delivered", 0) < 1:
    sys.exit("apps_mix: no routed transfer delivered end to end")
if values.get("fee_imbalance") != 0:
    sys.exit(f"apps_mix: fee imbalance {values.get('fee_imbalance')} != 0 — "
             "escrowed fees leaked past the ICS-29 middleware")
if values.get("fee_conserved") != 1:
    sys.exit("apps_mix: escrowed != paid + refunded + pending — "
             "the fee ledger does not balance")
if values.get("fee_escrowed", 0) < 1:
    sys.exit("apps_mix: no fees were escrowed — the fee middleware is inert")
if values.get("fee_alerts", 0) != 0:
    sys.exit(f"apps_mix: the fee-conservation detector fired "
             f"{values.get('fee_alerts'):.0f} alert(s) on a healthy run")
if values.get("nft_supply_drift") != 0:
    sys.exit(f"apps_mix: {values.get('nft_supply_drift'):.0f} NFT voucher "
             "token(s) lack escrow backing — class prefixes leak supply")
if values.get("determinism_ok") != 1:
    sys.exit("apps_mix: in-bench double runs produced different telemetry reports")
print(f"apps mix OK: transfer/nft/ica received "
      f"{values['apps_transfer_received']:.0f}/{values['apps_nft_received']:.0f}/"
      f"{values['apps_ica_received']:.0f} packets; fees escrowed "
      f"{values['fee_escrowed']:.0f} with zero imbalance; NFT supply clean; "
      "deterministic")
PY

echo "==> monitor eval (chaos-scored detection quality, paper outage MTTD)"
cargo run --release --offline -p bench --bin monitor_eval -- \
    --quiet --json BENCH_monitor_eval.json
cargo run --release --offline -p bench --bin monitor_eval -- \
    --quiet --json BENCH_monitor_eval.rerun.json
cmp BENCH_monitor_eval.json BENCH_monitor_eval.rerun.json \
    || { echo "monitor_eval: same-seed reruns differ — eval is not deterministic"; exit 1; }
rm BENCH_monitor_eval.rerun.json
python3 - <<'PY'
import json, sys

with open("BENCH_monitor_eval.json") as f:
    bench = json.load(f)
values = {k: v for s in bench["sections"] for k, v in s["values"].items()}

if values.get("kinds_detected") != values.get("kinds_total"):
    sys.exit(f"monitor_eval: only {values.get('kinds_detected')} of "
             f"{values.get('kinds_total')} fault kinds detected")
if values.get("paper_outage_detected", 0) < 1:
    sys.exit("monitor_eval: client-staleness never fired during the "
             "paper day-11 outage")
mttd = values.get("paper_outage_mttd_ms")
budget = values.get("paper_mttd_budget_ms")
outage = values.get("paper_outage_duration_ms")
if mttd is None or mttd > budget:
    sys.exit(f"monitor_eval: paper outage MTTD {mttd} ms exceeds the "
             f"worst-case budget {budget} ms")
if mttd * 2 > outage:
    sys.exit(f"monitor_eval: MTTD {mttd} ms is not well below the "
             f"{outage} ms outage — detection would not beat the fault")
if values.get("paper_precision") != 1.0:
    sys.exit(f"monitor_eval: paper-run staleness precision "
             f"{values.get('paper_precision')} != 1.0 (false alarms)")
print(f"monitor eval OK: {values['kinds_detected']}/{values['kinds_total']} "
      f"fault kinds detected; paper outage MTTD {mttd/60000:.1f} min "
      f"(budget {budget/60000:.1f} min, outage {outage/60000:.1f} min)")
PY

echo "==> throughput (heavy-traffic workload engine on the discrete-event path)"
cargo run --release --offline -p bench --bin throughput -- \
    --users 1000 --gap-ms 30000 --hours 2 --seed 2026 \
    --quiet --json BENCH_throughput.json
cargo run --release --offline -p bench --bin throughput -- \
    --users 1000 --gap-ms 30000 --hours 2 --seed 2026 \
    --quiet --json BENCH_throughput.rerun.json
python3 - <<'PY'
import json, sys

def values(path):
    with open(path) as f:
        bench = json.load(f)
    return {k: v for s in bench["sections"] for k, v in s["values"].items()}

vals = values("BENCH_throughput.json")
rerun = values("BENCH_throughput.rerun.json")

# Wall-clock timings legitimately differ between runs; everything the
# simulation itself produced must not.
timing = ("_wall_ms", "_sim_wall_ratio", "packets_per_sec", "sim_wall_ratio", "_speedup",
          "event_loop_speedup")
sim_keys = [k for k in vals if not k.endswith(timing)]
diffs = [k for k in sim_keys if vals.get(k) != rerun.get(k)]
if diffs:
    sys.exit(f"throughput: same-seed reruns differ on {diffs} — "
             "the heavy-traffic path is not deterministic")

if vals.get("determinism_ok") != 1:
    sys.exit("throughput: in-bench double runs produced different telemetry reports")
if vals.get("delivered_total", 0) < 300:
    sys.exit(f"throughput: only {vals.get('delivered_total')} packets delivered "
             "end to end — the heavy-traffic floor is 300")
if vals.get("packets_per_sec", 0) < 50:
    sys.exit(f"throughput: {vals.get('packets_per_sec'):.0f} packets/s is below "
             "the 50/s floor — the hot path has regressed")
if vals.get("event_loop_speedup", 0) < 1.0:
    sys.exit(f"throughput: quiet-stretch speedup {vals.get('event_loop_speedup'):.2f}x "
             "< 1.0 — the discrete-event loop no longer beats per-slot polling")
if vals.get("loaded_speedup", 0) < 0.75:
    sys.exit(f"throughput: loaded speedup {vals.get('loaded_speedup'):.2f}x < 0.75 — "
             "the event loop fell behind the polling loop under load")
print(f"throughput OK: {vals['delivered_total']:.0f} delivered at "
      f"{vals['packets_per_sec']:.0f} packets/s (sim/wall {vals['sim_wall_ratio']:.0f}x), "
      f"speedup {vals['event_loop_speedup']:.2f}x quiet / {vals['loaded_speedup']:.2f}x loaded, "
      "deterministic")
PY
rm BENCH_throughput.rerun.json

echo "==> latency attribution (causal trace graphs, critical-path stages, per-app tables)"
cargo run --release --offline -p bench --bin latency_attribution -- \
    --users 400 --hours 2 --seed 2026 \
    --quiet --json BENCH_latency_attribution.json
cargo run --release --offline -p bench --bin latency_attribution -- \
    --users 400 --hours 2 --seed 2026 \
    --quiet --json BENCH_latency_attribution.rerun.json
cmp BENCH_latency_attribution.json BENCH_latency_attribution.rerun.json \
    || { echo "latency_attribution: same-seed reruns differ — attribution is not deterministic"; exit 1; }
rm BENCH_latency_attribution.rerun.json
python3 - <<'PY'
import json, sys

with open("BENCH_latency_attribution.json") as f:
    bench = json.load(f)
values = {k: v for s in bench["sections"] for k, v in s["values"].items()}

coverage = values.get("coverage_pct", 0)
if coverage < 95:
    sys.exit(f"latency_attribution: named stages explain only {coverage:.1f}% "
             "of end-to-end time — the 95% coverage floor has regressed")
share_sum = values.get("share_sum_pct", 0)
if not 99.5 <= share_sum <= 100.5:
    sys.exit(f"latency_attribution: stage shares sum to {share_sum:.2f}% — "
             "the critical path no longer partitions the end-to-end span")
if values.get("completed", 0) < 100:
    sys.exit(f"latency_attribution: only {values.get('completed'):.0f} completed "
             "lifecycles attributed — the flash crowd floor is 100")
if values.get("apps_present") != 1:
    sys.exit("latency_attribution: a shipped app (transfer/nft/ica) has no "
             "attributed packets on the mesh")
for app in ("transfer", "nft", "ica"):
    if f"app_{app}_p95_ms" not in values:
        sys.exit(f"latency_attribution: per-app percentiles missing for {app}")
if values.get("determinism_ok") != 1:
    sys.exit("latency_attribution: in-bench double runs produced different "
             "graphs or attribution tables")
if values.get("no_perturbation") != 1:
    sys.exit("latency_attribution: building the causal graphs changed the run "
             "report bytes — the engine is not a pure observer")
print(f"latency attribution OK: {coverage:.1f}% stage coverage over "
      f"{values['completed']:.0f} lifecycles; per-app p95 "
      f"{values['app_transfer_p95_ms']/1000:.0f}/{values['app_nft_p95_ms']/1000:.0f}/"
      f"{values['app_ica_p95_ms']/1000:.0f} s (transfer/nft/ica); "
      "deterministic, pure observer")
PY

echo "==> self-profile (wall-clock phase attribution on the storm workload)"
cargo run --release --offline -p bench --bin profile -- \
    --users 1000 --gap-ms 30000 --hours 2 --seed 2026 \
    --quiet --json BENCH_profile_summary.json --profile-json BENCH_profile.json
python3 - <<'PY'
import json, sys

with open("BENCH_profile.json") as f:
    profile = json.load(f)
entries = profile.get("entries", [])
if not entries:
    sys.exit("BENCH_profile.json has no profile entries")
step = next((e for e in entries if e["path"] == "step"), None)
if step is None:
    sys.exit("BENCH_profile.json does not profile the harness step phase")
subsystems = [e for e in entries if e["depth"] == 1]
if not subsystems:
    sys.exit("BENCH_profile.json attributes no step time to subsystems")
top = max(subsystems, key=lambda e: e["wall_ms"])

with open("BENCH_profile_summary.json") as f:
    bench = json.load(f)
values = {k: v for s in bench["sections"] for k, v in s["values"].items()}
attributed = values.get("attributed_pct", 0)
if attributed < 90:
    sys.exit(f"profile: only {attributed:.1f}% of step wall time lands in "
             "named phases — the 90% attribution floor has regressed")
if "telemetry_self_pct" not in values:
    sys.exit("profile: telemetry self-cost is not reported")
if values.get("no_perturbation") != 1:
    sys.exit("profile: profiled and bare same-seed runs diverged — "
             "the profiler is not a pure observer")
print(f"profile OK: {attributed:.1f}% of step time attributed; top subsystem "
      f"{top['name']} ({top['wall_ms']:.0f} ms wall); telemetry self-cost "
      f"{values['telemetry_self_pct']:.2f}% of step time")
PY

echo "==> telemetry overhead (sampled pipeline budget gate)"
cargo run --release --offline -p bench --bin telemetry_overhead -- \
    --users 1000 --gap-ms 30000 --hours 2 --seed 2026 --keep 8 --reps 3 \
    --quiet --json BENCH_overhead.json
python3 - <<'PY'
import json, sys

with open("BENCH_overhead.json") as f:
    bench = json.load(f)
values = {k: v for s in bench["sections"] for k, v in s["values"].items()}

# Budget: sampled telemetry within 10% of running blind, full within 25%.
sampled = values.get("sampled_overhead_pct")
full = values.get("full_overhead_pct")
if sampled is None or sampled > 10:
    sys.exit(f"telemetry_overhead: sampled mode costs {sampled:.1f}% over the "
             "disabled baseline — the 10% budget is blown")
if full is None or full > 25:
    sys.exit(f"telemetry_overhead: full mode costs {full:.1f}% over the "
             "disabled baseline — the 25% budget is blown")
if values.get("sampled_deterministic") != 1:
    sys.exit("telemetry_overhead: same-seed sampled reruns are not byte-identical")
if values.get("monitor_parity") != 1:
    sys.exit("telemetry_overhead: sampled run's monitor alerts diverged from "
             "the full run — an aggregate got thinned")
if values.get("traces_dropped", 0) <= 0:
    sys.exit("telemetry_overhead: sampling dropped no traces — the sampler "
             "is not thinning anything")
print(f"telemetry overhead OK: sampled {sampled:+.1f}%, full {full:+.1f}% vs "
      f"disabled (budgets 10%/25%); {values['thinned_pct']:.0f}% of traces "
      "thinned; deterministic with monitor parity")
PY

echo "CI green."
