#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format.
#
# The workspace vendors every external dependency under vendor/, so all
# steps run with --offline and never touch a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
