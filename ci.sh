#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format.
#
# The workspace vendors every external dependency under vendor/, so all
# steps run with --offline and never touch a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> trace explorer (telemetry smoke test)"
cargo run --release --offline --example trace_explorer > /dev/null

echo "==> 1-day paper run with telemetry run report"
cargo run --release --offline -p testnet --example paper_timing -- 1 \
    --run-report BENCH_run_report.json
python3 - <<'PY'
import json, sys

with open("BENCH_run_report.json") as f:
    report = json.load(f)

missing = [key for key in ("meta", "metrics", "packets", "violations", "journal_len")
           if key not in report]
if missing:
    sys.exit(f"BENCH_run_report.json missing sections: {missing}")
if not report["packets"]:
    sys.exit("BENCH_run_report.json records no packet traces")
metrics = report["metrics"]
for kind in ("counters", "gauges", "histograms"):
    if kind not in metrics:
        sys.exit(f"BENCH_run_report.json metrics missing {kind}")
if not metrics["counters"]:
    sys.exit("BENCH_run_report.json records no counters")
if report["journal_len"] <= 0:
    sys.exit("BENCH_run_report.json journal is empty")
completed = sum(1 for p in report["packets"] if p["completed"])
print(f"run report OK: {len(report['packets'])} packet traces "
      f"({completed} completed), {report['journal_len']} journal records")
PY

echo "==> mesh scaling smoke run (multi-hop routing)"
cargo run --release --offline -p bench --bin mesh_scaling -- \
    --chains 3 --hops 2 --days 1 --quiet \
    --json BENCH_mesh_scaling.json --run-report BENCH_mesh_run_report.json
python3 - <<'PY'
import json, sys

with open("BENCH_mesh_scaling.json") as f:
    bench = json.load(f)
values = {k: v for s in bench["sections"] for k, v in s["values"].items()}
for key in ("round_trip_delivered", "round_trip_conserved"):
    if values.get(key) != 1:
        sys.exit(f"mesh_scaling: {key} != 1 ({values.get(key)}) — "
                 "A->B->C round trip must deliver with conserved supply")

with open("BENCH_mesh_run_report.json") as f:
    report = json.load(f)
routes = report.get("routes", [])
if not routes:
    sys.exit("BENCH_mesh_run_report.json records no route traces")
multi_hop = [r for r in routes
             if sum(1 for e in r["events"] if e["name"] == "packet.send") >= 2]
if not multi_hop:
    sys.exit("no route trace links >= 2 packet.send events — "
             "multi-hop legs are not being tied to one route")
if not any(r["delivered"] for r in multi_hop):
    sys.exit("no multi-hop route delivered")
print(f"mesh run report OK: {len(routes)} route traces, "
      f"{len(multi_hop)} multi-hop, all invariants hold")
PY

echo "CI green."
