#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format.
#
# The workspace vendors every external dependency under vendor/, so all
# steps run with --offline and never touch a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> trace explorer (telemetry smoke test)"
cargo run --release --offline --example trace_explorer > /dev/null

echo "==> 1-day paper run with telemetry run report"
cargo run --release --offline -p testnet --example paper_timing -- 1 \
    --run-report BENCH_run_report.json
python3 - <<'PY'
import json, sys

with open("BENCH_run_report.json") as f:
    report = json.load(f)

missing = [key for key in ("meta", "metrics", "packets", "violations", "journal_len")
           if key not in report]
if missing:
    sys.exit(f"BENCH_run_report.json missing sections: {missing}")
if not report["packets"]:
    sys.exit("BENCH_run_report.json records no packet traces")
metrics = report["metrics"]
for kind in ("counters", "gauges", "histograms"):
    if kind not in metrics:
        sys.exit(f"BENCH_run_report.json metrics missing {kind}")
if not metrics["counters"]:
    sys.exit("BENCH_run_report.json records no counters")
if report["journal_len"] <= 0:
    sys.exit("BENCH_run_report.json journal is empty")
completed = sum(1 for p in report["packets"] if p["completed"])
print(f"run report OK: {len(report['packets'])} packet traces "
      f"({completed} completed), {report['journal_len']} journal records")
PY

echo "CI green."
